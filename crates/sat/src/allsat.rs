//! AllSAT: enumerate (projected) models via blocking clauses.
//!
//! The theory-change backends need `Mod(φ)` explicitly — revision, update
//! and model-fitting all quantify over model sets. For formulas whose model
//! count is manageable even when the variable count is not, SAT-based
//! enumeration projected onto the original (non-Tseitin) variables is the
//! scalable route.

use crate::lit::Lit;
use crate::solver::{SolveResult, Solver};

/// Bound on enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllSatLimit {
    /// Enumerate every model.
    Unlimited,
    /// Stop after this many models.
    AtMost(usize),
}

/// Enumerate the models of the solver's clause set projected onto variables
/// `0..project_vars`, as bitmasks (bit `v` = variable `v` true).
///
/// Each found projection is blocked with a clause over the projection
/// variables, so models that agree on the projection are reported once.
/// Blocking clauses stay in the solver — pass a dedicated solver instance.
///
/// Returns the sorted list of projected models, or `None` if the limit was
/// hit before enumeration finished (partial results are discarded so callers
/// can't mistake a truncation for the full set).
pub fn enumerate_models(
    solver: &mut Solver,
    project_vars: u32,
    limit: AllSatLimit,
) -> Option<Vec<u64>> {
    assert!(project_vars <= 64, "projection wider than 64 bits");
    assert!(project_vars <= solver.num_vars());
    let mut out: Vec<u64> = Vec::new();
    let mut blocked = 0u64;
    loop {
        match solver.solve() {
            SolveResult::Unsat => break,
            SolveResult::Sat => {
                let mut bits = 0u64;
                let mut blocking: Vec<Lit> = Vec::with_capacity(project_vars as usize);
                for v in 0..project_vars {
                    let val = solver.model_value(v).expect("model covers all vars");
                    if val {
                        bits |= 1u64 << v;
                    }
                    blocking.push(Lit::new(v, !val));
                }
                out.push(bits);
                if let AllSatLimit::AtMost(max) = limit {
                    if out.len() > max {
                        crate::telemetry::ALLSAT_MODELS.add(out.len() as u64);
                        crate::telemetry::ALLSAT_BLOCKING_CLAUSES.add(blocked);
                        return None;
                    }
                }
                if blocking.is_empty() {
                    // Zero projection vars: a single (empty) projection.
                    break;
                }
                blocked += 1;
                if !solver.add_clause(&blocking) {
                    break; // blocking clause made the set unsat
                }
            }
        }
    }
    crate::telemetry::ALLSAT_MODELS.add(out.len() as u64);
    crate::telemetry::ALLSAT_BLOCKING_CLAUSES.add(blocked);
    out.sort_unstable();
    out.dedup();
    if let AllSatLimit::AtMost(max) = limit {
        if out.len() > max {
            return None;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver_with(n: u32, clauses: &[&[i32]]) -> Solver {
        let mut s = Solver::new();
        s.ensure_vars(n);
        for c in clauses {
            s.add_dimacs_clause(c);
        }
        s
    }

    #[test]
    fn enumerates_all_models_of_small_formula() {
        // x1 ∨ x2 over 2 vars: 3 models.
        let mut s = solver_with(2, &[&[1, 2]]);
        let models = enumerate_models(&mut s, 2, AllSatLimit::Unlimited).unwrap();
        assert_eq!(models, vec![0b01, 0b10, 0b11]);
    }

    #[test]
    fn unsat_formula_has_no_models() {
        let mut s = solver_with(1, &[&[1], &[-1]]);
        let models = enumerate_models(&mut s, 1, AllSatLimit::Unlimited).unwrap();
        assert!(models.is_empty());
    }

    #[test]
    fn free_variables_double_the_count() {
        // Clause only on x1; x2 free => models {1}, {1,2} projected on both.
        let mut s = solver_with(2, &[&[1]]);
        let models = enumerate_models(&mut s, 2, AllSatLimit::Unlimited).unwrap();
        assert_eq!(models, vec![0b01, 0b11]);
    }

    #[test]
    fn projection_merges_agreeing_models() {
        // x2 free, project only on x1: one projected model.
        let mut s = solver_with(2, &[&[1]]);
        let models = enumerate_models(&mut s, 1, AllSatLimit::Unlimited).unwrap();
        assert_eq!(models, vec![0b1]);
    }

    #[test]
    fn limit_truncation_returns_none() {
        let mut s = solver_with(3, &[]); // 8 models
        assert_eq!(enumerate_models(&mut s, 3, AllSatLimit::AtMost(4)), None);
        let mut s = solver_with(3, &[]);
        let all = enumerate_models(&mut s, 3, AllSatLimit::AtMost(8)).unwrap();
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn zero_projection_vars() {
        let mut s = solver_with(2, &[&[1, 2]]);
        let models = enumerate_models(&mut s, 0, AllSatLimit::Unlimited).unwrap();
        assert_eq!(models, vec![0]);
    }

    #[test]
    fn tseitin_style_aux_vars_are_projected_away() {
        // x3 defined as x1 ∧ x2 (aux); formula asserts x3.
        let mut s = solver_with(3, &[&[-3, 1], &[-3, 2], &[-1, -2, 3], &[3]]);
        let models = enumerate_models(&mut s, 2, AllSatLimit::Unlimited).unwrap();
        assert_eq!(models, vec![0b11]);
    }
}
