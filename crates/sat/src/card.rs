//! Sequential-counter cardinality constraints (Sinz 2005).
//!
//! The ladder is encoded once per input set; any bound `≤ k` can then be
//! imposed per-solve via an assumption literal, which is what the distance
//! minimization loops in [`crate::optimize`] and the Dalal-revision SAT
//! backend rely on.

use crate::lit::Lit;
use crate::solver::Solver;

/// A unary "counter" over a set of input literals.
///
/// After [`CardinalityLadder::encode`], output `j` (0-based) is a literal
/// that is *forced true whenever at least `j + 1` inputs are true*. The
/// implication is one-directional, which is exactly what assumption-driven
/// upper bounds need: assuming `¬output[k]` forbids `k + 1` or more inputs
/// from being true.
#[derive(Debug, Clone)]
pub struct CardinalityLadder {
    outputs: Vec<Lit>,
    n_inputs: usize,
}

impl CardinalityLadder {
    /// Encode the counter for `inputs` into `solver`, introducing
    /// `O(n²)` auxiliary variables and clauses.
    pub fn encode(solver: &mut Solver, inputs: &[Lit]) -> CardinalityLadder {
        crate::telemetry::CARD_LADDERS_ENCODED.incr();
        let n = inputs.len();
        if n == 0 {
            return CardinalityLadder {
                outputs: Vec::new(),
                n_inputs: 0,
            };
        }
        // s[i][j] (i in 0..n, j in 0..=i) = "at least j+1 of the first i+1
        // inputs are true".
        let mut prev: Vec<Lit> = Vec::new();
        for (i, &x) in inputs.iter().enumerate() {
            let width = i + 1;
            let mut row: Vec<Lit> = Vec::with_capacity(width);
            for _ in 0..width {
                row.push(Lit::pos(solver.new_var()));
            }
            // x_i ⇒ s_i_0
            solver.add_clause(&[x.negate(), row[0]]);
            for j in 0..prev.len() {
                // s_{i-1}_j ⇒ s_i_j
                solver.add_clause(&[prev[j].negate(), row[j]]);
                // x_i ∧ s_{i-1}_j ⇒ s_i_{j+1}
                solver.add_clause(&[x.negate(), prev[j].negate(), row[j + 1]]);
            }
            prev = row;
        }
        CardinalityLadder {
            outputs: prev,
            n_inputs: n,
        }
    }

    /// Number of input literals counted.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// The assumption literal enforcing "at most `k` inputs true", or `None`
    /// if `k ≥ n` (no constraint needed).
    pub fn at_most(&self, k: usize) -> Option<Lit> {
        if k >= self.n_inputs {
            None
        } else {
            Some(self.outputs[k].negate())
        }
    }

    /// Permanently assert "at most `k` inputs true".
    pub fn assert_at_most(&self, solver: &mut Solver, k: usize) {
        if let Some(l) = self.at_most(k) {
            solver.add_clause(&[l]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    /// Build a solver with `n` free variables and a ladder over all of them.
    fn setup(n: u32) -> (Solver, CardinalityLadder, Vec<Lit>) {
        let mut s = Solver::new();
        s.ensure_vars(n);
        let inputs: Vec<Lit> = (0..n).map(Lit::pos).collect();
        let ladder = CardinalityLadder::encode(&mut s, &inputs);
        (s, ladder, inputs)
    }

    fn count_true(s: &Solver, n: u32) -> usize {
        (0..n).filter(|&v| s.model_value(v) == Some(true)).count()
    }

    #[test]
    fn at_most_zero_forces_all_false() {
        let (mut s, ladder, _) = setup(4);
        let a = ladder.at_most(0).unwrap();
        assert_eq!(s.solve_with_assumptions(&[a]), SolveResult::Sat);
        assert_eq!(count_true(&s, 4), 0);
    }

    #[test]
    fn at_most_k_bounds_are_respected_and_tight() {
        let n = 5;
        for k in 0..n as usize {
            let (mut s, ladder, inputs) = setup(n);
            let a = ladder.at_most(k).unwrap();
            assert_eq!(s.solve_with_assumptions(&[a]), SolveResult::Sat);
            assert!(count_true(&s, n) <= k);
            // Forcing k+1 inputs true under the bound must be unsat.
            let mut assumps = vec![a];
            assumps.extend(inputs.iter().take(k + 1));
            assert_eq!(
                s.solve_with_assumptions(&assumps),
                SolveResult::Unsat,
                "k={k}"
            );
            // Forcing exactly k true must still be sat.
            let mut assumps = vec![a];
            assumps.extend(inputs.iter().take(k));
            assert_eq!(s.solve_with_assumptions(&assumps), SolveResult::Sat);
        }
    }

    #[test]
    fn at_most_n_or_more_is_unconstrained() {
        let (_, ladder, _) = setup(3);
        assert_eq!(ladder.at_most(3), None);
        assert_eq!(ladder.at_most(10), None);
    }

    #[test]
    fn empty_input_set() {
        let mut s = Solver::new();
        let ladder = CardinalityLadder::encode(&mut s, &[]);
        assert_eq!(ladder.at_most(0), None);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn assert_at_most_is_permanent() {
        let (mut s, ladder, inputs) = setup(4);
        ladder.assert_at_most(&mut s, 1);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(count_true(&s, 4) <= 1);
        let assumps: Vec<Lit> = inputs.iter().take(2).copied().collect();
        assert_eq!(s.solve_with_assumptions(&assumps), SolveResult::Unsat);
    }

    #[test]
    fn works_over_negative_literals() {
        // Count "inputs" that are negations: at most 1 of ¬x0..¬x3 true
        // means at least 3 of x0..x3 true.
        let mut s = Solver::new();
        s.ensure_vars(4);
        let inputs: Vec<Lit> = (0..4).map(Lit::neg_on).collect();
        let ladder = CardinalityLadder::encode(&mut s, &inputs);
        ladder.assert_at_most(&mut s, 1);
        assert_eq!(s.solve(), SolveResult::Sat);
        let trues = (0..4).filter(|&v| s.model_value(v) == Some(true)).count();
        assert!(trues >= 3);
    }
}
