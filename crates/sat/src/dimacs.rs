//! DIMACS CNF reading and writing.

use crate::error::DimacsError;

/// A parsed DIMACS problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsProblem {
    /// Declared variable count.
    pub n_vars: u32,
    /// Clause list in DIMACS literal convention.
    pub clauses: Vec<Vec<i32>>,
}

/// Parse DIMACS CNF text. Comment lines (`c …`) are skipped; literals may be
/// split across lines; each clause ends with `0`.
pub fn parse_dimacs(input: &str) -> Result<DimacsProblem, DimacsError> {
    let mut n_vars: Option<u32> = None;
    let mut clauses: Vec<Vec<i32>> = Vec::new();
    let mut current: Vec<i32> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line_num = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        if trimmed.starts_with('p') {
            let mut parts = trimmed.split_whitespace();
            let ok = parts.next() == Some("p") && parts.next() == Some("cnf") && n_vars.is_none();
            let vars = parts.next().and_then(|t| t.parse::<u32>().ok());
            let _n_clauses = parts.next().and_then(|t| t.parse::<usize>().ok());
            match (ok, vars) {
                (true, Some(v)) => n_vars = Some(v),
                _ => return Err(DimacsError::BadHeader { line: line_num }),
            }
            continue;
        }
        let declared = match n_vars {
            Some(v) => v,
            None => return Err(DimacsError::BadHeader { line: line_num }),
        };
        for tok in trimmed.split_whitespace() {
            let lit: i32 = tok.parse().map_err(|_| DimacsError::BadToken {
                line: line_num,
                token: tok.into(),
            })?;
            if lit == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                if lit.unsigned_abs() > declared {
                    return Err(DimacsError::LitOutOfRange {
                        line: line_num,
                        lit,
                        declared,
                    });
                }
                current.push(lit);
            }
        }
    }
    if !current.is_empty() {
        return Err(DimacsError::UnterminatedClause);
    }
    Ok(DimacsProblem {
        n_vars: n_vars.unwrap_or(0),
        clauses,
    })
}

/// Serialize a clause set to DIMACS CNF text.
pub fn write_dimacs(n_vars: u32, clauses: &[Vec<i32>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("p cnf {} {}\n", n_vars, clauses.len()));
    for c in clauses {
        for l in c {
            out.push_str(&format!("{l} "));
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_problem() {
        let text = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let p = parse_dimacs(text).unwrap();
        assert_eq!(p.n_vars, 3);
        assert_eq!(p.clauses, vec![vec![1, -2], vec![2, 3]]);
    }

    #[test]
    fn clauses_may_span_lines() {
        let text = "p cnf 2 1\n1\n-2\n0\n";
        let p = parse_dimacs(text).unwrap();
        assert_eq!(p.clauses, vec![vec![1, -2]]);
    }

    #[test]
    fn rejects_missing_header() {
        assert_eq!(
            parse_dimacs("1 2 0\n"),
            Err(DimacsError::BadHeader { line: 1 })
        );
    }

    #[test]
    fn rejects_bad_token_and_overflow_lit() {
        let e = parse_dimacs("p cnf 2 1\n1 x 0\n").unwrap_err();
        assert!(matches!(e, DimacsError::BadToken { line: 2, .. }));
        let e = parse_dimacs("p cnf 2 1\n3 0\n").unwrap_err();
        assert!(matches!(e, DimacsError::LitOutOfRange { lit: 3, .. }));
    }

    #[test]
    fn rejects_unterminated_clause() {
        assert_eq!(
            parse_dimacs("p cnf 2 1\n1 2\n"),
            Err(DimacsError::UnterminatedClause)
        );
    }

    #[test]
    fn write_then_parse_roundtrips() {
        let clauses = vec![vec![1, -3], vec![2], vec![-1, -2, 3]];
        let text = write_dimacs(3, &clauses);
        let p = parse_dimacs(&text).unwrap();
        assert_eq!(p.n_vars, 3);
        assert_eq!(p.clauses, clauses);
    }

    #[test]
    fn empty_clause_list() {
        let p = parse_dimacs("p cnf 4 0\n").unwrap();
        assert_eq!(p.n_vars, 4);
        assert!(p.clauses.is_empty());
    }
}
