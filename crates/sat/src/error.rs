//! Error types for the SAT crate.

use std::fmt;

/// Errors raised while reading DIMACS CNF text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimacsError {
    /// Missing or malformed `p cnf <vars> <clauses>` header.
    BadHeader {
        /// 1-based line number.
        line: usize,
    },
    /// A token that is neither an integer literal nor a comment.
    BadToken {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A literal references a variable above the header's declared count.
    LitOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending literal.
        lit: i32,
        /// Declared variable count.
        declared: u32,
    },
    /// The file ended in the middle of a clause (no terminating `0`).
    UnterminatedClause,
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimacsError::BadHeader { line } => {
                write!(f, "line {line}: expected `p cnf <vars> <clauses>` header")
            }
            DimacsError::BadToken { line, token } => {
                write!(f, "line {line}: unexpected token `{token}`")
            }
            DimacsError::LitOutOfRange {
                line,
                lit,
                declared,
            } => write!(
                f,
                "line {line}: literal {lit} out of range for {declared} declared variables"
            ),
            DimacsError::UnterminatedClause => write!(f, "input ended inside a clause"),
        }
    }
}

impl std::error::Error for DimacsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        assert!(DimacsError::BadHeader { line: 2 }
            .to_string()
            .contains("line 2"));
        assert!(DimacsError::BadToken {
            line: 3,
            token: "x".into()
        }
        .to_string()
        .contains("`x`"));
        assert!(DimacsError::LitOutOfRange {
            line: 4,
            lit: -9,
            declared: 5
        }
        .to_string()
        .contains("-9"));
        assert!(DimacsError::UnterminatedClause
            .to_string()
            .contains("ended"));
    }
}
