//! Indexed max-heap ordered by variable activity, for the VSIDS heuristic.
//!
//! The solver needs three operations the standard library heap lacks:
//! membership testing, arbitrary re-insertion, and sift-up when a contained
//! element's activity increases.

/// A binary max-heap over variable indices, keyed by an external activity
/// array supplied at each call (activities live in the solver so that decay
/// can rescale them in place).
#[derive(Debug, Default, Clone)]
pub struct ActivityHeap {
    heap: Vec<u32>,
    /// `positions[v]` is the index of `v` in `heap`, or `NONE` if absent.
    positions: Vec<u32>,
}

const NONE: u32 = u32::MAX;

impl ActivityHeap {
    /// Empty heap.
    pub fn new() -> ActivityHeap {
        ActivityHeap::default()
    }

    /// Ensure the position table covers variables `0..n`.
    pub fn grow_to(&mut self, n: usize) {
        if self.positions.len() < n {
            self.positions.resize(n, NONE);
        }
    }

    /// Number of queued variables.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the heap empty?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Is variable `v` currently queued?
    pub fn contains(&self, v: u32) -> bool {
        (v as usize) < self.positions.len() && self.positions[v as usize] != NONE
    }

    /// Insert `v` (no-op if present).
    pub fn insert(&mut self, v: u32, activity: &[f64]) {
        self.grow_to(v as usize + 1);
        if self.contains(v) {
            return;
        }
        self.positions[v as usize] = self.heap.len() as u32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Remove and return the variable with maximum activity.
    pub fn pop_max(&mut self, activity: &[f64]) -> Option<u32> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().unwrap();
        self.positions[top as usize] = NONE;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.positions[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restore heap order above `v` after its activity increased.
    pub fn decrease_key_of(&mut self, v: u32, activity: &[f64]) {
        if let Some(&pos) = self.positions.get(v as usize) {
            if pos != NONE {
                self.sift_up(pos as usize, activity);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i] as usize] > act[self.heap[parent] as usize] {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l] as usize] > act[self.heap[best] as usize] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[best] as usize] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.positions[self.heap[a] as usize] = a as u32;
        self.positions[self.heap[b] as usize] = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let act = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = ActivityHeap::new();
        for v in 0..4 {
            h.insert(v, &act);
        }
        assert_eq!(h.pop_max(&act), Some(1));
        assert_eq!(h.pop_max(&act), Some(3));
        assert_eq!(h.pop_max(&act), Some(2));
        assert_eq!(h.pop_max(&act), Some(0));
        assert_eq!(h.pop_max(&act), None);
    }

    #[test]
    fn insert_is_idempotent() {
        let act = vec![1.0, 2.0];
        let mut h = ActivityHeap::new();
        h.insert(0, &act);
        h.insert(0, &act);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn contains_tracks_membership() {
        let act = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        assert!(!h.contains(1));
        h.insert(1, &act);
        assert!(h.contains(1));
        h.pop_max(&act);
        assert!(!h.contains(1));
    }

    #[test]
    fn bump_reorders() {
        let mut act = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        for v in 0..3 {
            h.insert(v, &act);
        }
        // Bump v0 past everyone.
        act[0] = 10.0;
        h.decrease_key_of(0, &act);
        assert_eq!(h.pop_max(&act), Some(0));
    }

    #[test]
    fn random_stress_matches_sort() {
        // Deterministic pseudo-random insert/pop stress without rand.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 200;
        let act: Vec<f64> = (0..n).map(|_| (next() % 10_000) as f64).collect();
        let mut h = ActivityHeap::new();
        for v in 0..n as u32 {
            h.insert(v, &act);
        }
        let mut popped = Vec::new();
        while let Some(v) = h.pop_max(&act) {
            popped.push(v);
        }
        let mut expect: Vec<u32> = (0..n as u32).collect();
        expect.sort_by(|&a, &b| act[b as usize].partial_cmp(&act[a as usize]).unwrap());
        let key = |v: u32| act[v as usize];
        // Activities may repeat; compare by key sequence.
        assert_eq!(
            popped.iter().map(|&v| key(v)).collect::<Vec<_>>(),
            expect.iter().map(|&v| key(v)).collect::<Vec<_>>()
        );
    }
}
