//! # arbitrex-sat
//!
//! A conflict-driven clause-learning (CDCL) SAT solver built from scratch as
//! the decision-procedure substrate for `arbitrex`'s theory-change operators
//! at scales beyond truth-table enumeration.
//!
//! Features:
//!
//! * two-watched-literal unit propagation,
//! * first-UIP conflict analysis with clause minimization,
//! * exponential VSIDS decision heuristic with an indexed binary heap,
//! * phase saving,
//! * Luby-sequence restarts,
//! * learnt-clause database reduction driven by LBD (glue) scores,
//! * incremental solving under assumptions,
//! * AllSAT model enumeration with projection ([`allsat`]),
//! * sequential-counter cardinality constraints ([`card`]) enabling
//!   assumption-driven `≤ k` bounds,
//! * Hamming-distance minimization loops ([`optimize`]) used by the SAT
//!   backend of Dalal revision and arbitration radius search, and
//! * DIMACS CNF reading/writing ([`dimacs`]).
//!
//! The solver is deliberately self-contained: no external solver crates.
//! Global solver counters (conflicts, propagations, ladder searches,
//! AllSAT progress) live in [`telemetry`] and are compiled out unless the
//! workspace's telemetry feature is on.

#![warn(missing_docs)]

pub mod allsat;
pub mod card;
pub mod dimacs;
pub mod error;
pub mod heap;
pub mod lit;
pub mod luby;
pub mod optimize;
pub mod solver;
pub mod telemetry;

pub use allsat::{
    enumerate_models, enumerate_models_budgeted, AllSatLimit, EnumResult, EnumStatus,
};
pub use arbitrex_telemetry::budget::{
    Budget, BudgetSite, BudgetSpent, CancelToken, Exhausted, FaultPlan, TripReason,
};
pub use card::CardinalityLadder;
pub use dimacs::{parse_dimacs, write_dimacs};
pub use error::DimacsError;
pub use lit::{LBool, Lit};
pub use luby::luby;
pub use optimize::{
    minimize_true_count, minimize_true_count_budgeted, MinimizeBound, MinimizeOutcome,
};
pub use solver::{SolveResult, Solver, SolverStats};
