//! Literals and three-valued assignments.

use std::fmt;

/// A literal, encoded as `2·var + sign` where `sign = 1` means negated.
///
/// This packing gives literals a dense index space (`code()`) used for the
/// watch lists, and makes negation a single XOR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Build a literal on variable `var` (0-based), positive or negated.
    #[inline]
    pub fn new(var: u32, positive: bool) -> Lit {
        Lit(var << 1 | (!positive as u32))
    }

    /// Positive literal on `var`.
    #[inline]
    pub fn pos(var: u32) -> Lit {
        Lit::new(var, true)
    }

    /// Negative literal on `var`.
    #[inline]
    pub fn neg_on(var: u32) -> Lit {
        Lit::new(var, false)
    }

    /// The variable (0-based).
    #[inline]
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// Is this the positive literal?
    #[inline]
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    #[inline]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index in `0..2·n_vars`, for watch lists.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Convert from a non-zero DIMACS literal (`±(var+1)`).
    ///
    /// # Panics
    /// Panics on 0.
    pub fn from_dimacs(l: i32) -> Lit {
        assert!(l != 0, "DIMACS literal 0 is the clause terminator");
        Lit::new(l.unsigned_abs() - 1, l > 0)
    }

    /// Convert to DIMACS convention.
    pub fn to_dimacs(self) -> i32 {
        let v = self.var() as i32 + 1;
        if self.is_pos() {
            v
        } else {
            -v
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

/// Three-valued assignment state of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    Undef,
}

impl LBool {
    /// Truth value of a literal given its variable's assignment.
    #[inline]
    pub fn of_lit(self, lit: Lit) -> LBool {
        match self {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if lit.is_pos() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if lit.is_pos() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    /// From a concrete boolean.
    #[inline]
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Is this `True`?
    #[inline]
    pub fn is_true(self) -> bool {
        self == LBool::True
    }

    /// Is this `False`?
    #[inline]
    pub fn is_false(self) -> bool {
        self == LBool::False
    }

    /// Is this unassigned?
    #[inline]
    pub fn is_undef(self) -> bool {
        self == LBool::Undef
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_roundtrip() {
        for v in 0..10u32 {
            for pos in [true, false] {
                let l = Lit::new(v, pos);
                assert_eq!(l.var(), v);
                assert_eq!(l.is_pos(), pos);
                assert_eq!(l.negate().var(), v);
                assert_eq!(l.negate().is_pos(), !pos);
                assert_eq!(l.negate().negate(), l);
            }
        }
    }

    #[test]
    fn dimacs_roundtrip() {
        for d in [-5, -1, 1, 3, 42] {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
        assert_eq!(Lit::from_dimacs(1), Lit::pos(0));
        assert_eq!(Lit::from_dimacs(-1), Lit::neg_on(0));
    }

    #[test]
    #[should_panic(expected = "terminator")]
    fn dimacs_zero_panics() {
        Lit::from_dimacs(0);
    }

    #[test]
    fn codes_are_dense_and_distinct() {
        assert_eq!(Lit::pos(0).code(), 0);
        assert_eq!(Lit::neg_on(0).code(), 1);
        assert_eq!(Lit::pos(1).code(), 2);
        assert_eq!(Lit::neg_on(1).code(), 3);
    }

    #[test]
    fn lbool_of_lit() {
        assert_eq!(LBool::True.of_lit(Lit::pos(0)), LBool::True);
        assert_eq!(LBool::True.of_lit(Lit::neg_on(0)), LBool::False);
        assert_eq!(LBool::False.of_lit(Lit::pos(0)), LBool::False);
        assert_eq!(LBool::False.of_lit(Lit::neg_on(0)), LBool::True);
        assert_eq!(LBool::Undef.of_lit(Lit::pos(0)), LBool::Undef);
    }

    #[test]
    fn lbool_predicates() {
        assert!(LBool::True.is_true() && !LBool::True.is_false());
        assert!(LBool::False.is_false() && !LBool::False.is_undef());
        assert!(LBool::Undef.is_undef());
        assert_eq!(LBool::from_bool(true), LBool::True);
        assert_eq!(LBool::from_bool(false), LBool::False);
    }
}
