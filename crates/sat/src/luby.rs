//! The Luby restart sequence.

/// The `i`-th element (1-based) of the Luby sequence
/// `1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …` (Luby, Sinclair & Zuckerman 1993),
/// the universally-optimal restart schedule used by the solver.
pub fn luby(i: u64) -> u64 {
    assert!(i >= 1, "Luby sequence is 1-based");
    // Find k with 2^k - 1 >= i; if i == 2^k - 1 the value is 2^(k-1),
    // otherwise recurse on i - (2^(k-1) - 1).
    let mut k = 1u32;
    while (1u64 << k) - 1 < i {
        k += 1;
    }
    if (1u64 << k) - 1 == i {
        1u64 << (k - 1)
    } else {
        luby(i - ((1u64 << (k - 1)) - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fifteen_terms() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn powers_of_two_at_sequence_ends() {
        assert_eq!(luby(31), 16);
        assert_eq!(luby(63), 32);
    }

    #[test]
    fn values_are_powers_of_two() {
        for i in 1..200 {
            let v = luby(i);
            assert!(v.is_power_of_two());
        }
    }
}
