//! Cardinality minimization: find a model minimizing the number of true
//! literals among a given set.
//!
//! This is the engine behind the SAT backend for Dalal's revision operator:
//! with difference variables `d_i ↔ (x_i ⊕ y_i)` between a model of `μ` and
//! a model of `ψ`, minimizing the true count of `{d_i}` computes the minimal
//! Hamming distance — and the optimal models fall out of the final solve.

use crate::allsat::solver_trip;
use crate::card::CardinalityLadder;
use crate::lit::Lit;
use crate::solver::{SolveResult, Solver};
use arbitrex_telemetry::budget::{Budget, BudgetSite, Exhausted};

/// A feasible cardinality bound found by [`minimize_true_count_budgeted`].
#[derive(Debug)]
pub struct MinimizeBound {
    /// A feasible true-count: the minimum when `trip` is `None`, otherwise
    /// the best *incumbent* — an upper bound on the minimum.
    pub k: usize,
    /// A satisfying assignment achieving `k` (original variables only).
    pub model: Vec<bool>,
    /// The encoded ladder (its bound can be re-imposed via
    /// [`CardinalityLadder::assert_at_most`]).
    pub ladder: CardinalityLadder,
    /// `Some` when the budget gave out mid-search, leaving `k` inexact.
    pub trip: Option<Exhausted>,
}

impl MinimizeBound {
    /// Is `k` the true minimum (search ran to completion)?
    pub fn is_exact(&self) -> bool {
        self.trip.is_none()
    }
}

/// Outcome of a budgeted cardinality minimization.
#[derive(Debug)]
pub enum MinimizeOutcome {
    /// The clause set is unsatisfiable: nothing to minimize.
    Unsat,
    /// The budget gave out before *any* model was found — no incumbent,
    /// no bound.
    Interrupted(Exhausted),
    /// A feasible bound, exact unless `trip` is set.
    Bound(MinimizeBound),
}

/// Find the minimum number of `targets` literals that can be simultaneously
/// true in a model of the solver's clause set, by binary search over an
/// assumption-driven cardinality ladder.
///
/// Returns `(k, model)` where `model` is a satisfying assignment achieving
/// exactly the minimum `k` (as a bool-per-variable snapshot covering the
/// *original* variables present before the ladder was encoded), or `None`
/// if the clause set is unsatisfiable. If the solver carries its own budget
/// (via [`Solver::set_budget`] / [`Solver::set_conflict_budget`]) an
/// interruption also reports `None`; use [`minimize_true_count_budgeted`]
/// to keep the incumbent bound instead.
///
/// The ladder's auxiliary clauses remain in the solver afterwards; the
/// returned bound can be re-imposed by the caller via
/// [`CardinalityLadder::assert_at_most`] on the returned ladder.
pub fn minimize_true_count(
    solver: &mut Solver,
    targets: &[Lit],
) -> Option<(usize, Vec<bool>, CardinalityLadder)> {
    match minimize_true_count_budgeted(solver, targets, &Budget::unlimited()) {
        MinimizeOutcome::Bound(b) if b.is_exact() => Some((b.k, b.model, b.ladder)),
        MinimizeOutcome::Unsat => None,
        // Only reachable when the *solver* was budgeted by the caller.
        MinimizeOutcome::Bound(_) | MinimizeOutcome::Interrupted(_) => None,
    }
}

/// Budgeted cardinality minimization: like [`minimize_true_count`], but
/// each binary-search step is charged to [`BudgetSite::LadderStep`] on
/// `budget`, and exhaustion degrades gracefully — the best *incumbent*
/// bound found so far is returned (flagged inexact) instead of the search
/// aborting. Because every incumbent is feasible, an inexact `k` is always
/// an upper bound on the true minimum: the models within distance `k`
/// are a superset of the optimal ones.
///
/// The budget governs the binary search itself; to also interrupt the
/// individual SAT solves, attach (a clone of) the same budget to the
/// solver with [`Solver::set_budget`].
pub fn minimize_true_count_budgeted(
    solver: &mut Solver,
    targets: &[Lit],
    budget: &Budget,
) -> MinimizeOutcome {
    let n_original = solver.num_vars();
    match solver.solve() {
        SolveResult::Unsat => return MinimizeOutcome::Unsat,
        SolveResult::Interrupted => return MinimizeOutcome::Interrupted(solver_trip(budget)),
        SolveResult::Sat => {}
    }
    let count_in_model = |s: &Solver| {
        targets
            .iter()
            .filter(|l| s.model_value(l.var()) == Some(l.is_pos()))
            .count()
    };
    let best_count = count_in_model(solver);
    let mut best_model: Vec<bool> = solver.model()[..n_original as usize].to_vec();
    if best_count == 0 || targets.is_empty() {
        let ladder = CardinalityLadder::encode(solver, targets);
        return MinimizeOutcome::Bound(MinimizeBound {
            k: best_count,
            model: best_model,
            ladder,
            trip: None,
        });
    }
    let ladder = CardinalityLadder::encode(solver, targets);
    // Invariant: sat with ≤ hi is known (hi = best_count), unsat with ≤ lo-1
    // unknown; classic binary search on the least feasible bound.
    let mut lo = 0usize;
    let mut hi = best_count;
    let mut steps = 0u64;
    let mut trip: Option<Exhausted> = None;
    while lo < hi {
        if let Err(t) = budget.charge(BudgetSite::LadderStep, 1) {
            trip = Some(t);
            break;
        }
        steps += 1;
        let mid = lo + (hi - lo) / 2;
        let assumption = ladder.at_most(mid);
        let assumps: Vec<Lit> = assumption.into_iter().collect();
        match solver.solve_with_assumptions(&assumps) {
            SolveResult::Sat => {
                let c = count_in_model(solver);
                debug_assert!(c <= mid);
                best_model = solver.model()[..n_original as usize].to_vec();
                hi = c;
            }
            SolveResult::Unsat => {
                lo = mid + 1;
            }
            SolveResult::Interrupted => {
                trip = Some(solver_trip(budget));
                break;
            }
        }
    }
    crate::telemetry::CARD_BINSEARCH_STEPS.add(steps);
    MinimizeOutcome::Bound(MinimizeBound {
        k: hi,
        model: best_model,
        ladder,
        trip,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsat_returns_none() {
        let mut s = Solver::new();
        s.ensure_vars(1);
        s.add_dimacs_clause(&[1]);
        s.add_dimacs_clause(&[-1]);
        assert!(minimize_true_count(&mut s, &[Lit::pos(0)]).is_none());
    }

    #[test]
    fn minimum_is_zero_when_targets_unconstrained() {
        let mut s = Solver::new();
        s.ensure_vars(3);
        s.add_dimacs_clause(&[1, 2, 3]);
        // x0 can be false: min true count of {x0} is 0.
        let (k, model, _) = minimize_true_count(&mut s, &[Lit::pos(0)]).unwrap();
        assert_eq!(k, 0);
        assert!(!model[0]);
    }

    #[test]
    fn forced_literals_push_minimum_up() {
        let mut s = Solver::new();
        s.ensure_vars(3);
        // x0 forced; x1 ∨ x2 forced (at least one).
        s.add_dimacs_clause(&[1]);
        s.add_dimacs_clause(&[2, 3]);
        let targets = [Lit::pos(0), Lit::pos(1), Lit::pos(2)];
        let (k, model, _) = minimize_true_count(&mut s, &targets).unwrap();
        assert_eq!(k, 2);
        assert!(model[0]);
        assert!(model[1] ^ model[2] || (model[1] != model[2]));
    }

    #[test]
    fn at_least_constraints_via_big_clauses() {
        // Exactly-one over 4 vars: minimum true count is 1.
        let mut s = Solver::new();
        s.ensure_vars(4);
        s.add_dimacs_clause(&[1, 2, 3, 4]);
        for i in 1..=4 {
            for j in (i + 1)..=4 {
                s.add_dimacs_clause(&[-i, -j]);
            }
        }
        let targets: Vec<Lit> = (0..4).map(Lit::pos).collect();
        let (k, model, _) = minimize_true_count(&mut s, &targets).unwrap();
        assert_eq!(k, 1);
        assert_eq!(model.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn minimize_over_negative_literals() {
        // Maximize trues == minimize falses: x0 ∨ x1 with targets ¬x0, ¬x1.
        let mut s = Solver::new();
        s.ensure_vars(2);
        s.add_dimacs_clause(&[1, 2]);
        let targets = [Lit::neg_on(0), Lit::neg_on(1)];
        let (k, model, _) = minimize_true_count(&mut s, &targets).unwrap();
        assert_eq!(k, 0);
        assert!(model[0] && model[1]);
    }

    #[test]
    fn empty_target_set() {
        let mut s = Solver::new();
        s.ensure_vars(2);
        s.add_dimacs_clause(&[1]);
        let (k, model, _) = minimize_true_count(&mut s, &[]).unwrap();
        assert_eq!(k, 0);
        assert!(model[0]);
    }

    #[test]
    fn budgeted_fault_on_ladder_step_keeps_incumbent_upper_bound() {
        use arbitrex_telemetry::budget::{FaultPlan, TripReason};
        // Exactly-one over 4 vars: true minimum is 1, initial incumbent
        // is whatever the first solve found (≥ 1).
        let mut s = Solver::new();
        s.ensure_vars(4);
        s.add_dimacs_clause(&[1, 2, 3, 4]);
        let targets: Vec<Lit> = (0..4).map(Lit::pos).collect();
        let budget = Budget::unlimited().with_fault(FaultPlan::new(BudgetSite::LadderStep, 1));
        match minimize_true_count_budgeted(&mut s, &targets, &budget) {
            MinimizeOutcome::Bound(b) => {
                assert!(!b.is_exact());
                assert_eq!(b.trip.unwrap().reason, TripReason::Fault);
                // The incumbent is feasible, hence an upper bound on 0
                // (all-false satisfies the clause via... no: clause needs
                // one true) — on the true minimum 1.
                assert!(b.k >= 1);
                assert_eq!(
                    b.model.iter().filter(|&&v| v).count(),
                    b.k,
                    "incumbent model must achieve its own bound"
                );
            }
            other => panic!("expected Bound, got {other:?}"),
        }
    }

    #[test]
    fn budgeted_unlimited_matches_legacy() {
        let mut s = Solver::new();
        s.ensure_vars(3);
        s.add_dimacs_clause(&[1, 2]);
        s.add_dimacs_clause(&[2, 3]);
        let targets: Vec<Lit> = (0..3).map(Lit::pos).collect();
        match minimize_true_count_budgeted(&mut s, &targets, &Budget::unlimited()) {
            MinimizeOutcome::Bound(b) => {
                assert!(b.is_exact());
                assert_eq!(b.k, 1);
            }
            other => panic!("expected exact Bound, got {other:?}"),
        }
    }

    #[test]
    fn budgeted_unsat_is_typed() {
        let mut s = Solver::new();
        s.ensure_vars(1);
        s.add_dimacs_clause(&[1]);
        s.add_dimacs_clause(&[-1]);
        assert!(matches!(
            minimize_true_count_budgeted(&mut s, &[Lit::pos(0)], &Budget::unlimited()),
            MinimizeOutcome::Unsat
        ));
    }

    #[test]
    fn ladder_can_lock_in_the_optimum() {
        let mut s = Solver::new();
        s.ensure_vars(3);
        s.add_dimacs_clause(&[1, 2]);
        s.add_dimacs_clause(&[2, 3]);
        let targets: Vec<Lit> = (0..3).map(Lit::pos).collect();
        let (k, _, ladder) = minimize_true_count(&mut s, &targets).unwrap();
        assert_eq!(k, 1); // x1 alone satisfies both clauses
        ladder.assert_at_most(&mut s, k);
        // Now x1 is effectively forced: check by assuming ¬x1.
        assert_eq!(
            s.solve_with_assumptions(&[Lit::neg_on(1)]),
            SolveResult::Unsat
        );
    }
}
