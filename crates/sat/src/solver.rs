//! The CDCL solver: two-watched-literal propagation, first-UIP learning,
//! VSIDS, phase saving, Luby restarts and LBD-driven clause-database
//! reduction, in the style of MiniSat.

use crate::heap::ActivityHeap;
use crate::lit::{LBool, Lit};
use crate::luby::luby;
use arbitrex_telemetry::budget::{Budget, BudgetSite};

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::model_value`].
    Sat,
    /// The clause set (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The solve was interrupted by an exhausted resource budget (either a
    /// per-call conflict budget from [`Solver::set_conflict_budget`] or a
    /// shared [`Budget`] from [`Solver::set_budget`]) before reaching a
    /// verdict. Neither satisfiability nor unsatisfiability was
    /// established; the solver state remains valid for further calls.
    Interrupted,
}

/// Counters exposed for the benchmarks and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses added.
    pub learnt: u64,
    /// Learnt clauses removed by database reduction.
    pub removed: u64,
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    lbd: u32,
    activity: f64,
    deleted: bool,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: usize,
    blocker: Lit,
}

const VAR_DECAY: f64 = 0.95;
const CLAUSE_DECAY: f64 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;
const LUBY_UNIT: u64 = 100;

/// A CDCL SAT solver over variables `0..n`.
///
/// ```
/// use arbitrex_sat::{Lit, SolveResult, Solver};
/// let mut s = Solver::new();
/// s.ensure_vars(2);
/// s.add_clause(&[Lit::pos(0), Lit::pos(1)]);
/// s.add_clause(&[Lit::neg_on(0)]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert_eq!(s.model_value(1), Some(true));
/// ```
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    clause_inc: f64,
    heap: ActivityHeap,
    phase: Vec<bool>,
    seen: Vec<bool>,
    ok: bool,
    model: Vec<bool>,
    stats: SolverStats,
    n_learnt: usize,
    max_learnt: f64,
    /// Hard conflict budget for a single `solve` call (None = unlimited).
    conflict_budget: Option<u64>,
    budget: Option<Budget>,
    /// Subset of the last call's assumptions responsible for UNSAT.
    conflict_core: Vec<Lit>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Create an empty solver with no variables.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            clause_inc: 1.0,
            heap: ActivityHeap::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            ok: true,
            model: Vec::new(),
            stats: SolverStats::default(),
            n_learnt: 0,
            max_learnt: 0.0,
            conflict_budget: None,
            budget: None,
            conflict_core: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.assigns.len() as u32
    }

    /// Number of clauses currently alive (original + learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }

    /// Solver statistics so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Limit the total number of conflicts `solve` calls may spend.
    /// Exceeding the budget makes `solve` return
    /// [`SolveResult::Interrupted`] instead of a verdict (it used to
    /// panic); the solver stays usable — raise or clear the budget and
    /// solve again.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Attach a shared execution [`Budget`]: every conflict is charged to
    /// [`BudgetSite::Conflict`](arbitrex_telemetry::budget::BudgetSite::Conflict),
    /// and an exhausted budget makes `solve` return
    /// [`SolveResult::Interrupted`]. Unlike [`Solver::set_conflict_budget`]
    /// the budget is shared — clones of it govern other solvers and kernel
    /// scans of the same operator application, and deadlines/cancellation
    /// trip here too.
    pub fn set_budget(&mut self, budget: Option<Budget>) {
        self.budget = budget;
    }

    /// Create a fresh variable and return its index.
    pub fn new_var(&mut self) -> u32 {
        let v = self.assigns.len() as u32;
        self.assigns.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.grow_to(v as usize + 1);
        self.heap.insert(v, &self.activity);
        v
    }

    /// Ensure variables `0..n` exist.
    pub fn ensure_vars(&mut self, n: u32) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    #[inline]
    fn value_lit(&self, l: Lit) -> LBool {
        self.assigns[l.var() as usize].of_lit(l)
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a clause (given in DIMACS `i32` convention).
    pub fn add_dimacs_clause(&mut self, lits: &[i32]) -> bool {
        let lits: Vec<Lit> = lits.iter().map(|&l| Lit::from_dimacs(l)).collect();
        self.add_clause(&lits)
    }

    /// Add a clause. Returns `false` if the clause set became trivially
    /// unsatisfiable at the top level.
    ///
    /// Must be called at decision level 0 (the solver always returns to
    /// level 0 after `solve`).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert_eq!(self.decision_level(), 0, "clauses must be added at level 0");
        if !self.ok {
            return false;
        }
        for &l in lits {
            assert!(l.var() < self.num_vars(), "literal on unknown variable {l}");
        }
        // Normalize: sort, dedupe, drop false literals, detect tautologies
        // and satisfied clauses.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        let mut out: Vec<Lit> = Vec::with_capacity(ls.len());
        for &l in &ls {
            if ls.binary_search(&l.negate()).is_ok() {
                return true; // tautology
            }
            match self.value_lit(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop
                LBool::Undef => out.push(l),
            }
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(out[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_new_clause(out, false, 0);
                true
            }
        }
    }

    fn attach_new_clause(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> usize {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len();
        let w0 = Watcher {
            cref,
            blocker: lits[1],
        };
        let w1 = Watcher {
            cref,
            blocker: lits[0],
        };
        self.watches[lits[0].code()].push(w0);
        self.watches[lits[1].code()].push(w1);
        self.clauses.push(Clause {
            lits,
            learnt,
            lbd,
            activity: 0.0,
            deleted: false,
        });
        if learnt {
            self.n_learnt += 1;
            self.stats.learnt += 1;
        }
        cref
    }

    fn detach_clause(&mut self, cref: usize) {
        let (l0, l1) = {
            let c = &self.clauses[cref];
            (c.lits[0], c.lits[1])
        };
        self.watches[l0.code()].retain(|w| w.cref != cref);
        self.watches[l1.code()].retain(|w| w.cref != cref);
    }

    #[inline]
    fn unchecked_enqueue(&mut self, l: Lit, from: Option<usize>) {
        debug_assert!(self.value_lit(l).is_undef());
        let v = l.var() as usize;
        self.assigns[v] = LBool::from_bool(l.is_pos());
        self.level[v] = self.decision_level();
        self.reason[v] = from;
        self.trail.push(l);
    }

    /// Unit propagation. Returns the conflicting clause reference, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = p.negate();
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            let mut kept = 0;
            let mut conflict = None;
            while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Fast path: blocker already true.
                if self.value_lit(w.blocker).is_true() {
                    ws[kept] = w;
                    kept += 1;
                    continue;
                }
                let cref = w.cref;
                // Make sure the false literal is at position 1.
                let first = {
                    let c = &mut self.clauses[cref];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    c.lits[0]
                };
                debug_assert_eq!(self.clauses[cref].lits[1], false_lit);
                if first != w.blocker && self.value_lit(first).is_true() {
                    ws[kept] = Watcher {
                        cref,
                        blocker: first,
                    };
                    kept += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                {
                    let n = self.clauses[cref].lits.len();
                    for k in 2..n {
                        let lk = self.clauses[cref].lits[k];
                        if !self.value_lit(lk).is_false() {
                            self.clauses[cref].lits.swap(1, k);
                            self.watches[lk.code()].push(Watcher {
                                cref,
                                blocker: first,
                            });
                            moved = true;
                            break;
                        }
                    }
                }
                if moved {
                    continue; // watcher moved away from false_lit's list
                }
                // Clause is unit or conflicting.
                ws[kept] = Watcher {
                    cref,
                    blocker: first,
                };
                kept += 1;
                if self.value_lit(first).is_false() {
                    // Conflict: keep the remaining watchers and bail out.
                    while i < ws.len() {
                        ws[kept] = ws[i];
                        kept += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(cref);
                } else {
                    self.unchecked_enqueue(first, Some(cref));
                }
            }
            ws.truncate(kept);
            debug_assert!(self.watches[false_lit.code()].is_empty());
            self.watches[false_lit.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        for idx in (bound..self.trail.len()).rev() {
            let l = self.trail[idx];
            let v = l.var() as usize;
            self.phase[v] = l.is_pos();
            self.assigns[v] = LBool::Undef;
            self.reason[v] = None;
            self.heap.insert(l.var(), &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, v: u32) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1.0 / RESCALE_LIMIT;
            }
            self.var_inc *= 1.0 / RESCALE_LIMIT;
        }
        self.heap.decrease_key_of(v, &self.activity);
    }

    fn decay_activities(&mut self) {
        self.var_inc /= VAR_DECAY;
        self.clause_inc /= CLAUSE_DECAY;
    }

    fn bump_clause(&mut self, cref: usize) {
        let c = &mut self.clauses[cref];
        if !c.learnt {
            return;
        }
        c.activity += self.clause_inc;
        if c.activity > RESCALE_LIMIT {
            for cl in self.clauses.iter_mut().filter(|cl| cl.learnt) {
                cl.activity *= 1.0 / RESCALE_LIMIT;
            }
            self.clause_inc *= 1.0 / RESCALE_LIMIT;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: usize) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(0)]; // placeholder for the asserting literal
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut to_clear: Vec<u32> = Vec::new();
        loop {
            self.bump_clause(confl);
            let start = if p.is_some() { 1 } else { 0 };
            // The propagated literal of a reason clause sits at lits[0];
            // skip it when walking a reason (but not the initial conflict).
            let clause_lits: Vec<Lit> = self.clauses[confl].lits[start..].to_vec();
            for q in clause_lits {
                let v = q.var();
                if !self.seen[v as usize] && self.level[v as usize] > 0 {
                    self.seen[v as usize] = true;
                    to_clear.push(v);
                    self.bump_var(v);
                    if self.level[v as usize] >= self.decision_level() {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk back the trail to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let lit = self.trail[index];
            self.seen[lit.var() as usize] = false;
            path_count -= 1;
            if path_count == 0 {
                learnt[0] = lit.negate();
                break;
            }
            p = Some(lit);
            confl = self.reason[lit.var() as usize]
                .expect("non-decision literal on conflict path must have a reason");
        }

        // Basic clause minimization: drop literals implied by the rest.
        let keep: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&l| !self.literal_redundant(l))
            .collect();
        learnt.truncate(1);
        learnt.extend(keep);

        for v in to_clear {
            self.seen[v as usize] = false;
        }

        // Find backtrack level and move the highest-level literal to slot 1.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var() as usize] > self.level[learnt[max_i].var() as usize] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var() as usize]
        };
        (learnt, bt)
    }

    /// Is `l` (a non-asserting learnt literal) implied by the other marked
    /// literals? Checks one reason step — the classic "basic" minimization.
    fn literal_redundant(&self, l: Lit) -> bool {
        let v = l.var() as usize;
        match self.reason[v] {
            None => false,
            Some(cref) => self.clauses[cref].lits[1..].iter().all(|&q| {
                let qv = q.var() as usize;
                self.seen[qv] || self.level[qv] == 0
            }),
        }
    }

    fn lbd_of(&mut self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level[l.var() as usize]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn reduce_db(&mut self) {
        // Collect learnt, non-locked, non-binary clauses. Locked = used as
        // a reason; collected into a set once so the scan below is O(C),
        // not O(num_vars x C).
        let locked: std::collections::HashSet<usize> =
            self.reason.iter().flatten().copied().collect();
        let is_locked = |cref: usize| locked.contains(&cref);
        let mut candidates: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| {
                let c = &self.clauses[i];
                c.learnt && !c.deleted && c.lits.len() > 2 && !is_locked(i)
            })
            .collect();
        // Worst first: high LBD, then low activity.
        candidates.sort_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a], &self.clauses[b]);
            cb.lbd
                .cmp(&ca.lbd)
                .then(ca.activity.partial_cmp(&cb.activity).unwrap())
        });
        let remove_count = candidates.len() / 2;
        for &cref in candidates.iter().take(remove_count) {
            self.detach_clause(cref);
            self.clauses[cref].deleted = true;
            self.n_learnt -= 1;
            self.stats.removed += 1;
        }
    }

    /// Solve the current clause set.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solve under the given assumption literals. The assumptions hold only
    /// for this call; learnt clauses are kept for future calls.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        if let Some(b) = &self.budget {
            if b.tripped().is_some() {
                return SolveResult::Interrupted;
            }
        }
        for &a in assumptions {
            assert!(
                a.var() < self.num_vars(),
                "assumption on unknown variable {a}"
            );
        }
        self.conflict_core.clear();
        self.max_learnt = (self.clauses.len().max(100) as f64) * 0.4;
        let mut restart_idx = 1u64;
        let result = loop {
            let budget = luby(restart_idx) * LUBY_UNIT;
            match self.search(budget, assumptions) {
                Some(r) => break r,
                None => {
                    // Restart.
                    self.stats.restarts += 1;
                    restart_idx += 1;
                    self.cancel_until(0);
                    if self.n_learnt as f64 > self.max_learnt {
                        self.reduce_db();
                        self.max_learnt *= 1.3;
                    }
                }
            }
        };
        self.cancel_until(0);
        result
    }

    /// Search with a conflict budget; `None` means "restart requested".
    fn search(&mut self, budget: u64, assumptions: &[Lit]) -> Option<SolveResult> {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if let Some(max) = self.conflict_budget {
                    if self.stats.conflicts > max {
                        return Some(SolveResult::Interrupted);
                    }
                }
                if let Some(b) = &self.budget {
                    if b.charge(BudgetSite::Conflict, 1).is_err() {
                        return Some(SolveResult::Interrupted);
                    }
                }
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(SolveResult::Unsat);
                }
                let (learnt, bt) = self.analyze(confl);
                // Never undo assumption levels blindly: if the backtrack
                // level is below the assumption prefix we re-establish the
                // assumptions in the decision loop below.
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let lbd = self.lbd_of(&learnt);
                    let asserting = learnt[0];
                    let cref = self.attach_new_clause(learnt, true, lbd);
                    self.unchecked_enqueue(asserting, Some(cref));
                }
                self.decay_activities();
                if conflicts_here >= budget {
                    return None; // restart
                }
            } else {
                // Establish assumptions, one decision level each.
                let mut next: Option<Lit> = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.value_lit(a) {
                        LBool::True => {
                            // Dummy level so indices stay aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            self.conflict_core = self.analyze_final(a);
                            return Some(SolveResult::Unsat);
                        }
                        LBool::Undef => {
                            next = Some(a);
                            break;
                        }
                    }
                }
                let decision = match next {
                    Some(a) => a,
                    None => match self.pick_branch() {
                        Some(l) => l,
                        None => {
                            // Complete assignment: capture the model.
                            self.model = self.assigns.iter().map(|&a| a.is_true()).collect();
                            return Some(SolveResult::Sat);
                        }
                    },
                };
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                self.unchecked_enqueue(decision, None);
            }
        }
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.assigns[v as usize].is_undef() {
                return Some(Lit::new(v, self.phase[v as usize]));
            }
        }
        None
    }

    /// Which assumptions caused the falsification of assumption `p`:
    /// walk the implication graph from `¬p` back to assumption decisions.
    fn analyze_final(&mut self, p: Lit) -> Vec<Lit> {
        let mut core = vec![p];
        if self.decision_level() == 0 {
            return core;
        }
        let base = self.trail_lim[0];
        self.seen[p.var() as usize] = true;
        for idx in (base..self.trail.len()).rev() {
            let l = self.trail[idx];
            let v = l.var() as usize;
            if !self.seen[v] {
                continue;
            }
            match self.reason[v] {
                None => {
                    // A decision inside the assumption prefix — i.e. an
                    // assumption literal (search decisions cannot be below
                    // the current point, since we are still establishing
                    // assumptions).
                    core.push(l);
                }
                Some(cref) => {
                    for &q in &self.clauses[cref].lits[1..] {
                        if self.level[q.var() as usize] > 0 {
                            self.seen[q.var() as usize] = true;
                        }
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[p.var() as usize] = false;
        core.sort_unstable();
        core.dedup();
        core
    }

    /// After [`Solver::solve_with_assumptions`] returns
    /// [`SolveResult::Unsat`], the subset of the assumptions that (with
    /// the clause set) already forces unsatisfiability. Empty when the
    /// clause set is unsatisfiable on its own.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// The value of variable `v` in the last satisfying model, or `None` if
    /// no model has been found yet / `v` is out of range.
    pub fn model_value(&self, v: u32) -> Option<bool> {
        self.model.get(v as usize).copied()
    }

    /// The last satisfying model as booleans indexed by variable.
    pub fn model(&self) -> &[bool] {
        &self.model
    }

    /// Has the clause set been proven unsatisfiable at the top level?
    pub fn is_known_unsat(&self) -> bool {
        !self.ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(d: i32) -> Lit {
        Lit::from_dimacs(d)
    }

    fn solver_with(n: u32, clauses: &[&[i32]]) -> Solver {
        let mut s = Solver::new();
        s.ensure_vars(n);
        for c in clauses {
            s.add_dimacs_clause(c);
        }
        s
    }

    #[test]
    fn empty_problem_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = solver_with(3, &[&[1], &[-1, 2], &[-2, 3]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(0), Some(true));
        assert_eq!(s.model_value(1), Some(true));
        assert_eq!(s.model_value(2), Some(true));
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut s = solver_with(1, &[&[1], &[-1]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.is_known_unsat());
    }

    #[test]
    fn simple_conflict_driven_case() {
        // (a∨b) ∧ (a∨¬b) ∧ (¬a∨b) ∧ (¬a∨¬b) is unsat.
        let mut s = solver_with(2, &[&[1, 2], &[1, -2], &[-1, 2], &[-1, -2]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let clauses: Vec<Vec<i32>> = vec![
            vec![1, 2, 3],
            vec![-1, -2],
            vec![-2, -3],
            vec![-1, -3],
            vec![2, 3],
        ];
        let mut s = Solver::new();
        s.ensure_vars(3);
        for c in &clauses {
            s.add_dimacs_clause(c);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        for c in &clauses {
            assert!(
                c.iter().any(|&l| {
                    let val = s.model_value(l.unsigned_abs() - 1).unwrap();
                    (l > 0) == val
                }),
                "model violates clause {c:?}"
            );
        }
    }

    #[test]
    fn tautologies_and_duplicates_are_ignored() {
        let mut s = solver_with(2, &[&[1, -1], &[2, 2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(1), Some(true));
    }

    #[test]
    fn assumptions_constrain_and_are_forgotten() {
        let mut s = solver_with(2, &[&[1, 2]]);
        assert_eq!(s.solve_with_assumptions(&[lit(-1)]), SolveResult::Sat);
        assert_eq!(s.model_value(1), Some(true));
        assert_eq!(
            s.solve_with_assumptions(&[lit(-1), lit(-2)]),
            SolveResult::Unsat
        );
        // Assumptions do not persist.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn conflicting_assumptions_unsat() {
        let mut s = solver_with(2, &[&[-1, 2]]);
        assert_eq!(
            s.solve_with_assumptions(&[lit(1), lit(-2)]),
            SolveResult::Unsat
        );
    }

    #[test]
    fn php_3_pigeons_2_holes_unsat() {
        // Pigeonhole: pigeon i in hole j = var 2i+j+1 (i<3, j<2).
        let p = |i: u32, j: u32| (2 * i + j + 1) as i32;
        let mut s = Solver::new();
        s.ensure_vars(6);
        for i in 0..3 {
            s.add_dimacs_clause(&[p(i, 0), p(i, 1)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_dimacs_clause(&[-p(i1, j), -p(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn php_5_pigeons_4_holes_unsat_exercises_learning() {
        let holes = 4u32;
        let p = |i: u32, j: u32| (holes * i + j + 1) as i32;
        let mut s = Solver::new();
        s.ensure_vars(5 * holes);
        for i in 0..5 {
            let c: Vec<i32> = (0..holes).map(|j| p(i, j)).collect();
            s.add_dimacs_clause(&c);
        }
        for j in 0..holes {
            for i1 in 0..5 {
                for i2 in (i1 + 1)..5 {
                    s.add_dimacs_clause(&[-p(i1, j), -p(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn solver_is_reusable_after_sat() {
        let mut s = solver_with(2, &[&[1, 2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        // Add a clause afterwards and re-solve.
        s.add_dimacs_clause(&[-1]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(0), Some(false));
        assert_eq!(s.model_value(1), Some(true));
        s.add_dimacs_clause(&[-2]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unsat_core_is_a_relevant_subset_of_assumptions() {
        // x1 ∧ x2 → ⊥ via clauses; x3 is irrelevant.
        let mut s = solver_with(3, &[&[-1, -2]]);
        let assumps = [lit(1), lit(3), lit(2)];
        assert_eq!(s.solve_with_assumptions(&assumps), SolveResult::Unsat);
        let core: Vec<Lit> = s.unsat_core().to_vec();
        assert!(
            core.iter().all(|l| assumps.contains(l)),
            "core ⊆ assumptions"
        );
        assert!(!core.contains(&lit(3)), "irrelevant assumption excluded");
        // The core alone must still be unsat.
        assert_eq!(s.solve_with_assumptions(&core), SolveResult::Unsat);
        // And the problem is sat without assumptions.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unsat_core_chains_through_propagation() {
        // x1 → x2 → x3; assuming x1 and ¬x3 conflicts via the chain.
        let mut s = solver_with(4, &[&[-1, 2], &[-2, 3]]);
        let assumps = [lit(4), lit(1), lit(-3)];
        assert_eq!(s.solve_with_assumptions(&assumps), SolveResult::Unsat);
        let core: Vec<Lit> = s.unsat_core().to_vec();
        assert!(core.contains(&lit(1)));
        assert!(core.contains(&lit(-3)));
        assert!(!core.contains(&lit(4)));
        assert_eq!(s.solve_with_assumptions(&core), SolveResult::Unsat);
    }

    #[test]
    fn unsat_core_empty_when_clauses_alone_unsat() {
        let mut s = solver_with(2, &[&[1], &[-1]]);
        assert_eq!(s.solve_with_assumptions(&[lit(2)]), SolveResult::Unsat);
        assert!(s.unsat_core().is_empty());
    }

    #[test]
    fn unsat_core_cleared_between_calls() {
        let mut s = solver_with(2, &[&[-1, -2]]);
        assert_eq!(
            s.solve_with_assumptions(&[lit(1), lit(2)]),
            SolveResult::Unsat
        );
        assert!(!s.unsat_core().is_empty());
        assert_eq!(s.solve_with_assumptions(&[lit(1)]), SolveResult::Sat);
        assert!(s.unsat_core().is_empty());
    }

    #[test]
    fn stats_accumulate() {
        let mut s = solver_with(3, &[&[1, 2, 3], &[-1, -2], &[-1, -3], &[-2, -3]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.stats().propagations > 0);
    }

    /// Brute-force cross-check on random 3-CNF instances.
    #[test]
    fn agrees_with_brute_force_on_random_3cnf() {
        // xorshift for determinism without dev-deps in this unit test.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..60 {
            let n = 5 + (round % 4) as u32; // 5..8 vars
            let m = (n as usize) * 4;
            let mut clauses: Vec<Vec<i32>> = Vec::new();
            for _ in 0..m {
                let mut c = Vec::new();
                while c.len() < 3 {
                    let v = (next() % n as u64) as i32 + 1;
                    if !c.contains(&v) && !c.contains(&-v) {
                        c.push(if next() % 2 == 0 { v } else { -v });
                    }
                }
                clauses.push(c);
            }
            // Brute force.
            let brute_sat = (0..1u64 << n).any(|bits| {
                clauses.iter().all(|c| {
                    c.iter().any(|&l| {
                        let v = l.unsigned_abs() - 1;
                        ((bits >> v) & 1 == 1) == (l > 0)
                    })
                })
            });
            let mut s = Solver::new();
            s.ensure_vars(n);
            for c in &clauses {
                s.add_dimacs_clause(c);
            }
            let got = s.solve() == SolveResult::Sat;
            assert_eq!(got, brute_sat, "mismatch on round {round}: {clauses:?}");
            if got {
                for c in &clauses {
                    assert!(c.iter().any(|&l| {
                        let val = s.model_value(l.unsigned_abs() - 1).unwrap();
                        (l > 0) == val
                    }));
                }
            }
        }
    }

    /// Pigeonhole principle PHP(p, p-1): p pigeons into p-1 holes, unsat
    /// and conflict-hungry — the canonical budget-tripping instance.
    fn pigeonhole(pigeons: u32) -> Solver {
        let holes = pigeons - 1;
        let var = |p: u32, h: u32| (p * holes + h + 1) as i32;
        let mut s = Solver::new();
        s.ensure_vars(pigeons * holes);
        for p in 0..pigeons {
            let c: Vec<i32> = (0..holes).map(|h| var(p, h)).collect();
            s.add_dimacs_clause(&c);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_dimacs_clause(&[-var(p1, h), -var(p2, h)]);
                }
            }
        }
        s
    }

    #[test]
    fn exceeded_conflict_budget_returns_interrupted_not_panic() {
        let mut s = pigeonhole(8);
        s.set_conflict_budget(Some(5));
        assert_eq!(s.solve(), SolveResult::Interrupted);
        // The solver stays usable: clear the budget and finish the proof.
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn generous_conflict_budget_still_reaches_a_verdict() {
        let mut s = pigeonhole(4);
        s.set_conflict_budget(Some(1_000_000));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn shared_budget_interrupts_search() {
        use arbitrex_telemetry::budget::TripReason;
        let budget = Budget::unlimited().with_conflict_limit(5);
        let mut s = pigeonhole(8);
        s.set_budget(Some(budget.clone()));
        assert_eq!(s.solve(), SolveResult::Interrupted);
        let trip = budget.tripped().unwrap();
        assert_eq!(trip.site, BudgetSite::Conflict);
        assert_eq!(trip.reason, TripReason::Conflicts);
        assert!(budget.spent().conflicts >= 5);
        // A tripped shared budget rejects follow-up solves immediately.
        assert_eq!(s.solve(), SolveResult::Interrupted);
        // Detaching it restores full solving.
        s.set_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn cancel_token_interrupts_search() {
        use arbitrex_telemetry::budget::{CancelToken, TripReason};
        let token = CancelToken::new();
        token.cancel(); // pre-cancelled: trips on the first conflict
        let mut s = pigeonhole(8);
        s.set_budget(Some(Budget::unlimited().with_cancel(token)));
        assert_eq!(s.solve(), SolveResult::Interrupted);
        let b = s.budget.as_ref().unwrap();
        assert_eq!(b.tripped().unwrap().reason, TripReason::Cancelled);
    }
}
