//! Solver-side telemetry: process-global counters for the SAT substrate.
//!
//! The counters here cover what the CDCL engine and its satellite
//! procedures (cardinality ladders, distance minimization, AllSAT) did —
//! `arbitrex-core` assembles them into the `"sat"` section of its
//! [`TelemetrySnapshot`](arbitrex_telemetry::TelemetrySnapshot). Every
//! counter is defined in `OBSERVABILITY.md` at the workspace root.
//!
//! All state lives in `arbitrex-telemetry`; when that crate's `enabled`
//! feature is off (i.e. `arbitrex-core` was built without its `telemetry`
//! feature) every static here is zero-sized and every call a no-op.
//!
//! Core solver counters ([`Solver`] decisions, propagations, conflicts,
//! restarts, learnt clauses) are not incremented inside the solve loop —
//! the solver already tracks them in its own [`SolverStats`]. Callers that
//! retire a solver instance report its totals once via [`record_solver`],
//! keeping the hot path free of atomics.

use crate::solver::{Solver, SolverStats};
use arbitrex_telemetry::{Counter, Section};

/// Decisions made across all recorded solver instances.
pub static DECISIONS: Counter = Counter::new("decisions");
/// Literals propagated by unit propagation.
pub static PROPAGATIONS: Counter = Counter::new("propagations");
/// Conflicts analyzed (first-UIP learning invocations).
pub static CONFLICTS: Counter = Counter::new("conflicts");
/// Luby restarts performed.
pub static RESTARTS: Counter = Counter::new("restarts");
/// Learnt clauses added to the database.
pub static LEARNT_CLAUSES: Counter = Counter::new("learnt_clauses");
/// Sequential-counter cardinality ladders encoded ([`crate::card`]).
pub static CARD_LADDERS_ENCODED: Counter = Counter::new("card_ladders_encoded");
/// Solve calls spent binary-searching a cardinality bound — the loop of
/// [`crate::optimize::minimize_true_count`] and the radius search of the
/// odist fitting backend.
pub static CARD_BINSEARCH_STEPS: Counter = Counter::new("card_binsearch_steps");
/// Models found during AllSAT enumeration (pre-projection-dedup).
pub static ALLSAT_MODELS: Counter = Counter::new("allsat_models");
/// Blocking clauses added during AllSAT enumeration.
pub static ALLSAT_BLOCKING_CLAUSES: Counter = Counter::new("allsat_blocking_clauses");

/// The `"sat"` section: every counter owned by this crate, in display order.
pub static SAT_SECTION: Section = Section {
    name: "sat",
    counters: &[
        &DECISIONS,
        &PROPAGATIONS,
        &CONFLICTS,
        &RESTARTS,
        &LEARNT_CLAUSES,
        &CARD_LADDERS_ENCODED,
        &CARD_BINSEARCH_STEPS,
        &ALLSAT_MODELS,
        &ALLSAT_BLOCKING_CLAUSES,
    ],
    timers: &[],
};

/// Fold a retiring solver's cumulative [`SolverStats`] into the global
/// counters. Call once per solver instance (the stats are cumulative over
/// the instance's lifetime, so recording twice double-counts).
pub fn record_solver(solver: &Solver) {
    record_stats(&solver.stats());
}

/// Fold an explicit [`SolverStats`] reading into the global counters.
pub fn record_stats(stats: &SolverStats) {
    DECISIONS.add(stats.decisions);
    PROPAGATIONS.add(stats.propagations);
    CONFLICTS.add(stats.conflicts);
    RESTARTS.add(stats.restarts);
    LEARNT_CLAUSES.add(stats.learnt);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn record_solver_folds_stats() {
        let before = CONFLICTS.get();
        let mut s = Solver::new();
        s.ensure_vars(3);
        // A small unsat core forces at least one conflict.
        s.add_dimacs_clause(&[1, 2]);
        s.add_dimacs_clause(&[1, -2]);
        s.add_dimacs_clause(&[-1, 2]);
        s.add_dimacs_clause(&[-1, -2]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        record_solver(&s);
        if arbitrex_telemetry::enabled() {
            assert!(CONFLICTS.get() > before);
        } else {
            assert_eq!(CONFLICTS.get(), 0);
        }
    }
}
