//! Randomized tests for the CDCL solver against brute-force ground truth
//! on random instances. Seeded generators replace proptest strategies
//! (offline build); case indices in assertions allow deterministic replay.

use arbitrex_sat::{
    enumerate_models, minimize_true_count, parse_dimacs, write_dimacs, AllSatLimit,
    CardinalityLadder, Lit, SolveResult, Solver,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

const CASES: usize = 192;

/// A random clause set over `n` variables: up to `max_clauses` clauses of
/// 1–3 literals, repeated/complementary variables allowed.
fn gen_clause_set<R: Rng + ?Sized>(rng: &mut R, n: u32, max_clauses: usize) -> Vec<Vec<i32>> {
    let n_clauses = rng.random_range(0..max_clauses);
    (0..n_clauses)
        .map(|_| {
            let len = rng.random_range(1..4usize);
            (0..len)
                .map(|_| {
                    let v = rng.random_range(1..=n as i32);
                    if rng.random() {
                        v
                    } else {
                        -v
                    }
                })
                .collect()
        })
        .collect()
}

fn brute_force_models(n: u32, clauses: &[Vec<i32>]) -> Vec<u64> {
    (0..1u64 << n)
        .filter(|&bits| {
            clauses.iter().all(|c| {
                c.iter().any(|&l| {
                    let v = l.unsigned_abs() - 1;
                    ((bits >> v) & 1 == 1) == (l > 0)
                })
            })
        })
        .collect()
}

fn solver_with(n: u32, clauses: &[Vec<i32>]) -> Solver {
    let mut s = Solver::new();
    s.ensure_vars(n);
    for c in clauses {
        s.add_dimacs_clause(c);
    }
    s
}

#[test]
fn solve_agrees_with_brute_force() {
    let mut rng = StdRng::seed_from_u64(0x5A71);
    let n = 7;
    for case in 0..CASES {
        let clauses = gen_clause_set(&mut rng, n, 30);
        let brute = brute_force_models(n, &clauses);
        let mut s = solver_with(n, &clauses);
        let got = s.solve() == SolveResult::Sat;
        assert_eq!(got, !brute.is_empty(), "sat verdict, case {case}");
        if got {
            let model_bits: u64 = (0..n)
                .filter(|&v| s.model_value(v) == Some(true))
                .map(|v| 1u64 << v)
                .sum();
            assert!(
                brute.contains(&model_bits),
                "solver model not a real model, case {case}"
            );
        }
    }
}

#[test]
fn allsat_enumerates_exactly_the_brute_force_models() {
    let mut rng = StdRng::seed_from_u64(0x5A72);
    let n = 6;
    for case in 0..CASES {
        let clauses = gen_clause_set(&mut rng, n, 20);
        let brute = brute_force_models(n, &clauses);
        let mut s = solver_with(n, &clauses);
        let got = enumerate_models(&mut s, n, AllSatLimit::Unlimited).unwrap();
        assert_eq!(got, brute, "allsat, case {case}");
    }
}

#[test]
fn assumptions_match_clause_addition() {
    let mut rng = StdRng::seed_from_u64(0x5A73);
    let n = 6;
    for case in 0..CASES {
        // Solving under assumption l must agree with solving clauses+{l}.
        let clauses = gen_clause_set(&mut rng, n, 20);
        let assume = rng.random_range(1..6i32);
        let mut s1 = solver_with(n, &clauses);
        let under_assumption =
            s1.solve_with_assumptions(&[Lit::from_dimacs(assume)]) == SolveResult::Sat;
        let mut with_clause = clauses.clone();
        with_clause.push(vec![assume]);
        let brute = brute_force_models(n, &with_clause);
        assert_eq!(
            under_assumption,
            !brute.is_empty(),
            "assumption, case {case}"
        );
    }
}

#[test]
fn minimize_true_count_is_optimal() {
    let mut rng = StdRng::seed_from_u64(0x5A74);
    let n = 6;
    for case in 0..CASES {
        let clauses = gen_clause_set(&mut rng, n, 16);
        let brute = brute_force_models(n, &clauses);
        let mut s = solver_with(n, &clauses);
        let targets: Vec<Lit> = (0..n).map(Lit::pos).collect();
        match minimize_true_count(&mut s, &targets) {
            None => assert!(brute.is_empty(), "spurious UNSAT, case {case}"),
            Some((k, model, _)) => {
                let best = brute.iter().map(|b| b.count_ones()).min().unwrap();
                assert_eq!(k as u32, best, "minimum cardinality, case {case}");
                let model_bits: u64 = model
                    .iter()
                    .take(n as usize)
                    .enumerate()
                    .filter(|&(_, &b)| b)
                    .map(|(v, _)| 1u64 << v)
                    .sum();
                assert!(brute.contains(&model_bits), "witness model, case {case}");
                assert_eq!(model_bits.count_ones(), best, "witness weight, case {case}");
            }
        }
    }
}

#[test]
fn cardinality_ladder_bounds_are_exact() {
    let mut rng = StdRng::seed_from_u64(0x5A75);
    let n = 6;
    for case in 0..CASES {
        // Free variables + at-most-k: satisfiable iff forced ≤ k.
        let k = rng.random_range(0..6usize);
        let forced = rng.random_range(0..6u32);
        let mut s = Solver::new();
        s.ensure_vars(n);
        let inputs: Vec<Lit> = (0..n).map(Lit::pos).collect();
        let ladder = CardinalityLadder::encode(&mut s, &inputs);
        let mut assumps: Vec<Lit> = ladder.at_most(k).into_iter().collect();
        assumps.extend((0..forced).map(Lit::pos));
        let sat = s.solve_with_assumptions(&assumps) == SolveResult::Sat;
        assert_eq!(
            sat,
            forced as usize <= k,
            "ladder k={k} forced={forced}, case {case}"
        );
    }
}

#[test]
fn dimacs_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5A76);
    for case in 0..CASES {
        let clauses = gen_clause_set(&mut rng, 8, 25);
        let text = write_dimacs(8, &clauses);
        let parsed = parse_dimacs(&text).unwrap();
        assert_eq!(parsed.n_vars, 8, "dimacs n_vars, case {case}");
        assert_eq!(parsed.clauses, clauses, "dimacs clauses, case {case}");
    }
}

#[test]
fn unsat_cores_are_sound() {
    let mut rng = StdRng::seed_from_u64(0x5A77);
    let n = 6;
    for case in 0..CASES {
        // Assume a random subset of positive literals; when UNSAT, the
        // reported core must itself be UNSAT with the clause set.
        let clauses = gen_clause_set(&mut rng, n, 16);
        let assume_mask = rng.random_range(1u32..64);
        let assumps: Vec<Lit> = (0..n)
            .filter(|&v| assume_mask >> v & 1 == 1)
            .map(Lit::pos)
            .collect();
        let mut s = solver_with(n, &clauses);
        if s.solve_with_assumptions(&assumps) == SolveResult::Unsat {
            let core: Vec<Lit> = s.unsat_core().to_vec();
            assert!(
                core.iter().all(|l| assumps.contains(l)),
                "core not a subset of assumptions, case {case}"
            );
            let mut s2 = solver_with(n, &clauses);
            assert_eq!(
                s2.solve_with_assumptions(&core),
                SolveResult::Unsat,
                "core not itself UNSAT, case {case}"
            );
        }
    }
}

#[test]
fn incremental_solving_is_consistent() {
    let mut rng = StdRng::seed_from_u64(0x5A78);
    let n = 6;
    for case in 0..CASES {
        // Solving base then adding extra must equal solving base+extra
        // from scratch.
        let base = gen_clause_set(&mut rng, n, 12);
        let extra = gen_clause_set(&mut rng, n, 6);
        let mut incremental = solver_with(n, &base);
        let _ = incremental.solve();
        for c in &extra {
            incremental.add_dimacs_clause(c);
        }
        let inc = incremental.solve() == SolveResult::Sat;
        let mut all = base.clone();
        all.extend(extra.iter().cloned());
        let fresh = !brute_force_models(n, &all).is_empty();
        assert_eq!(inc, fresh, "incremental vs fresh, case {case}");
    }
}
