//! Property-based tests for the CDCL solver against brute-force ground
//! truth on random instances.

use arbitrex_sat::{
    enumerate_models, minimize_true_count, parse_dimacs, write_dimacs, AllSatLimit,
    CardinalityLadder, Lit, SolveResult, Solver,
};
use proptest::prelude::*;

/// Strategy: a random clause set over `n` variables.
fn clause_set(n: u32, max_clauses: usize) -> impl Strategy<Value = Vec<Vec<i32>>> {
    let lit = (1..=n as i32).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
    let clause = prop::collection::vec(lit, 1..4);
    prop::collection::vec(clause, 0..max_clauses)
}

fn brute_force_models(n: u32, clauses: &[Vec<i32>]) -> Vec<u64> {
    (0..1u64 << n)
        .filter(|&bits| {
            clauses.iter().all(|c| {
                c.iter().any(|&l| {
                    let v = l.unsigned_abs() - 1;
                    ((bits >> v) & 1 == 1) == (l > 0)
                })
            })
        })
        .collect()
}

fn solver_with(n: u32, clauses: &[Vec<i32>]) -> Solver {
    let mut s = Solver::new();
    s.ensure_vars(n);
    for c in clauses {
        s.add_dimacs_clause(c);
    }
    s
}

proptest! {
    #[test]
    fn solve_agrees_with_brute_force(clauses in clause_set(7, 30)) {
        let n = 7;
        let brute = brute_force_models(n, &clauses);
        let mut s = solver_with(n, &clauses);
        let got = s.solve() == SolveResult::Sat;
        prop_assert_eq!(got, !brute.is_empty());
        if got {
            let model_bits: u64 = (0..n)
                .filter(|&v| s.model_value(v) == Some(true))
                .map(|v| 1u64 << v)
                .sum();
            prop_assert!(brute.contains(&model_bits), "solver model not a real model");
        }
    }

    #[test]
    fn allsat_enumerates_exactly_the_brute_force_models(clauses in clause_set(6, 20)) {
        let n = 6;
        let brute = brute_force_models(n, &clauses);
        let mut s = solver_with(n, &clauses);
        let got = enumerate_models(&mut s, n, AllSatLimit::Unlimited).unwrap();
        prop_assert_eq!(got, brute);
    }

    #[test]
    fn assumptions_match_clause_addition(clauses in clause_set(6, 20), assume in 1..6i32) {
        // Solving under assumption l must agree with solving clauses+{l}.
        let n = 6;
        let mut s1 = solver_with(n, &clauses);
        let under_assumption =
            s1.solve_with_assumptions(&[Lit::from_dimacs(assume)]) == SolveResult::Sat;
        let mut with_clause = clauses.clone();
        with_clause.push(vec![assume]);
        let brute = brute_force_models(n, &with_clause);
        prop_assert_eq!(under_assumption, !brute.is_empty());
    }

    #[test]
    fn minimize_true_count_is_optimal(clauses in clause_set(6, 16)) {
        let n = 6;
        let brute = brute_force_models(n, &clauses);
        let mut s = solver_with(n, &clauses);
        let targets: Vec<Lit> = (0..n).map(Lit::pos).collect();
        match minimize_true_count(&mut s, &targets) {
            None => prop_assert!(brute.is_empty()),
            Some((k, model, _)) => {
                let best = brute.iter().map(|b| b.count_ones()).min().unwrap();
                prop_assert_eq!(k as u32, best);
                let model_bits: u64 = model
                    .iter()
                    .take(n as usize)
                    .enumerate()
                    .filter(|&(_, &b)| b)
                    .map(|(v, _)| 1u64 << v)
                    .sum();
                prop_assert!(brute.contains(&model_bits));
                prop_assert_eq!(model_bits.count_ones(), best);
            }
        }
    }

    #[test]
    fn cardinality_ladder_bounds_are_exact(k in 0usize..6, forced in 0u32..6) {
        // Free variables + at-most-k: satisfiable iff forced ≤ k.
        let n = 6;
        let mut s = Solver::new();
        s.ensure_vars(n);
        let inputs: Vec<Lit> = (0..n).map(Lit::pos).collect();
        let ladder = CardinalityLadder::encode(&mut s, &inputs);
        let mut assumps: Vec<Lit> = ladder.at_most(k).into_iter().collect();
        assumps.extend((0..forced).map(Lit::pos));
        let sat = s.solve_with_assumptions(&assumps) == SolveResult::Sat;
        prop_assert_eq!(sat, forced as usize <= k);
    }

    #[test]
    fn dimacs_roundtrip(clauses in clause_set(8, 25)) {
        let text = write_dimacs(8, &clauses);
        let parsed = parse_dimacs(&text).unwrap();
        prop_assert_eq!(parsed.n_vars, 8);
        prop_assert_eq!(parsed.clauses, clauses);
    }

    #[test]
    fn unsat_cores_are_sound(clauses in clause_set(6, 16), assume_mask in 1u32..64) {
        // Assume a random subset of positive literals; when UNSAT, the
        // reported core must itself be UNSAT with the clause set.
        let n = 6;
        let assumps: Vec<Lit> = (0..n)
            .filter(|&v| assume_mask >> v & 1 == 1)
            .map(Lit::pos)
            .collect();
        let mut s = solver_with(n, &clauses);
        if s.solve_with_assumptions(&assumps) == SolveResult::Unsat {
            let core: Vec<Lit> = s.unsat_core().to_vec();
            prop_assert!(core.iter().all(|l| assumps.contains(l)));
            let mut s2 = solver_with(n, &clauses);
            prop_assert_eq!(s2.solve_with_assumptions(&core), SolveResult::Unsat);
        }
    }

    #[test]
    fn incremental_solving_is_consistent(
        base in clause_set(6, 12),
        extra in clause_set(6, 6),
    ) {
        // Solving base then adding extra must equal solving base+extra
        // from scratch.
        let n = 6;
        let mut incremental = solver_with(n, &base);
        let _ = incremental.solve();
        for c in &extra {
            incremental.add_dimacs_clause(c);
        }
        let inc = incremental.solve() == SolveResult::Sat;
        let mut all = base.clone();
        all.extend(extra.iter().cloned());
        let fresh = !brute_force_models(n, &all).is_empty();
        prop_assert_eq!(inc, fresh);
    }
}
