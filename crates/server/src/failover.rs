//! Automatic failover for shard chain heads.
//!
//! PR 9's ring maps names to replica **chains** (`shard.rs`); this
//! module adds the machinery that makes a chain survive its head:
//!
//! * **Puller supervision** — every non-head chain member must stream
//!   its head's WAL. [`ensure_puller`] compares the puller this node is
//!   running against what the current ring says it should run, and
//!   stops/retargets/respawns as needed. The [`crate::replication::ReplLog`] puller
//!   *generation* makes stop-then-spawn race-free: a deposed puller can
//!   never outlive its retarget.
//! * **Failure detection** — the detector thread probes this node's
//!   chain head over `GET /v1/replication/status` every
//!   `--probe-interval-ms`. After `--suspect-after` consecutive
//!   failures the designated successor (the first replica) runs a
//!   **quorum check**: it asks every other serving member to probe the
//!   head (`POST /v1/cluster/probe`). Any voter that can still reach
//!   the head vetoes the promotion — a suspected-but-alive head behind
//!   a partition stays fenced instead of split-brained. No responding
//!   voters at all means *this* node may be the partitioned one, so it
//!   also refuses to promote (with no voters configured — a two-node
//!   chain — the successor must self-decide).
//! * **Self-promotion** — on confirmed death the successor runs PR 8's
//!   `promote()` (WAL epoch bump), rotates its chain on the ring
//!   ([`crate::shard::ShardRouter::rotate_chain`] records the new WAL
//!   epoch as the chain's `repl_epoch` — the epoch *composition* that
//!   fences the deposed head at apply, stream, resync and routing), and
//!   broadcasts the rotated ring through the PR 9 sync path. Because
//!   chains hash by a stable anchor, the rotation moves **zero** data.
//! * **Revival** — the new head remembers whom it deposed. When the old
//!   head answers probes again, its acked-but-never-shipped commits are
//!   absorbed with the paper's `Δ` arbitration
//!   ([`crate::replication::reconcile_with_peer`] — divergence is
//!   merged, never last-writer-wins), and the node is re-enlisted as
//!   the chain's tail. Adopting the new ring demotes it
//!   ([`reconcile_role`]): read-only, pulling from the new head, whose
//!   higher epoch forces a resync over the shared history.
//! * **Ring anti-entropy** — heads push the current ring to chain
//!   members whose advertised ring epoch lags, so a member that missed
//!   the rotation broadcast converges within a probe interval instead
//!   of fencing writes against a dead ring forever.
//!
//! Everything here is driven by one thread per node
//! ([`spawn_detector`]), disabled with `--probe-interval-ms 0`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::json::{self, Json};
use crate::metrics;
use crate::replication::{self, PeerClient};
use crate::shard::{ChainEntry, ShardRing, ShardRouter};
use crate::ServiceState;

/// Cross-thread failover bookkeeping hung off [`ServiceState`].
pub struct FailoverState {
    /// The replication puller this node currently runs.
    puller: Mutex<PullerSlot>,
    /// Chain heads this node deposed and still owes a revival
    /// reconcile + re-enlist.
    deposed: Mutex<Vec<String>>,
    /// Stops the detector thread.
    stop: AtomicBool,
}

#[derive(Default)]
struct PullerSlot {
    target: Option<String>,
    handle: Option<JoinHandle<()>>,
}

impl Default for FailoverState {
    fn default() -> FailoverState {
        FailoverState::new()
    }
}

impl FailoverState {
    /// Fresh bookkeeping: no puller, no deposed heads.
    pub fn new() -> FailoverState {
        FailoverState {
            puller: Mutex::new(PullerSlot::default()),
            deposed: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        }
    }

    /// Ask the detector thread to exit.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Chain heads this node deposed and has not yet reconciled back
    /// (the `deposed_heads` gauge).
    pub fn deposed_count(&self) -> usize {
        self.deposed.lock().unwrap().len()
    }

    fn note_deposed(&self, addr: &str) {
        let mut deposed = self.deposed.lock().unwrap();
        if !deposed.iter().any(|d| d == addr) {
            deposed.push(addr.to_string());
        }
    }

    fn deposed_snapshot(&self) -> Vec<String> {
        self.deposed.lock().unwrap().clone()
    }

    fn forget_deposed(&self, addr: &str) {
        self.deposed.lock().unwrap().retain(|d| d != addr);
    }
}

// --- puller supervision ------------------------------------------------------

/// The primary this node should be pulling from right now: its chain
/// head under the current ring, or — while the ring does not yet list a
/// chain for it (bootstrap, before the enlist lands) — the configured
/// `--replicate-from` primary. `None` for a head (or any writable
/// store): primaries don't pull.
fn desired_puller_target(state: &ServiceState) -> Option<String> {
    let log = state.kbs.replication()?;
    if !log.read_only() {
        return None;
    }
    if let Some(router) = &state.shards {
        if let Some(chain) = router.self_chain() {
            let head = chain.head().to_string();
            if head != router.self_addr() {
                return Some(head);
            }
        }
    }
    state.config.replicate_from.clone()
}

/// Reconcile the puller this node runs with what the ring says it
/// should run: stop a puller aimed at the wrong primary, spawn one at
/// the right target, respawn one that died. Idempotent; called at
/// startup and on every detector tick.
pub fn ensure_puller(state: &Arc<ServiceState>) {
    let Some(log) = state.kbs.replication() else {
        return;
    };
    let desired = desired_puller_target(state);
    let mut slot = state.failover.puller.lock().unwrap();
    let live = slot.handle.as_ref().is_some_and(|h| !h.is_finished());
    if slot.target == desired && (live || desired.is_none()) {
        return;
    }
    // Invalidate whatever generation is running before spawning the
    // replacement at the next one.
    log.stop_puller();
    if let Some(stale) = slot.handle.take() {
        let _ = stale.join();
    }
    slot.handle = desired
        .as_ref()
        .map(|target| replication::spawn_puller(Arc::clone(state), target.clone()));
    slot.target = desired;
}

/// Stop and join the puller thread (server shutdown).
pub fn join_puller(state: &ServiceState) {
    if let Some(log) = state.kbs.replication() {
        log.stop_puller();
    }
    let handle = state.failover.puller.lock().unwrap().handle.take();
    if let Some(handle) = handle {
        let _ = handle.join();
    }
}

/// Align this node's replication role with the ring it holds: a node
/// listed *behind* another head is a replica now — whatever it used to
/// be (a deposed head rejoining as tail, or a standalone primary that
/// was just enlisted) — so it demotes to read-only. Promotion is never
/// done here: becoming a head goes through the detector's quorum check
/// (or an explicit `POST /v1/replication/promote`), not through ring
/// gossip a stale broadcast could forge.
pub fn reconcile_role(state: &ServiceState) {
    let Some(router) = &state.shards else {
        return;
    };
    let Some(log) = state.kbs.replication() else {
        return;
    };
    let Some(chain) = router.self_chain() else {
        return;
    };
    if chain.head() != router.self_addr() && !log.read_only() {
        let _ = state.kbs.demote();
    }
}

// --- probing -----------------------------------------------------------------

/// What a status probe learned about a peer.
pub(crate) struct StatusView {
    /// The peer's ring epoch (0 when it is not sharded).
    pub(crate) ring_epoch: u64,
}

/// Probe `addr` over `GET /v1/replication/status`. `None` when the peer
/// is unreachable or answers anything but 200 — the detector's (and the
/// quorum voters') definition of "down".
pub(crate) fn probe_status(addr: &str) -> Option<StatusView> {
    metrics::FAILOVER_PROBES.incr();
    let response = PeerClient::connect(addr)
        .ok()?
        .request("GET", "/v1/replication/status", None)
        .ok()?;
    if response.status != 200 {
        return None;
    }
    let text = std::str::from_utf8(&response.body).ok()?;
    let doc = json::parse(text).ok()?;
    Some(StatusView {
        ring_epoch: doc.get("ring_epoch").and_then(|v| v.as_u64()).unwrap_or(0),
    })
}

/// The ring-sync broadcast body for `ring` (the same shape
/// `POST /v1/cluster/{join,leave}` pushes).
fn sync_body(ring: &ShardRing) -> String {
    let members: Vec<Json> = ring.members().iter().map(|m| json::s(m.clone())).collect();
    json::obj([
        ("epoch", json::n(ring.epoch())),
        ("members", Json::Arr(members)),
    ])
    .to_text()
}

/// Push `ring` to one peer; `true` when it acked.
fn push_sync(target: &str, ring: &ShardRing) -> bool {
    let body = sync_body(ring);
    PeerClient::connect(target)
        .and_then(|mut client| client.request("POST", "/v1/cluster/sync", Some(&body)))
        .map(|resp| resp.status == 200)
        .unwrap_or(false)
}

/// Push `ring` to every serving member (plus `extra` — e.g. a deposed
/// head no longer listed), skipping self. Returns how many acked.
pub(crate) fn broadcast_ring(state: &ServiceState, ring: &ShardRing, extra: &[&str]) -> u64 {
    let Some(router) = &state.shards else {
        return 0;
    };
    let self_addr = router.self_addr();
    let mut targets = ring.serving_addrs();
    for addr in extra {
        if !targets.iter().any(|t| t == addr) {
            targets.push(addr.to_string());
        }
    }
    let mut synced = 0u64;
    for target in targets {
        if target == self_addr {
            continue;
        }
        if push_sync(&target, ring) {
            synced += 1;
        }
    }
    synced
}

// --- the detector thread -----------------------------------------------------

/// Spawn the failure detector, or `None` when it is disabled
/// (`--probe-interval-ms 0`), the node is not a ring member, or the
/// store has no replication log (in-memory stores cannot chain).
pub fn spawn_detector(state: Arc<ServiceState>) -> Option<JoinHandle<()>> {
    if state.config.probe_interval_ms == 0
        || state.shards.is_none()
        || state.kbs.replication().is_none()
    {
        return None;
    }
    Some(
        thread::Builder::new()
            .name("arbitrex-failover".to_string())
            .spawn(move || run_detector(&state))
            .expect("spawn failover detector"),
    )
}

fn run_detector(state: &Arc<ServiceState>) {
    let interval = Duration::from_millis(state.config.probe_interval_ms);
    let suspect_after = state.config.suspect_after.max(1);
    let mut consecutive_failures: u32 = 0;
    while !state.failover.stopped() {
        ensure_puller(state);
        reconcile_role(state);
        tick(state, &mut consecutive_failures, suspect_after);
        sleep_interval(state, interval);
    }
}

/// Sleep one probe interval in short slices so shutdown stays prompt.
fn sleep_interval(state: &ServiceState, interval: Duration) {
    let deadline = Instant::now() + interval;
    let slice = Duration::from_millis(20);
    while !state.failover.stopped() {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        thread::sleep(slice.min(deadline - now));
    }
}

fn tick(state: &Arc<ServiceState>, consecutive_failures: &mut u32, suspect_after: u32) {
    let Some(router) = &state.shards else {
        return;
    };
    let Some(chain) = router.self_chain() else {
        return;
    };
    let self_addr = router.self_addr();
    if chain.head() == self_addr {
        *consecutive_failures = 0;
        head_tick(state, router, &chain);
        return;
    }
    let head = chain.head().to_string();
    match probe_status(&head) {
        Some(status) => {
            *consecutive_failures = 0;
            // Ring anti-entropy upward: a head answering with an older
            // ring epoch missed a broadcast — push ours.
            if status.ring_epoch < router.epoch() {
                push_sync(&head, &router.ring());
            }
        }
        None => {
            metrics::FAILOVER_PROBE_FAILURES.incr();
            *consecutive_failures += 1;
            if *consecutive_failures >= suspect_after
                && chain.successor() == Some(self_addr.as_str())
            {
                if confirm_death(router, &head) {
                    promote_self(state, router, &head);
                }
                // Both outcomes restart the suspicion count: a veto
                // means the head is alive behind a partition (probe
                // again from scratch), a promotion changes roles.
                *consecutive_failures = 0;
            }
        }
    }
}

/// The quorum check: ask every other serving member to probe the
/// suspect. Any voter that reaches it vetoes the promotion; no
/// responding voters at all (while some are configured) aborts too,
/// because this node cannot tell the head's partition from its own.
fn confirm_death(router: &ShardRouter, head: &str) -> bool {
    metrics::FAILOVER_SUSPICIONS.incr();
    let self_addr = router.self_addr();
    let voters: Vec<String> = router
        .ring()
        .serving_addrs()
        .into_iter()
        .filter(|a| a != &self_addr && a != head)
        .collect();
    if voters.is_empty() {
        // A two-node chain has nobody to ask: the successor decides.
        return true;
    }
    let body = json::obj([("addr", json::s(head))]).to_text();
    let mut responders = 0u32;
    for voter in &voters {
        let Ok(mut client) = PeerClient::connect(voter) else {
            continue;
        };
        let Ok(response) = client.request("POST", "/v1/cluster/probe", Some(&body)) else {
            continue;
        };
        if response.status != 200 {
            continue;
        }
        responders += 1;
        let reachable = std::str::from_utf8(&response.body)
            .ok()
            .and_then(|text| json::parse(text).ok())
            .and_then(|doc| doc.get("reachable").and_then(|v| v.as_bool()))
            .unwrap_or(false);
        if reachable {
            metrics::FAILOVER_QUORUM_VETOES.incr();
            return false;
        }
    }
    responders > 0
}

/// Confirmed death: promote this store (WAL epoch bump), rotate the
/// chain on the ring (recording the new WAL epoch as the chain's
/// `repl_epoch`), remember the deposed head for revival, and broadcast
/// the rotated ring — to the deposed head too, so it demotes the moment
/// it is reachable again.
fn promote_self(state: &ServiceState, router: &ShardRouter, dead_head: &str) {
    let Ok((epoch, _last_rseq)) = state.kbs.promote() else {
        return;
    };
    metrics::FAILOVER_AUTO_PROMOTIONS.incr();
    let Some(ring) = router.rotate_chain(dead_head, epoch) else {
        return;
    };
    state.failover.note_deposed(dead_head);
    broadcast_ring(state, &ring, &[dead_head]);
}

/// What a chain head does each tick: shepherd deposed predecessors back
/// in, and push the current ring to chain members whose epoch lags.
fn head_tick(state: &Arc<ServiceState>, router: &ShardRouter, chain: &ChainEntry) {
    let self_addr = router.self_addr();
    for addr in state.failover.deposed_snapshot() {
        if probe_status(&addr).is_none() {
            continue;
        }
        // The revived head may hold commits it acked but never shipped
        // before dying: absorb them with Δ arbitration *before*
        // re-enlisting it, so the chain's history subsumes its own.
        metrics::FAILOVER_RECONCILES.incr();
        if replication::reconcile_with_peer(state, &addr).is_err() {
            continue; // answered, then died again: retry next tick
        }
        // None => already serving somewhere: nothing to re-add.
        if let Some(ring) = router.enlist_member(&self_addr, &addr) {
            broadcast_ring(state, &ring, &[]);
        }
        state.failover.forget_deposed(&addr);
    }
    // Ring anti-entropy downward: a replica that missed the rotation
    // broadcast keeps routing (and fencing writes) by the old ring.
    let ring = router.ring();
    for member in chain.members() {
        if *member == self_addr {
            continue;
        }
        let Some(status) = probe_status(member) else {
            continue;
        };
        if status.ring_epoch < ring.epoch() {
            push_sync(member, &ring);
        }
    }
}
