//! A minimal HTTP/1.1 framing layer.
//!
//! Supports exactly what the service protocol needs: request-line +
//! headers + `Content-Length` bodies, keep-alive connections,
//! fixed-length JSON responses, and — for the replication WAL stream —
//! chunked binary responses where each chunk is one WAL frame. No
//! request-side chunked encoding, no TLS, no continuation lines. Limits
//! are hard: oversized headers or bodies fail the parse rather than
//! allocating unboundedly.
//!
//! Two entry points share one head parser: [`parse_request_buffer`]
//! parses the front of an in-memory byte buffer (the event loop's
//! per-connection read buffer, where pipelined requests queue up), and
//! [`read_request_limited`] drives a blocking stream byte-by-byte
//! (tests and any caller without an event loop). Both agree on what is
//! malformed, what is too large, and where a request ends.

use std::io::{self, Read, Write};

/// Maximum bytes of request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Default maximum request body size; servers can lower or raise it per
/// instance ([`read_request_limited`], `--max-body-bytes`).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Consecutive read-timeout polls tolerated mid-request (head or body)
/// before the request is declared malformed. Blocking readers use short
/// timeouts to observe shutdown, so one poll expiring only means the
/// next packet has not landed yet — a request is abandoned only after
/// this many polls pass with no new bytes at all.
pub const MAX_MID_REQUEST_POLLS: u32 = 200;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (no query parsing; the protocol uses none).
    pub path: String,
    /// Lowercased header names with their values.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Does the client ask to drop the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Parse a complete head (request line + headers + terminator) into a
/// body-less [`Request`] and the declared `Content-Length`, if any.
fn parse_head(head: &[u8]) -> Result<(Request, Option<usize>), String> {
    let head_text = match std::str::from_utf8(head) {
        Ok(t) => t,
        Err(_) => return Err("non-UTF-8 request head".to_string()),
    };
    let mut lines = head_text.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if parts.next().is_none() => (m, p, v),
        _ => return Err(format!("bad request line `{request_line}`")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(format!("bad version `{version}`"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        match line.split_once(':') {
            Some((name, value)) => {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()))
            }
            None => return Err(format!("bad header `{line}`")),
        }
    }

    let content_length = match headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
    {
        None => None,
        Some(Err(_)) => return Err("bad content-length".to_string()),
        Some(Ok(len)) => Some(len),
    };

    Ok((
        Request {
            method: method.to_string(),
            path: path.to_string(),
            headers,
            body: Vec::new(),
        },
        content_length,
    ))
}

/// Progress of parsing one request from the front of a byte buffer.
#[derive(Debug)]
pub enum BufferParse {
    /// A complete request occupying the first `consumed` bytes; the
    /// caller drains them and may parse again (pipelining).
    Complete {
        /// The parsed request.
        request: Request,
        /// Total bytes (head + body) the request occupied.
        consumed: usize,
    },
    /// The buffer holds a valid prefix of a request; read more bytes.
    Incomplete,
    /// The bytes are not a parseable request; the caller should answer
    /// 400 and close.
    Malformed(String),
    /// The declared `Content-Length` exceeds the body cap. Rejected
    /// before the body is buffered; the caller should answer 413 and
    /// close (the unread body makes the connection unusable).
    TooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The cap it exceeded.
        cap: usize,
    },
}

/// Parse one request from the front of `buf` without consuming it. The
/// head terminator search mirrors the blocking reader exactly: the head
/// ends at the first CRLFCRLF or LFLF, and a head that exceeds
/// [`MAX_HEAD_BYTES`] before terminating is malformed.
pub fn parse_request_buffer(buf: &[u8], max_body: usize) -> BufferParse {
    let mut head_len = None;
    for i in 0..buf.len() {
        if i >= MAX_HEAD_BYTES {
            return BufferParse::Malformed("request head too large".to_string());
        }
        let h = &buf[..=i];
        if h.ends_with(b"\r\n\r\n") || h.ends_with(b"\n\n") {
            head_len = Some(i + 1);
            break;
        }
    }
    let head_len = match head_len {
        Some(n) => n,
        None => return BufferParse::Incomplete,
    };

    let (mut request, content_length) = match parse_head(&buf[..head_len]) {
        Ok(parsed) => parsed,
        Err(msg) => return BufferParse::Malformed(msg),
    };

    let body_len = match content_length {
        None => 0,
        Some(len) if len > max_body => {
            return BufferParse::TooLarge {
                declared: len,
                cap: max_body,
            }
        }
        Some(len) => len,
    };

    let total = head_len + body_len;
    if buf.len() < total {
        return BufferParse::Incomplete;
    }
    request.body = buf[head_len..total].to_vec();
    BufferParse::Complete {
        request,
        consumed: total,
    }
}

/// Why a read did not produce a request.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request was parsed.
    Request(Request),
    /// The peer closed the connection before sending anything.
    Closed,
    /// The read timed out before the first byte arrived (idle keep-alive
    /// connection; the caller decides whether to keep waiting).
    Idle,
    /// The bytes on the wire were not a parseable request; the caller
    /// should answer 400 and close.
    Malformed(String),
    /// The declared `Content-Length` exceeds the body cap. Rejected
    /// before a single body byte is buffered; the caller should answer
    /// 413 and close (the unread body makes the connection unusable).
    TooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The cap it exceeded.
        cap: usize,
    },
}

/// [`read_request_limited`] with the default [`MAX_BODY_BYTES`] cap.
pub fn read_request(stream: &mut impl Read) -> io::Result<ReadOutcome> {
    read_request_limited(stream, MAX_BODY_BYTES)
}

/// Read one request from a blocking `stream`, rejecting bodies declared
/// larger than `max_body` before buffering. A read timeout before the
/// first byte maps to [`ReadOutcome::Idle`]; a timeout mid-request is
/// malformed. Reads byte-by-byte through the head and exactly
/// `Content-Length` bytes of body, so it never consumes bytes of a
/// pipelined follow-up request.
pub fn read_request_limited(stream: &mut impl Read, max_body: usize) -> io::Result<ReadOutcome> {
    let mut head: Vec<u8> = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    let mut stalls = 0u32;
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return Ok(if head.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Malformed("connection closed mid-request".to_string())
                });
            }
            Ok(_) => {
                stalls = 0;
                head.push(byte[0]);
                if head.len() > MAX_HEAD_BYTES {
                    return Ok(ReadOutcome::Malformed("request head too large".to_string()));
                }
                if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if head.is_empty() {
                    return Ok(ReadOutcome::Idle);
                }
                stalls += 1;
                if stalls > MAX_MID_REQUEST_POLLS {
                    return Ok(ReadOutcome::Malformed("timed out mid-request".to_string()));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }

    let (mut request, content_length) = match parse_head(&head) {
        Ok(parsed) => parsed,
        Err(msg) => return Ok(ReadOutcome::Malformed(msg)),
    };

    match content_length {
        None => {}
        Some(len) if len > max_body => {
            // Nothing of the body has been read (or allocated): the
            // rejection costs the head bytes only.
            return Ok(ReadOutcome::TooLarge {
                declared: len,
                cap: max_body,
            });
        }
        Some(len) => {
            request.body.resize(len, 0);
            let mut filled = 0usize;
            let mut stalls = 0u32;
            while filled < len {
                match stream.read(&mut request.body[filled..]) {
                    Ok(0) => {
                        return Ok(ReadOutcome::Malformed("truncated body".to_string()));
                    }
                    Ok(n) => {
                        filled += n;
                        stalls = 0;
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                    {
                        stalls += 1;
                        if stalls > MAX_MID_REQUEST_POLLS {
                            return Ok(ReadOutcome::Malformed(
                                "timed out reading body".to_string(),
                            ));
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
        }
    }

    Ok(ReadOutcome::Request(request))
}

/// A response ready to serialize.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body text (ignored when `chunks` is set).
    pub body: String,
    /// Extra headers beyond the fixed set (e.g. `Retry-After` on 503s).
    pub extra_headers: Vec<(&'static str, String)>,
    /// Binary chunked body: each element becomes one HTTP chunk. Used by
    /// the replication WAL stream (one chunk = one framed record) so the
    /// replica can decode frame-by-frame without buffering the batch.
    pub chunks: Option<Vec<Vec<u8>>>,
    /// Omit the terminating `0\r\n\r\n` chunk (injected connection-drop
    /// fault: the peer sees a mid-stream EOF). Implies `force_close`.
    pub chunk_abort: bool,
    /// Close the connection after this response regardless of what the
    /// client asked for.
    pub force_close: bool,
}

impl Response {
    /// A response with a JSON body.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            body,
            extra_headers: Vec::new(),
            chunks: None,
            chunk_abort: false,
            force_close: false,
        }
    }

    /// A chunked binary response; each element of `chunks` is emitted as
    /// one HTTP chunk.
    pub fn binary_chunked(status: u16, chunks: Vec<Vec<u8>>) -> Response {
        Response {
            status,
            body: String::new(),
            extra_headers: Vec::new(),
            chunks: Some(chunks),
            chunk_abort: false,
            force_close: false,
        }
    }

    /// Attach an extra response header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name, value.into()));
        self
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        307 => "Temporary Redirect",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        412 => "Precondition Failed",
        413 => "Payload Too Large",
        421 => "Misdirected Request",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize `response` to wire bytes; `close` controls the
/// `Connection` header.
pub fn encode_response(response: &Response, close: bool) -> Vec<u8> {
    use std::fmt::Write as _;
    let close = close || response.force_close || response.chunk_abort;
    if let Some(chunks) = &response.chunks {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/octet-stream\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n",
            response.status,
            status_text(response.status),
            if close { "close" } else { "keep-alive" },
        );
        for (name, value) in &response.extra_headers {
            let _ = write!(head, "{name}: {value}\r\n");
        }
        head.push_str("\r\n");
        let mut bytes = head.into_bytes();
        for chunk in chunks {
            bytes.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
            bytes.extend_from_slice(chunk);
            bytes.extend_from_slice(b"\r\n");
        }
        if !response.chunk_abort {
            bytes.extend_from_slice(b"0\r\n\r\n");
        }
        return bytes;
    }
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        status_text(response.status),
        response.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    for (name, value) in &response.extra_headers {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(response.body.as_bytes());
    bytes
}

/// Serialize and send `response`; `close` controls the `Connection`
/// header.
pub fn write_response(stream: &mut impl Write, response: &Response, close: bool) -> io::Result<()> {
    stream.write_all(&encode_response(response, close))?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read_str(text: &str) -> ReadOutcome {
        read_request(&mut Cursor::new(text.as_bytes().to_vec())).unwrap()
    }

    #[test]
    fn parses_post_with_body() {
        let out = read_str(
            "POST /v1/arbitrate HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n{\"psi\":\"A\"}",
        );
        let req = match out {
            ReadOutcome::Request(r) => r,
            other => panic!("expected request, got {other:?}"),
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/arbitrate");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"{\"psi\":\"A\"}");
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_get_without_body_and_close_header() {
        let out = read_str("GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
        match out {
            ReadOutcome::Request(r) => {
                assert_eq!(r.method, "GET");
                assert!(r.body.is_empty());
                assert!(r.wants_close());
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn malformed_heads_are_typed_not_errors() {
        for bad in [
            "GARBAGE\r\n\r\n",
            "GET /x HTTP/2.0\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "POST /x HTTP/1.1\r\nNoColonHere\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            match read_str(bad) {
                ReadOutcome::Malformed(_) => {}
                other => panic!("expected malformed for {bad:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_stream_is_closed() {
        assert!(matches!(read_str(""), ReadOutcome::Closed));
    }

    #[test]
    fn oversized_body_is_rejected() {
        let head = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match read_str(&head) {
            ReadOutcome::TooLarge { declared, cap } => {
                assert_eq!(declared, MAX_BODY_BYTES + 1);
                assert_eq!(cap, MAX_BODY_BYTES);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn body_cap_is_configurable() {
        let req = "POST /x HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"psi\":\"A\"}";
        let mut cursor = Cursor::new(req.as_bytes().to_vec());
        assert!(matches!(
            read_request_limited(&mut cursor, 10).unwrap(),
            ReadOutcome::TooLarge {
                declared: 11,
                cap: 10
            }
        ));
        let mut cursor = Cursor::new(req.as_bytes().to_vec());
        assert!(matches!(
            read_request_limited(&mut cursor, 11).unwrap(),
            ReadOutcome::Request(_)
        ));
    }

    #[test]
    fn buffer_parse_handles_partial_and_complete() {
        let wire = b"POST /v1/arbitrate HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"psi\":\"A\"}";
        // Every strict prefix is Incomplete; the full message parses.
        for cut in [0, 1, 10, wire.len() - 12, wire.len() - 1] {
            assert!(
                matches!(
                    parse_request_buffer(&wire[..cut], MAX_BODY_BYTES),
                    BufferParse::Incomplete
                ),
                "prefix of {cut} bytes should be incomplete"
            );
        }
        match parse_request_buffer(wire, MAX_BODY_BYTES) {
            BufferParse::Complete { request, consumed } => {
                assert_eq!(consumed, wire.len());
                assert_eq!(request.path, "/v1/arbitrate");
                assert_eq!(request.body, b"{\"psi\":\"A\"}");
            }
            other => panic!("expected complete, got {other:?}"),
        }
    }

    #[test]
    fn buffer_parse_leaves_pipelined_tail_alone() {
        let first = b"GET /metrics HTTP/1.1\r\n\r\n".to_vec();
        let mut wire = first.clone();
        wire.extend_from_slice(b"POST /v1/arbitrate HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}");
        let consumed = match parse_request_buffer(&wire, MAX_BODY_BYTES) {
            BufferParse::Complete { request, consumed } => {
                assert_eq!(request.method, "GET");
                assert_eq!(request.path, "/metrics");
                consumed
            }
            other => panic!("expected complete, got {other:?}"),
        };
        assert_eq!(consumed, first.len());
        match parse_request_buffer(&wire[consumed..], MAX_BODY_BYTES) {
            BufferParse::Complete { request, consumed } => {
                assert_eq!(request.method, "POST");
                assert_eq!(request.body, b"{}");
                assert_eq!(consumed, wire.len() - first.len());
            }
            other => panic!("expected complete, got {other:?}"),
        }
    }

    #[test]
    fn buffer_parse_flags_malformed_and_oversized() {
        assert!(matches!(
            parse_request_buffer(b"GARBAGE\r\n\r\n", MAX_BODY_BYTES),
            BufferParse::Malformed(_)
        ));
        assert!(matches!(
            parse_request_buffer(b"GET /x HTTP/2.0\r\n\r\n", MAX_BODY_BYTES),
            BufferParse::Malformed(_)
        ));
        assert!(matches!(
            parse_request_buffer(b"POST /x HTTP/1.1\r\nContent-Length: 11\r\n\r\n", 10),
            BufferParse::TooLarge {
                declared: 11,
                cap: 10
            }
        ));
        // A head that never terminates within the cap is malformed, not
        // buffered forever.
        let endless = vec![b'A'; MAX_HEAD_BYTES + 1];
        assert!(matches!(
            parse_request_buffer(&endless, MAX_BODY_BYTES),
            BufferParse::Malformed(_)
        ));
    }

    #[test]
    fn response_has_content_length_and_connection() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}".to_string()), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn chunked_responses_frame_each_chunk_and_terminate() {
        let resp = Response::binary_chunked(200, vec![vec![1, 2, 3], vec![0xAB; 16]]);
        let bytes = encode_response(&resp, false);
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(bytes.windows(6).any(|w| w == b"3\r\n\x01\x02\x03".as_ref()));
        assert!(bytes.ends_with(b"0\r\n\r\n"));

        // An aborted stream omits the terminator and forces close.
        let mut aborted = Response::binary_chunked(200, vec![vec![1, 2, 3]]);
        aborted.chunk_abort = true;
        let bytes = encode_response(&aborted, false);
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.contains("Connection: close\r\n"));
        assert!(!bytes.ends_with(b"0\r\n\r\n"));
    }

    #[test]
    fn extra_headers_are_emitted_before_the_blank_line() {
        let resp = Response::json(503, "{}".to_string()).with_header("Retry-After", "1");
        let text = String::from_utf8(encode_response(&resp, true)).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        let head_end = text.find("\r\n\r\n").unwrap();
        assert!(text.find("Retry-After").unwrap() < head_end);
    }
}
