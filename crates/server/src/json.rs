//! A minimal JSON value, parser, and serializer.
//!
//! The service protocol needs exactly flat request objects and structured
//! responses, so this is a small recursive-descent parser over UTF-8 bytes
//! with a hard nesting limit, not a general-purpose library. Numbers are
//! kept as `f64` (every protocol field fits losslessly: weights and step
//! counts stay below 2⁵³). Duplicate object keys keep the last value, like
//! most JSON decoders.

use std::fmt::Write as _;

/// Maximum nesting depth accepted by [`parse`] — far above anything the
/// protocol produces, low enough that hostile input cannot overflow the
/// parse stack.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers up to 2⁵³ round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to compact JSON text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Build a [`Json::Obj`] from key/value pairs.
pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A [`Json::Str`].
pub fn s(text: impl Into<String>) -> Json {
    Json::Str(text.into())
}

/// A [`Json::Num`] from an integer.
pub fn n(value: u64) -> Json {
    Json::Num(value as f64)
}

fn write_escaped(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_string());
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos, depth + 1)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogates are replaced rather than paired; the
                        // protocol never emits them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_string()),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => return Err("control character in string".to_string()),
            Some(_) => {
                // Copy one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8")?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid UTF-8")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shapes() {
        let v = parse(r#"{"psi": "A & B", "timeout_ms": 250, "weights": [1, 2.5], "deep": {"x": null, "y": [true, false]}}"#).unwrap();
        assert_eq!(v.get("psi").unwrap().as_str(), Some("A & B"));
        assert_eq!(v.get("timeout_ms").unwrap().as_u64(), Some(250));
        let weights = v.get("weights").unwrap().as_array().unwrap();
        assert_eq!(weights[0].as_u64(), Some(1));
        assert_eq!(weights[1].as_u64(), None); // 2.5 is not an integer
        assert_eq!(v.get("deep").unwrap().get("x"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            r#"{"a"}"#,
            r#"{"a":}"#,
            "nul",
            "tru",
            "01a",
            "\"\\q\"",
            "\"unterminated",
            "{\"a\":1} trailing",
            "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn roundtrips_with_escaping() {
        let v = obj([
            ("msg", s("line\none \"two\"\t\\")),
            ("n", n(42)),
            ("arr", Json::Arr(vec![Json::Null, Json::Bool(true)])),
        ]);
        let text = v.to_text();
        assert_eq!(parse(&text).unwrap(), v);
        assert!(text.contains("\\n"));
        assert!(text.contains("\\\""));
    }

    #[test]
    fn last_duplicate_key_wins() {
        let v = parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(2));
    }
}
