//! Named knowledge bases for iterated arbitration sessions.
//!
//! A stored KB is a formula together with the signature its variable
//! names live in and a monotonically increasing sequence number; the
//! `/v1/kb/{name}` endpoint arbitrates new information into it in place
//! (`ψ ← ψ Δ μ`), the paper's iterated-change reading of a theory
//! absorbing a stream of reports. The store is a read-mostly map of
//! independently locked entries: concurrent updates to *different* KBs
//! never contend, updates to the same KB serialize, and the sequence
//! number makes lost updates detectable to clients.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

use arbitrex_logic::{Formula, Sig};

/// Longest accepted KB name.
pub const MAX_NAME_LEN: usize = 64;

/// One stored knowledge base.
#[derive(Debug, Clone)]
pub struct StoredKb {
    /// The signature the formula's variables are named in. Grows when new
    /// information mentions fresh variables.
    pub sig: Sig,
    /// The current theory.
    pub formula: Formula,
    /// Bumped by every committed mutation, starting at 1 on first put.
    pub seq: u64,
}

/// A concurrent map from KB name to independently locked state.
#[derive(Default)]
pub struct KbStore {
    map: RwLock<HashMap<String, Arc<Mutex<StoredKb>>>>,
}

/// Is `name` a well-formed KB name (`[A-Za-z0-9_-]`, nonempty, bounded)?
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NAME_LEN
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

impl KbStore {
    /// An empty store.
    pub fn new() -> KbStore {
        KbStore::default()
    }

    /// The entry for `name`, if present. Callers lock the returned entry
    /// for the duration of one action; the store lock is already released.
    pub fn entry(&self, name: &str) -> Option<Arc<Mutex<StoredKb>>> {
        self.map.read().unwrap().get(name).cloned()
    }

    /// Create or replace `name` with a fresh theory. Returns the new
    /// sequence number (1 for a new KB, previous + 1 for a replacement).
    pub fn put(&self, name: &str, sig: Sig, formula: Formula) -> u64 {
        let mut map = self.map.write().unwrap();
        match map.get(name) {
            Some(entry) => {
                let mut kb = entry.lock().unwrap();
                kb.sig = sig;
                kb.formula = formula;
                kb.seq += 1;
                kb.seq
            }
            None => {
                map.insert(
                    name.to_string(),
                    Arc::new(Mutex::new(StoredKb {
                        sig,
                        formula,
                        seq: 1,
                    })),
                );
                1
            }
        }
    }

    /// Remove `name`; `true` if it existed.
    pub fn delete(&self, name: &str) -> bool {
        self.map.write().unwrap().remove(name).is_some()
    }

    /// Number of stored KBs.
    pub fn len(&self) -> usize {
        self.map.read().unwrap().len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbitrex_logic::parse;

    #[test]
    fn put_get_replace_delete_lifecycle() {
        let store = KbStore::new();
        assert!(store.entry("fleet").is_none());

        let mut sig = Sig::new();
        let f = parse(&mut sig, "A & B").unwrap();
        assert_eq!(store.put("fleet", sig.clone(), f), 1);
        assert_eq!(store.len(), 1);

        let entry = store.entry("fleet").unwrap();
        assert_eq!(entry.lock().unwrap().seq, 1);

        let f2 = parse(&mut sig, "A | B").unwrap();
        assert_eq!(store.put("fleet", sig, f2), 2);
        // The handle observes the replacement: entries are shared state.
        assert_eq!(entry.lock().unwrap().seq, 2);

        assert!(store.delete("fleet"));
        assert!(!store.delete("fleet"));
        assert!(store.is_empty());
    }

    #[test]
    fn in_place_mutation_bumps_seq_through_the_entry() {
        let store = KbStore::new();
        let mut sig = Sig::new();
        let f = parse(&mut sig, "A").unwrap();
        store.put("k", sig.clone(), f);
        {
            let entry = store.entry("k").unwrap();
            let mut kb = entry.lock().unwrap();
            kb.formula = parse(&mut kb.sig, "A & C").unwrap();
            kb.seq += 1;
        }
        let entry = store.entry("k").unwrap();
        let kb = entry.lock().unwrap();
        assert_eq!(kb.seq, 2);
        assert!(kb.sig.get("C").is_some());
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("fleet-1_config"));
        assert!(valid_name("A"));
        assert!(!valid_name(""));
        assert!(!valid_name("has space"));
        assert!(!valid_name("sneaky/../path"));
        assert!(!valid_name(&"x".repeat(MAX_NAME_LEN + 1)));
    }
}
