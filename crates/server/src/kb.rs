//! Named knowledge bases for iterated arbitration sessions.
//!
//! A stored KB is a formula together with the signature its variable
//! names live in and a monotonically increasing sequence number; the
//! `/v1/kb/{name}` endpoint arbitrates new information into it in place
//! (`ψ ← ψ Δ μ`), the paper's iterated-change reading of a theory
//! absorbing a stream of reports. The store is a read-mostly map of
//! independently locked entries: concurrent updates to *different* KBs
//! never contend, updates to the same KB serialize, and the sequence
//! number makes lost updates detectable (and, with `if_seq`,
//! preventable) for clients.
//!
//! # Durability
//!
//! The store has two backends. The default is purely in memory (tests,
//! benches, `arbx serve` without `--state-dir`). With
//! [`DurabilityOptions`] every mutation follows the commit protocol:
//!
//! 1. compute the new state under the entry's lock,
//! 2. append it to the write-ahead log and **fsync** ([`crate::wal`]),
//! 3. only then publish it in memory and acknowledge to the client.
//!
//! A crash between 2 and 3 leaves a durable record of a commit nobody
//! was told about (harmless: replay keeps it); a crash during 2 leaves a
//! torn tail that recovery truncates (also harmless: nobody was told).
//! What can never happen is an acknowledged commit that recovery loses.
//!
//! With **group commit** (the default; `--group-commit=off` restores
//! fsync-per-commit) step 2 splits: the record is appended — not
//! synced — under the WAL lock and receives a monotonically increasing
//! *ticket*; the committer then releases the WAL lock and blocks until
//! a dedicated flusher thread's shared fsync covers its ticket. One
//! fsync acknowledges every commit appended while the previous one ran,
//! so N concurrent commit streams pay ~1/N of an fsync each. A failed
//! shared flush refuses (500s) exactly the commits it covered; their
//! records may still reach disk, which is the always-allowed "durable
//! record of a commit nobody was told about". The ack point is
//! unchanged: no commit is acknowledged before an fsync (or a durable
//! snapshot — see below) covering its append has succeeded.
//!
//! The durable backend also maintains a *shadow* copy of the committed
//! state under the WAL lock — the materialized fold of the log — so
//! snapshots serialize a provably log-consistent state without touching
//! the per-entry locks (which a committing request may hold while
//! waiting on the WAL). Because the shadow folds *appended* records,
//! a snapshot durably carries even not-yet-fsynced appends; writing one
//! therefore advances the group-commit durable watermark and acks any
//! commits still waiting on the flusher.
//!
//! Lock order: entry lock → WAL/shadow lock → flush-progress lock →
//! map lock. The map lock is never held while acquiring an entry lock,
//! so a mutation holding its entry across a (slow, fsyncing) commit
//! cannot deadlock with lookups, deletes, or placeholder cleanup. The
//! flusher thread only ever takes the flush-progress lock, and fsyncs
//! with no lock held at all — that is what lets appends continue while
//! a flush is in flight.

use std::collections::HashMap;
use std::fs::File;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use arbitrex_core::{Budget, FaultPlan};
use arbitrex_logic::{Formula, Sig};

use crate::metrics;
use crate::recovery::{self, RecoverMode, RecoveryError, RecoveryReport};
use crate::snapshot;
use crate::wal::{self, Wal, WalRecord, WAL_FILE};

/// Longest accepted KB name.
pub const MAX_NAME_LEN: usize = 64;

/// One stored knowledge base.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredKb {
    /// The signature the formula's variables are named in. Grows when new
    /// information mentions fresh variables.
    pub sig: Sig,
    /// The current theory.
    pub formula: Formula,
    /// Bumped by every committed mutation, starting at 1 on first put.
    /// `0` never names a committed state: it marks a placeholder entry
    /// whose creating commit has not reached the log yet (treated as
    /// absent everywhere).
    pub seq: u64,
}

/// Why a mutation did not commit.
#[derive(Debug)]
pub enum CommitError {
    /// The caller's `if_seq` did not match the current sequence number.
    Conflict {
        /// The sequence number actually current (0 when absent).
        current: u64,
    },
    /// The durable append (or its fsync) failed: the mutation was NOT
    /// applied and must not be acknowledged.
    Io(io::Error),
}

impl From<io::Error> for CommitError {
    fn from(e: io::Error) -> CommitError {
        CommitError::Io(e)
    }
}

/// Configuration of the durable backend.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// State directory holding `wal.log` and `snapshot.bin`.
    pub dir: PathBuf,
    /// Snapshot after this many WAL records (0 disables periodic
    /// snapshots; one is still written on clean shutdown).
    pub snapshot_every: u64,
    /// What to do when recovery meets damage beyond a torn tail.
    pub recover: RecoverMode,
    /// Deterministic durability fault injection (testing).
    pub fault: Option<FaultPlan>,
    /// Batch WAL fsyncs behind a flusher thread (one fsync acks N
    /// commits); `false` restores the fsync-per-commit path.
    pub group_commit: bool,
    /// With group commit, how long the flusher may linger past the
    /// oldest pending append waiting for batch-mates. Zero flushes as
    /// soon as the flusher is free (natural batching only).
    pub flush_interval: Duration,
}

struct DurableState {
    wal: Wal,
    /// The materialized fold of the log: exactly what recovery would
    /// rebuild. Snapshots serialize this, never the live entries.
    shadow: HashMap<String, StoredKb>,
    dir: PathBuf,
    snapshot_every: u64,
    since_snapshot: u64,
    fault: Budget,
}

/// Group-commit progress, shared between committers and the flusher.
struct FlushState {
    /// Records appended to the log so far; an append's ticket is the
    /// value after its increment.
    appended: u64,
    /// Highest ticket covered by a successful fsync or durable snapshot.
    durable: u64,
    /// Highest ticket covered by a failed flush attempt; waiters at or
    /// below it are refused.
    failed_through: u64,
    /// The most recent flush error, for refused waiters.
    error: String,
    /// When the oldest not-yet-flushed append landed (the
    /// `flush_interval` deadline is measured from here).
    oldest_pending: Option<Instant>,
    /// The store is closing: flush what is pending, then exit.
    shutdown: bool,
}

struct FlushShared {
    state: Mutex<FlushState>,
    /// Wakes the flusher (new appends, shutdown).
    work: Condvar,
    /// Wakes committers (a watermark advanced).
    done: Condvar,
}

/// The group-commit half of a durable backend: ticket issuing, the
/// flusher thread, and the ack rendezvous.
struct GroupCommit {
    shared: Arc<FlushShared>,
    flusher: Option<thread::JoinHandle<()>>,
}

impl GroupCommit {
    fn start(file: Arc<File>, fault: Budget, interval: Duration) -> GroupCommit {
        let shared = Arc::new(FlushShared {
            state: Mutex::new(FlushState {
                appended: 0,
                durable: 0,
                failed_through: 0,
                error: String::new(),
                oldest_pending: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let flusher = thread::Builder::new()
            .name("arbitrex-wal-flusher".to_string())
            .spawn(move || flusher_loop(&thread_shared, &file, &fault, interval))
            .expect("spawn wal flusher");
        GroupCommit {
            shared,
            flusher: Some(flusher),
        }
    }

    /// Issue the ticket for an append. Called under the WAL/shadow lock,
    /// which is what keeps ticket order consistent with file contents:
    /// a flusher that observes ticket T (under the flush-progress lock)
    /// is ordered after the `write(2)` that produced T's bytes.
    fn note_append(&self) -> u64 {
        let mut st = self.shared.state.lock().unwrap();
        st.appended += 1;
        let ticket = st.appended;
        if st.oldest_pending.is_none() {
            st.oldest_pending = Some(Instant::now());
        }
        drop(st);
        self.shared.work.notify_one();
        ticket
    }

    /// Block until `ticket` is durable (ack) or its flush failed
    /// (refuse). Called *after* the WAL/shadow lock is released; the
    /// caller's entry lock may stay held — that is per-KB serialization,
    /// and commits to other KBs keep flowing while we wait.
    fn wait_durable(&self, ticket: u64) -> io::Result<()> {
        let start = Instant::now();
        let mut st = self.shared.state.lock().unwrap();
        while st.durable < ticket && st.failed_through < ticket {
            st = self.shared.done.wait(st).unwrap();
        }
        let ok = st.durable >= ticket;
        let error = if ok { String::new() } else { st.error.clone() };
        drop(st);
        metrics::LATENCY_FLUSH_WAIT
            .record_nanos(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        if ok {
            metrics::GC_COMMITS.incr();
            Ok(())
        } else {
            Err(io::Error::other(format!(
                "group commit flush failed: {error}"
            )))
        }
    }

    /// A snapshot just became durable and the WAL was truncated: every
    /// append so far is carried by it (the snapshot serializes the
    /// shadow, the fold of all appends), so pending waiters are acked.
    /// Called under the WAL/shadow lock, which excludes new appends.
    fn ack_snapshot(&self) {
        let mut st = self.shared.state.lock().unwrap();
        let floor = st.durable.max(st.failed_through);
        if st.appended > floor {
            metrics::GC_SNAPSHOT_ACKS.add(st.appended - floor);
        }
        if st.appended > st.durable {
            st.durable = st.appended;
        }
        st.oldest_pending = None;
        drop(st);
        self.shared.done.notify_all();
    }

    /// Flush whatever is pending, then stop and join the flusher.
    fn stop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
        // Defensive: nothing should be waiting once the server has
        // drained, but a straggler must be refused, never left hanging.
        let mut st = self.shared.state.lock().unwrap();
        if st.durable < st.appended && st.failed_through < st.appended {
            st.failed_through = st.appended;
            st.error = "store closed before flush".to_string();
        }
        drop(st);
        self.shared.done.notify_all();
    }
}

/// The flusher: wait for appends, optionally linger up to the flush
/// interval past the oldest pending append so batch-mates join, fsync
/// once with **no lock held**, then advance the durable (or failed)
/// watermark and wake every covered waiter. Commits that append during
/// the fsync form the next batch — that overlap is the natural batching
/// that makes one fsync pay for N commits under load.
fn flusher_loop(shared: &FlushShared, file: &File, fault: &Budget, interval: Duration) {
    loop {
        let target = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.appended > st.durable.max(st.failed_through) {
                    break;
                }
                if st.shutdown {
                    return;
                }
                st = shared.work.wait(st).unwrap();
            }
            if !interval.is_zero() && !st.shutdown {
                // Deadline accumulation: the fsync is issued at most
                // `interval` after the oldest unflushed append, however
                // many batch-mates have arrived by then.
                while let Some(oldest) = st.oldest_pending {
                    let elapsed = oldest.elapsed();
                    if elapsed >= interval || st.shutdown {
                        break;
                    }
                    let (guard, timeout) =
                        shared.work.wait_timeout(st, interval - elapsed).unwrap();
                    st = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            st.oldest_pending = None;
            st.appended
        };
        let result = wal::sync_file(file, fault);
        let mut st = shared.state.lock().unwrap();
        match result {
            Ok(()) => {
                metrics::GC_FSYNCS.incr();
                if target > st.durable {
                    st.durable = target;
                }
            }
            Err(e) => {
                metrics::GC_FLUSH_FAILURES.incr();
                st.error = e.to_string();
                if target > st.failed_through {
                    st.failed_through = target;
                }
            }
        }
        drop(st);
        shared.done.notify_all();
    }
}

struct DurableBackend {
    state: Mutex<DurableState>,
    group: Option<GroupCommit>,
}

enum Durability {
    Memory,
    // Boxed: the backend is ~400 bytes and there is one per store, so
    // keep the in-memory variant from paying for it.
    Durable(Box<DurableBackend>),
}

/// A concurrent map from KB name to independently locked state.
pub struct KbStore {
    map: RwLock<HashMap<String, Arc<Mutex<StoredKb>>>>,
    /// Committed-KB count, mirrored from the map so `/metrics` scrapes
    /// never touch the map lock.
    count: AtomicUsize,
    durability: Durability,
}

impl Default for KbStore {
    fn default() -> KbStore {
        KbStore {
            map: RwLock::new(HashMap::new()),
            count: AtomicUsize::new(0),
            durability: Durability::Memory,
        }
    }
}

/// Is `name` a well-formed KB name (`[A-Za-z0-9_-]`, nonempty, bounded)?
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NAME_LEN
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

impl KbStore {
    /// An empty in-memory store (nothing survives the process).
    pub fn new() -> KbStore {
        KbStore::default()
    }

    /// Open a durable store: recover `opts.dir` (snapshot + WAL replay,
    /// torn-tail repair), then position the log for appending. The
    /// returned report says what recovery found.
    pub fn open_durable(
        opts: DurabilityOptions,
    ) -> Result<(KbStore, RecoveryReport), RecoveryError> {
        let (state, report) = recovery::recover(&opts.dir, opts.recover)?;
        let fault = match opts.fault {
            Some(plan) => Budget::unlimited().with_fault(plan),
            None => Budget::unlimited(),
        };
        let wal = Wal::open(&opts.dir.join(WAL_FILE), fault.clone())?;
        let group = if opts.group_commit {
            Some(GroupCommit::start(
                wal.shared_file(),
                wal.fault(),
                opts.flush_interval,
            ))
        } else {
            None
        };
        let map = state
            .iter()
            .map(|(name, kb)| (name.clone(), Arc::new(Mutex::new(kb.clone()))))
            .collect::<HashMap<_, _>>();
        let store = KbStore {
            count: AtomicUsize::new(map.len()),
            map: RwLock::new(map),
            durability: Durability::Durable(Box::new(DurableBackend {
                state: Mutex::new(DurableState {
                    wal,
                    shadow: state,
                    dir: opts.dir,
                    snapshot_every: opts.snapshot_every,
                    since_snapshot: 0,
                    fault,
                }),
                group,
            })),
        };
        Ok((store, report))
    }

    /// The entry for `name`, if present and committed. Callers lock the
    /// returned entry for the duration of one action; the store lock is
    /// already released. An entry whose `seq` is 0 under the lock was
    /// deleted (or never created) concurrently — treat it as absent.
    pub fn entry(&self, name: &str) -> Option<Arc<Mutex<StoredKb>>> {
        self.map.read().unwrap().get(name).cloned()
    }

    /// Append `rec` to the log, make it durable, and fold it into the
    /// shadow. In-memory stores trivially succeed. Returns whether a
    /// periodic snapshot is now due (callers trigger it *after*
    /// releasing their entry lock, via [`KbStore::maybe_snapshot`]).
    ///
    /// With group commit, the append + shadow fold happen under the
    /// WAL lock but the durability wait happens after releasing it, so
    /// commits to other KBs can append (and join the same fsync batch)
    /// while this one waits. If the shared flush fails the shadow is
    /// left ahead of the durable log — safe, because a later snapshot
    /// of the shadow is itself durable and replay keeps the last record
    /// per name; the commit is still refused and never published.
    fn log(&self, rec: WalRecord) -> io::Result<bool> {
        match &self.durability {
            Durability::Memory => Ok(false),
            Durability::Durable(backend) => {
                let (ticket, snapshot_due) = {
                    let mut s = backend.state.lock().unwrap();
                    let ticket = match &backend.group {
                        None => {
                            s.wal.append(&rec)?;
                            None
                        }
                        Some(group) => {
                            s.wal.append_unsynced(&rec)?;
                            Some(group.note_append())
                        }
                    };
                    match rec {
                        WalRecord::Commit { name, kb } => {
                            s.shadow.insert(name, kb);
                        }
                        WalRecord::Delete { name } => {
                            s.shadow.remove(&name);
                        }
                    }
                    s.since_snapshot += 1;
                    (
                        ticket,
                        s.snapshot_every > 0 && s.since_snapshot >= s.snapshot_every,
                    )
                };
                if let (Some(ticket), Some(group)) = (ticket, &backend.group) {
                    group.wait_durable(ticket)?;
                }
                Ok(snapshot_due)
            }
        }
    }

    /// Durably commit `next` for `name`. The caller must hold the
    /// entry's lock (so the state it computed is still current) and must
    /// only publish `next` in memory after this returns `Ok`.
    pub fn commit(&self, name: &str, next: &StoredKb) -> io::Result<bool> {
        self.log(WalRecord::Commit {
            name: name.to_string(),
            kb: next.clone(),
        })
    }

    /// Create or replace `name` with a fresh theory, optionally guarded
    /// by `if_seq`. Returns the new sequence number (1 for a new KB,
    /// previous + 1 for a replacement) and whether a snapshot is due.
    pub fn put(
        &self,
        name: &str,
        sig: Sig,
        formula: Formula,
        if_seq: Option<u64>,
    ) -> Result<(u64, bool), CommitError> {
        loop {
            let entry = self.entry_or_placeholder(name);
            let mut kb = entry.lock().unwrap();
            // A concurrent delete may have detached this entry between
            // the map lookup and our lock; its seq is 0 then. A fresh
            // placeholder also has seq 0 but is still in the map.
            if kb.seq == 0 && !self.is_current(name, &entry) {
                continue;
            }
            if let Some(expected) = if_seq {
                if expected != kb.seq {
                    let current = kb.seq;
                    drop(kb);
                    self.cleanup_placeholder(name, &entry);
                    return Err(CommitError::Conflict { current });
                }
            }
            let next = StoredKb {
                sig,
                formula,
                seq: kb.seq + 1,
            };
            match self.commit(name, &next) {
                Ok(snapshot_due) => {
                    if kb.seq == 0 {
                        self.count.fetch_add(1, Ordering::Relaxed);
                    }
                    *kb = next;
                    return Ok((kb.seq, snapshot_due));
                }
                Err(e) => {
                    drop(kb);
                    self.cleanup_placeholder(name, &entry);
                    return Err(CommitError::Io(e));
                }
            }
        }
    }

    /// Remove `name`, optionally guarded by `if_seq`. `Ok(None)` when no
    /// such KB exists; otherwise the snapshot-due flag.
    pub fn delete(&self, name: &str, if_seq: Option<u64>) -> Result<Option<bool>, CommitError> {
        let entry = match self.entry(name) {
            Some(e) => e,
            None => return Ok(None),
        };
        let mut kb = entry.lock().unwrap();
        if kb.seq == 0 {
            // Placeholder or concurrently deleted: not a committed KB.
            return Ok(None);
        }
        if let Some(expected) = if_seq {
            if expected != kb.seq {
                return Err(CommitError::Conflict { current: kb.seq });
            }
        }
        let snapshot_due = self.log(WalRecord::Delete {
            name: name.to_string(),
        })?;
        // Tombstone, then detach — all under the entry lock, so no
        // concurrent mutation can observe the in-between state.
        kb.seq = 0;
        let mut map = self.map.write().unwrap();
        if map.get(name).is_some_and(|e| Arc::ptr_eq(e, &entry)) {
            map.remove(name);
        }
        drop(map);
        self.count.fetch_sub(1, Ordering::Relaxed);
        Ok(Some(snapshot_due))
    }

    /// Get the entry for `name`, inserting a placeholder (seq 0) if
    /// absent. Placeholders reserve the per-name lock for a creating
    /// commit; they read as absent until the commit lands.
    fn entry_or_placeholder(&self, name: &str) -> Arc<Mutex<StoredKb>> {
        let mut map = self.map.write().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| {
                Arc::new(Mutex::new(StoredKb {
                    sig: Sig::new(),
                    formula: Formula::False,
                    seq: 0,
                }))
            })
            .clone()
    }

    /// Does the map still point at exactly this entry?
    fn is_current(&self, name: &str, entry: &Arc<Mutex<StoredKb>>) -> bool {
        self.map
            .read()
            .unwrap()
            .get(name)
            .is_some_and(|e| Arc::ptr_eq(e, entry))
    }

    /// Remove `entry` from the map if it is an uncommitted placeholder
    /// this caller abandoned (failed or refused creating commit).
    /// `try_lock` keeps the lock order acyclic (the map lock is never
    /// held while *waiting* on an entry): if another thread holds the
    /// entry, it is mid-mutation and owns the cleanup decision — worst
    /// case a benign placeholder lingers until the next put reuses it.
    fn cleanup_placeholder(&self, name: &str, entry: &Arc<Mutex<StoredKb>>) {
        let mut map = self.map.write().unwrap();
        let abandoned = match map.get(name) {
            Some(current) if Arc::ptr_eq(current, entry) => {
                matches!(current.try_lock(), Ok(kb) if kb.seq == 0)
            }
            _ => false,
        };
        if abandoned {
            map.remove(name);
        }
    }

    /// Number of stored KBs. Lock-free: a relaxed gauge mirrored from
    /// the map, so `/metrics` scrapes never contend with mutations.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Write a snapshot now if one is due (periodic trigger). Called by
    /// route handlers after releasing entry locks. Errors are counted
    /// and swallowed upstream: the commits themselves are already
    /// durable in the WAL, a failed snapshot only delays truncation.
    pub fn maybe_snapshot(&self) -> io::Result<bool> {
        match &self.durability {
            Durability::Memory => Ok(false),
            Durability::Durable(backend) => {
                let mut s = backend.state.lock().unwrap();
                if s.snapshot_every == 0 || s.since_snapshot < s.snapshot_every {
                    return Ok(false);
                }
                Self::snapshot_locked(&mut s, backend.group.as_ref())?;
                Ok(true)
            }
        }
    }

    /// Write a snapshot unconditionally (shutdown drain). A no-op for
    /// in-memory stores.
    pub fn snapshot_now(&self) -> io::Result<()> {
        match &self.durability {
            Durability::Memory => Ok(()),
            Durability::Durable(backend) => {
                let mut s = backend.state.lock().unwrap();
                Self::snapshot_locked(&mut s, backend.group.as_ref())
            }
        }
    }

    /// Snapshot protocol, under the WAL/shadow lock: serialize the
    /// shadow (the fold of the log), make it durable, then truncate the
    /// log it materializes. Commits are blocked for the duration, which
    /// is the price of the truncation being provably safe. The durable
    /// snapshot covers every append the shadow folded, so it also acks
    /// any commits still waiting on the group-commit flusher.
    fn snapshot_locked(s: &mut DurableState, group: Option<&GroupCommit>) -> io::Result<()> {
        snapshot::write_snapshot(&s.dir, &s.shadow, &s.fault)?;
        s.wal.truncate_to_empty()?;
        s.since_snapshot = 0;
        if let Some(group) = group {
            group.ack_snapshot();
        }
        Ok(())
    }

    /// Count a failed periodic snapshot and keep serving: the WAL still
    /// holds everything, truncation is merely postponed.
    pub fn note_snapshot_error(&self) {
        metrics::WAL_SNAPSHOT_ERRORS.incr();
    }
}

impl Drop for KbStore {
    fn drop(&mut self) {
        if let Durability::Durable(backend) = &mut self.durability {
            if let Some(group) = backend.group.as_mut() {
                group.stop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbitrex_logic::parse;

    #[test]
    fn put_get_replace_delete_lifecycle() {
        let store = KbStore::new();
        assert!(store.entry("fleet").is_none());

        let mut sig = Sig::new();
        let f = parse(&mut sig, "A & B").unwrap();
        assert_eq!(store.put("fleet", sig.clone(), f, None).unwrap().0, 1);
        assert_eq!(store.len(), 1);

        let entry = store.entry("fleet").unwrap();
        assert_eq!(entry.lock().unwrap().seq, 1);

        let f2 = parse(&mut sig, "A | B").unwrap();
        assert_eq!(store.put("fleet", sig, f2, None).unwrap().0, 2);
        // The handle observes the replacement: entries are shared state.
        assert_eq!(entry.lock().unwrap().seq, 2);

        assert!(store.delete("fleet", None).unwrap().is_some());
        assert!(store.delete("fleet", None).unwrap().is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn in_place_mutation_bumps_seq_through_the_entry() {
        let store = KbStore::new();
        let mut sig = Sig::new();
        let f = parse(&mut sig, "A").unwrap();
        store.put("k", sig.clone(), f, None).unwrap();
        {
            let entry = store.entry("k").unwrap();
            let mut kb = entry.lock().unwrap();
            kb.formula = parse(&mut kb.sig, "A & C").unwrap();
            kb.seq += 1;
        }
        let entry = store.entry("k").unwrap();
        let kb = entry.lock().unwrap();
        assert_eq!(kb.seq, 2);
        assert!(kb.sig.get("C").is_some());
    }

    #[test]
    fn if_seq_guards_put_and_delete() {
        let store = KbStore::new();
        let mut sig = Sig::new();
        let f = parse(&mut sig, "A").unwrap();

        // Creating with if_seq 0 means "only if absent".
        assert_eq!(
            store.put("k", sig.clone(), f.clone(), Some(0)).unwrap().0,
            1
        );
        match store.put("k", sig.clone(), f.clone(), Some(0)) {
            Err(CommitError::Conflict { current }) => assert_eq!(current, 1),
            other => panic!("expected conflict, got {other:?}"),
        }
        // A failed guarded create of a *new* name leaves no placeholder.
        match store.put("other", sig.clone(), f.clone(), Some(7)) {
            Err(CommitError::Conflict { current }) => assert_eq!(current, 0),
            other => panic!("expected conflict, got {other:?}"),
        }
        assert!(store.entry("other").is_none());

        // Matching guard commits; stale guard then conflicts with the
        // new current seq.
        assert_eq!(
            store.put("k", sig.clone(), f.clone(), Some(1)).unwrap().0,
            2
        );
        match store.delete("k", Some(1)) {
            Err(CommitError::Conflict { current }) => assert_eq!(current, 2),
            other => panic!("expected conflict, got {other:?}"),
        }
        assert!(store.delete("k", Some(2)).unwrap().is_some());
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn len_is_lock_free_and_tracks_mutations() {
        let store = KbStore::new();
        let mut sig = Sig::new();
        let f = parse(&mut sig, "A").unwrap();
        for i in 0..10 {
            store
                .put(&format!("kb-{i}"), sig.clone(), f.clone(), None)
                .unwrap();
        }
        assert_eq!(store.len(), 10);
        // Replacement does not change the count.
        store.put("kb-3", sig.clone(), f.clone(), None).unwrap();
        assert_eq!(store.len(), 10);
        store.delete("kb-3", None).unwrap();
        assert_eq!(store.len(), 9);
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("fleet-1_config"));
        assert!(valid_name("A"));
        assert!(!valid_name(""));
        assert!(!valid_name("has space"));
        assert!(!valid_name("sneaky/../path"));
        assert!(!valid_name(&"x".repeat(MAX_NAME_LEN + 1)));
    }
}
