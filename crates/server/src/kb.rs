//! Named knowledge bases for iterated arbitration sessions.
//!
//! A stored KB is a formula together with the signature its variable
//! names live in and a monotonically increasing sequence number; the
//! `/v1/kb/{name}` endpoint arbitrates new information into it in place
//! (`ψ ← ψ Δ μ`), the paper's iterated-change reading of a theory
//! absorbing a stream of reports. The store is a read-mostly map of
//! independently locked entries: concurrent updates to *different* KBs
//! never contend, updates to the same KB serialize, and the sequence
//! number makes lost updates detectable (and, with `if_seq`,
//! preventable) for clients.
//!
//! # Durability
//!
//! The store has two backends. The default is purely in memory (tests,
//! benches, `arbx serve` without `--state-dir`). With
//! [`DurabilityOptions`] every mutation follows the commit protocol:
//!
//! 1. compute the new state under the entry's lock,
//! 2. append it to the write-ahead log and **fsync** ([`crate::wal`]),
//! 3. only then publish it in memory and acknowledge to the client.
//!
//! A crash between 2 and 3 leaves a durable record of a commit nobody
//! was told about (harmless: replay keeps it); a crash during 2 leaves a
//! torn tail that recovery truncates (also harmless: nobody was told).
//! What can never happen is an acknowledged commit that recovery loses.
//!
//! With **group commit** (the default; `--group-commit=off` restores
//! fsync-per-commit) step 2 splits: the record is appended — not
//! synced — under the WAL lock and receives a monotonically increasing
//! *ticket*; the committer then releases the WAL lock and blocks until
//! a dedicated flusher thread's shared fsync covers its ticket. One
//! fsync acknowledges every commit appended while the previous one ran,
//! so N concurrent commit streams pay ~1/N of an fsync each. A failed
//! shared flush refuses (500s) exactly the commits it covered; their
//! records may still reach disk, which is the always-allowed "durable
//! record of a commit nobody was told about". The ack point is
//! unchanged: no commit is acknowledged before an fsync (or a durable
//! snapshot — see below) covering its append has succeeded.
//!
//! The durable backend also maintains a *shadow* copy of the committed
//! state under the WAL lock — the materialized fold of the log — so
//! snapshots serialize a provably log-consistent state without touching
//! the per-entry locks (which a committing request may hold while
//! waiting on the WAL). Because the shadow folds *appended* records,
//! a snapshot durably carries even not-yet-fsynced appends; writing one
//! therefore advances the group-commit durable watermark and acks any
//! commits still waiting on the flusher.
//!
//! # Replication
//!
//! Every append is stamped with the store's fencing *epoch* and a
//! global *replication sequence number* (`rseq`, one per logged record
//! across all KBs) and retained in a [`crate::replication::ReplLog`]
//! ring for streaming to replicas. A replica applies the primary's
//! frames byte-for-byte through [`KbStore::apply_replicated`], which
//! enforces epoch fencing (a deposed primary's frames are refused) and
//! rseq contiguity (a gap forces a snapshot resync). Promotion bumps
//! the epoch and clears the replica's read-only flag.
//!
//! Lock order: entry lock → WAL/shadow lock → flush-progress lock →
//! map lock. The map lock is never held while acquiring an entry lock,
//! so a mutation holding its entry across a (slow, fsyncing) commit
//! cannot deadlock with lookups, deletes, or placeholder cleanup. The
//! flusher thread only ever takes the flush-progress lock, and fsyncs
//! with no lock held at all — that is what lets appends continue while
//! a flush is in flight. The replication log's ring lock is a leaf
//! acquired under the WAL/shadow lock (push) or with no other lock held
//! (fetch); it never acquires any other lock itself.

use std::collections::HashMap;
use std::fs::File;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use arbitrex_core::{Budget, FaultPlan};
use arbitrex_logic::{canonical_key, Formula, Sig};

use crate::metrics;
use crate::recovery::{self, RecoverMode, RecoveryError, RecoveryReport};
use crate::replication::ReplLog;
use crate::snapshot::{self, SnapshotContents};
use crate::wal::{self, StampedRecord, Wal, WalRecord, WAL_FILE};

/// Longest accepted KB name.
pub const MAX_NAME_LEN: usize = 64;

/// One stored knowledge base.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredKb {
    /// The signature the formula's variables are named in. Grows when new
    /// information mentions fresh variables.
    pub sig: Sig,
    /// The current theory.
    pub formula: Formula,
    /// Bumped by every committed mutation, starting at 1 on first put.
    /// `0` never names a committed state: it marks a placeholder entry
    /// whose creating commit has not reached the log yet (treated as
    /// absent everywhere).
    pub seq: u64,
}

/// Why a mutation did not commit.
#[derive(Debug)]
pub enum CommitError {
    /// The caller's `if_seq` did not match the current sequence number.
    Conflict {
        /// The sequence number actually current (0 when absent).
        current: u64,
    },
    /// The durable append (or its fsync) failed: the mutation was NOT
    /// applied and must not be acknowledged.
    Io(io::Error),
}

impl From<io::Error> for CommitError {
    fn from(e: io::Error) -> CommitError {
        CommitError::Io(e)
    }
}

/// Configuration of the durable backend.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// State directory holding `wal.log` and `snapshot.bin`.
    pub dir: PathBuf,
    /// Snapshot after this many WAL records (0 disables periodic
    /// snapshots; one is still written on clean shutdown).
    pub snapshot_every: u64,
    /// What to do when recovery meets damage beyond a torn tail.
    pub recover: RecoverMode,
    /// Deterministic durability fault injection (testing).
    pub fault: Option<FaultPlan>,
    /// Batch WAL fsyncs behind a flusher thread (one fsync acks N
    /// commits); `false` restores the fsync-per-commit path.
    pub group_commit: bool,
    /// With group commit, how long the flusher may linger past the
    /// oldest pending append waiting for batch-mates. Zero flushes as
    /// soon as the flusher is free (natural batching only).
    pub flush_interval: Duration,
    /// Start the fencing epoch here instead of continuing from what
    /// recovery found (never below it — a lower epoch would be a stamp
    /// regression on the next recovery).
    pub initial_epoch: Option<u64>,
    /// Open as a replica: writes are refused until promotion.
    pub replica: bool,
}

struct DurableState {
    wal: Wal,
    /// The materialized fold of the log: exactly what recovery would
    /// rebuild. Snapshots serialize this, never the live entries.
    shadow: HashMap<String, StoredKb>,
    dir: PathBuf,
    snapshot_every: u64,
    since_snapshot: u64,
    fault: Budget,
    /// Current fencing epoch, stamped into every appended frame.
    epoch: u64,
    /// The `rseq` the next appended frame will carry.
    next_rseq: u64,
}

/// Group-commit progress, shared between committers and the flusher.
struct FlushState {
    /// Records appended to the log so far; an append's ticket is the
    /// value after its increment.
    appended: u64,
    /// Highest ticket covered by a successful fsync or durable snapshot.
    durable: u64,
    /// Highest ticket covered by a failed flush attempt; waiters at or
    /// below it are refused.
    failed_through: u64,
    /// The most recent flush error, for refused waiters.
    error: String,
    /// When the oldest not-yet-flushed append landed (the
    /// `flush_interval` deadline is measured from here).
    oldest_pending: Option<Instant>,
    /// The store is closing: flush what is pending, then exit.
    shutdown: bool,
}

struct FlushShared {
    state: Mutex<FlushState>,
    /// Wakes the flusher (new appends, shutdown).
    work: Condvar,
    /// Wakes committers (a watermark advanced).
    done: Condvar,
}

/// The group-commit half of a durable backend: ticket issuing, the
/// flusher thread, and the ack rendezvous.
struct GroupCommit {
    shared: Arc<FlushShared>,
    flusher: Option<thread::JoinHandle<()>>,
}

impl GroupCommit {
    fn start(file: Arc<File>, fault: Budget, interval: Duration) -> GroupCommit {
        let shared = Arc::new(FlushShared {
            state: Mutex::new(FlushState {
                appended: 0,
                durable: 0,
                failed_through: 0,
                error: String::new(),
                oldest_pending: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let flusher = thread::Builder::new()
            .name("arbitrex-wal-flusher".to_string())
            .spawn(move || flusher_loop(&thread_shared, &file, &fault, interval))
            .expect("spawn wal flusher");
        GroupCommit {
            shared,
            flusher: Some(flusher),
        }
    }

    /// Issue the ticket for an append. Called under the WAL/shadow lock,
    /// which is what keeps ticket order consistent with file contents:
    /// a flusher that observes ticket T (under the flush-progress lock)
    /// is ordered after the `write(2)` that produced T's bytes.
    fn note_append(&self) -> u64 {
        let mut st = self.shared.state.lock().unwrap();
        st.appended += 1;
        let ticket = st.appended;
        if st.oldest_pending.is_none() {
            st.oldest_pending = Some(Instant::now());
        }
        drop(st);
        self.shared.work.notify_one();
        ticket
    }

    /// Block until `ticket` is durable (ack) or its flush failed
    /// (refuse). Called *after* the WAL/shadow lock is released; the
    /// caller's entry lock may stay held — that is per-KB serialization,
    /// and commits to other KBs keep flowing while we wait.
    fn wait_durable(&self, ticket: u64) -> io::Result<()> {
        let start = Instant::now();
        let mut st = self.shared.state.lock().unwrap();
        while st.durable < ticket && st.failed_through < ticket {
            st = self.shared.done.wait(st).unwrap();
        }
        let ok = st.durable >= ticket;
        let error = if ok { String::new() } else { st.error.clone() };
        drop(st);
        metrics::LATENCY_FLUSH_WAIT
            .record_nanos(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        if ok {
            metrics::GC_COMMITS.incr();
            Ok(())
        } else {
            Err(io::Error::other(format!(
                "group commit flush failed: {error}"
            )))
        }
    }

    /// A snapshot just became durable and the WAL was truncated: every
    /// append so far is carried by it (the snapshot serializes the
    /// shadow, the fold of all appends), so pending waiters are acked.
    /// Called under the WAL/shadow lock, which excludes new appends.
    fn ack_snapshot(&self) {
        let mut st = self.shared.state.lock().unwrap();
        let floor = st.durable.max(st.failed_through);
        if st.appended > floor {
            metrics::GC_SNAPSHOT_ACKS.add(st.appended - floor);
        }
        if st.appended > st.durable {
            st.durable = st.appended;
        }
        st.oldest_pending = None;
        drop(st);
        self.shared.done.notify_all();
    }

    /// Flush whatever is pending, then stop and join the flusher.
    fn stop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
        // Defensive: nothing should be waiting once the server has
        // drained, but a straggler must be refused, never left hanging.
        let mut st = self.shared.state.lock().unwrap();
        if st.durable < st.appended && st.failed_through < st.appended {
            st.failed_through = st.appended;
            st.error = "store closed before flush".to_string();
        }
        drop(st);
        self.shared.done.notify_all();
    }
}

/// The flusher: wait for appends, optionally linger up to the flush
/// interval past the oldest pending append so batch-mates join, fsync
/// once with **no lock held**, then advance the durable (or failed)
/// watermark and wake every covered waiter. Commits that append during
/// the fsync form the next batch — that overlap is the natural batching
/// that makes one fsync pay for N commits under load.
fn flusher_loop(shared: &FlushShared, file: &File, fault: &Budget, interval: Duration) {
    loop {
        let target = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.appended > st.durable.max(st.failed_through) {
                    break;
                }
                if st.shutdown {
                    return;
                }
                st = shared.work.wait(st).unwrap();
            }
            if !interval.is_zero() && !st.shutdown {
                // Deadline accumulation: the fsync is issued at most
                // `interval` after the oldest unflushed append, however
                // many batch-mates have arrived by then.
                while let Some(oldest) = st.oldest_pending {
                    let elapsed = oldest.elapsed();
                    if elapsed >= interval || st.shutdown {
                        break;
                    }
                    let (guard, timeout) =
                        shared.work.wait_timeout(st, interval - elapsed).unwrap();
                    st = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            st.oldest_pending = None;
            st.appended
        };
        let result = wal::sync_file(file, fault);
        let mut st = shared.state.lock().unwrap();
        match result {
            Ok(()) => {
                metrics::GC_FSYNCS.incr();
                if target > st.durable {
                    st.durable = target;
                }
            }
            Err(e) => {
                metrics::GC_FLUSH_FAILURES.incr();
                st.error = e.to_string();
                if target > st.failed_through {
                    st.failed_through = target;
                }
            }
        }
        drop(st);
        shared.done.notify_all();
    }
}

struct DurableBackend {
    state: Mutex<DurableState>,
    group: Option<GroupCommit>,
    /// Retained frames + watermarks + role flags, shared with the
    /// replication endpoints and (on a replica) the puller thread.
    repl: Arc<ReplLog>,
}

enum Durability {
    Memory,
    // Boxed: the backend is ~400 bytes and there is one per store, so
    // keep the in-memory variant from paying for it.
    Durable(Box<DurableBackend>),
}

/// A concurrent map from KB name to independently locked state.
pub struct KbStore {
    map: RwLock<HashMap<String, Arc<Mutex<StoredKb>>>>,
    /// Committed-KB count, mirrored from the map so `/metrics` scrapes
    /// never touch the map lock.
    count: AtomicUsize,
    durability: Durability,
}

impl Default for KbStore {
    fn default() -> KbStore {
        KbStore {
            map: RwLock::new(HashMap::new()),
            count: AtomicUsize::new(0),
            durability: Durability::Memory,
        }
    }
}

/// Is `name` a well-formed KB name (`[A-Za-z0-9_-]`, nonempty, bounded)?
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NAME_LEN
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

impl KbStore {
    /// An empty in-memory store (nothing survives the process).
    pub fn new() -> KbStore {
        KbStore::default()
    }

    /// Open a durable store: recover `opts.dir` (snapshot + WAL replay,
    /// torn-tail repair), then position the log for appending. The
    /// returned report says what recovery found.
    pub fn open_durable(
        opts: DurabilityOptions,
    ) -> Result<(KbStore, RecoveryReport), RecoveryError> {
        let (state, report) = recovery::recover(&opts.dir, opts.recover)?;
        let fault = match opts.fault {
            Some(plan) => Budget::unlimited().with_fault(plan),
            None => Budget::unlimited(),
        };
        let wal = Wal::open(&opts.dir.join(WAL_FILE), fault.clone())?;
        let group = if opts.group_commit {
            Some(GroupCommit::start(
                wal.shared_file(),
                wal.fault(),
                opts.flush_interval,
            ))
        } else {
            None
        };
        // The epoch continues from (never drops below) what recovery
        // found — a lower stamp would read as corruption next time; the
        // rseq space always continues, promotion does not reset it.
        let epoch = opts.initial_epoch.unwrap_or(1).max(report.max_epoch).max(1);
        let next_rseq = report.max_rseq + 1;
        let repl = Arc::new(ReplLog::new(epoch, next_rseq, opts.replica));
        let map = state
            .iter()
            .map(|(name, kb)| (name.clone(), Arc::new(Mutex::new(kb.clone()))))
            .collect::<HashMap<_, _>>();
        let store = KbStore {
            count: AtomicUsize::new(map.len()),
            map: RwLock::new(map),
            durability: Durability::Durable(Box::new(DurableBackend {
                state: Mutex::new(DurableState {
                    wal,
                    shadow: state,
                    dir: opts.dir,
                    snapshot_every: opts.snapshot_every,
                    since_snapshot: 0,
                    fault,
                    epoch,
                    next_rseq,
                }),
                group,
                repl,
            })),
        };
        Ok((store, report))
    }

    /// The entry for `name`, if present and committed. Callers lock the
    /// returned entry for the duration of one action; the store lock is
    /// already released. An entry whose `seq` is 0 under the lock was
    /// deleted (or never created) concurrently — treat it as absent.
    pub fn entry(&self, name: &str) -> Option<Arc<Mutex<StoredKb>>> {
        self.map.read().unwrap().get(name).cloned()
    }

    /// Append `rec` to the log, make it durable, and fold it into the
    /// shadow. In-memory stores trivially succeed (with `rseq` 0).
    /// Returns the record's replication sequence number and whether a
    /// periodic snapshot is now due (callers trigger it *after*
    /// releasing their entry lock, via [`KbStore::maybe_snapshot`]).
    ///
    /// With group commit, the append + shadow fold happen under the
    /// WAL lock but the durability wait happens after releasing it, so
    /// commits to other KBs can append (and join the same fsync batch)
    /// while this one waits. If the shared flush fails the shadow is
    /// left ahead of the durable log — safe, because a later snapshot
    /// of the shadow is itself durable and replay keeps the last record
    /// per name; the commit is still refused and never published.
    ///
    /// The frame is retained for replication at append time, but the
    /// shippable watermark only advances after the durability wait
    /// succeeds — a replica is never served a frame the primary has not
    /// acknowledged to its own client.
    fn log(&self, rec: WalRecord) -> io::Result<(u64, bool)> {
        match &self.durability {
            Durability::Memory => Ok((0, false)),
            Durability::Durable(backend) => {
                let (rseq, ticket, snapshot_due) = {
                    let mut s = backend.state.lock().unwrap();
                    let rseq = s.next_rseq;
                    let framed = wal::frame(s.epoch, rseq, &wal::encode_record(&rec));
                    let ticket = match &backend.group {
                        None => {
                            s.wal.append_frame_unsynced(&framed)?;
                            s.wal.sync()?;
                            None
                        }
                        Some(group) => {
                            s.wal.append_frame_unsynced(&framed)?;
                            Some(group.note_append())
                        }
                    };
                    s.next_rseq += 1;
                    backend.repl.push(s.epoch, rseq, framed);
                    match rec {
                        WalRecord::Commit { name, kb } => {
                            s.shadow.insert(name, kb);
                        }
                        WalRecord::Delete { name } => {
                            s.shadow.remove(&name);
                        }
                    }
                    s.since_snapshot += 1;
                    (
                        rseq,
                        ticket,
                        s.snapshot_every > 0 && s.since_snapshot >= s.snapshot_every,
                    )
                };
                if let (Some(ticket), Some(group)) = (ticket, &backend.group) {
                    group.wait_durable(ticket)?;
                }
                // This record's fsync (inline or shared) covered every
                // earlier append too, so the watermark jump is safe.
                backend.repl.advance_durable(rseq);
                backend.repl.set_visible(rseq);
                Ok((rseq, snapshot_due))
            }
        }
    }

    /// Durably commit `next` for `name`. The caller must hold the
    /// entry's lock (so the state it computed is still current) and must
    /// only publish `next` in memory after this returns `Ok`. Returns
    /// the commit's replication sequence number and the snapshot-due
    /// flag.
    pub fn commit(&self, name: &str, next: &StoredKb) -> io::Result<(u64, bool)> {
        self.log(WalRecord::Commit {
            name: name.to_string(),
            kb: next.clone(),
        })
    }

    /// Create or replace `name` with a fresh theory, optionally guarded
    /// by `if_seq`. Returns the new sequence number (1 for a new KB,
    /// previous + 1 for a replacement), the commit's replication
    /// sequence number (0 in memory), and whether a snapshot is due.
    pub fn put(
        &self,
        name: &str,
        sig: Sig,
        formula: Formula,
        if_seq: Option<u64>,
    ) -> Result<(u64, u64, bool), CommitError> {
        loop {
            let entry = self.entry_or_placeholder(name);
            let mut kb = entry.lock().unwrap();
            // A concurrent delete may have detached this entry between
            // the map lookup and our lock; its seq is 0 then. A fresh
            // placeholder also has seq 0 but is still in the map.
            if kb.seq == 0 && !self.is_current(name, &entry) {
                continue;
            }
            if let Some(expected) = if_seq {
                if expected != kb.seq {
                    let current = kb.seq;
                    drop(kb);
                    self.cleanup_placeholder(name, &entry);
                    return Err(CommitError::Conflict { current });
                }
            }
            let next = StoredKb {
                sig,
                formula,
                seq: kb.seq + 1,
            };
            match self.commit(name, &next) {
                Ok((rseq, snapshot_due)) => {
                    if kb.seq == 0 {
                        self.count.fetch_add(1, Ordering::Relaxed);
                    }
                    *kb = next;
                    return Ok((kb.seq, rseq, snapshot_due));
                }
                Err(e) => {
                    drop(kb);
                    self.cleanup_placeholder(name, &entry);
                    return Err(CommitError::Io(e));
                }
            }
        }
    }

    /// Remove `name`, optionally guarded by `if_seq`. `Ok(None)` when no
    /// such KB exists; otherwise the delete's replication sequence
    /// number and the snapshot-due flag.
    pub fn delete(
        &self,
        name: &str,
        if_seq: Option<u64>,
    ) -> Result<Option<(u64, bool)>, CommitError> {
        let entry = match self.entry(name) {
            Some(e) => e,
            None => return Ok(None),
        };
        let mut kb = entry.lock().unwrap();
        if kb.seq == 0 {
            // Placeholder or concurrently deleted: not a committed KB.
            return Ok(None);
        }
        if let Some(expected) = if_seq {
            if expected != kb.seq {
                return Err(CommitError::Conflict { current: kb.seq });
            }
        }
        let (rseq, snapshot_due) = self.log(WalRecord::Delete {
            name: name.to_string(),
        })?;
        // Tombstone, then detach — all under the entry lock, so no
        // concurrent mutation can observe the in-between state.
        kb.seq = 0;
        let mut map = self.map.write().unwrap();
        if map.get(name).is_some_and(|e| Arc::ptr_eq(e, &entry)) {
            map.remove(name);
        }
        drop(map);
        self.count.fetch_sub(1, Ordering::Relaxed);
        Ok(Some((rseq, snapshot_due)))
    }

    /// Get the entry for `name`, inserting a placeholder (seq 0) if
    /// absent. Placeholders reserve the per-name lock for a creating
    /// commit; they read as absent until the commit lands.
    fn entry_or_placeholder(&self, name: &str) -> Arc<Mutex<StoredKb>> {
        let mut map = self.map.write().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| {
                Arc::new(Mutex::new(StoredKb {
                    sig: Sig::new(),
                    formula: Formula::False,
                    seq: 0,
                }))
            })
            .clone()
    }

    /// Does the map still point at exactly this entry?
    fn is_current(&self, name: &str, entry: &Arc<Mutex<StoredKb>>) -> bool {
        self.map
            .read()
            .unwrap()
            .get(name)
            .is_some_and(|e| Arc::ptr_eq(e, entry))
    }

    /// Remove `entry` from the map if it is an uncommitted placeholder
    /// this caller abandoned (failed or refused creating commit).
    /// `try_lock` keeps the lock order acyclic (the map lock is never
    /// held while *waiting* on an entry): if another thread holds the
    /// entry, it is mid-mutation and owns the cleanup decision — worst
    /// case a benign placeholder lingers until the next put reuses it.
    fn cleanup_placeholder(&self, name: &str, entry: &Arc<Mutex<StoredKb>>) {
        let mut map = self.map.write().unwrap();
        let abandoned = match map.get(name) {
            Some(current) if Arc::ptr_eq(current, entry) => {
                matches!(current.try_lock(), Ok(kb) if kb.seq == 0)
            }
            _ => false,
        };
        if abandoned {
            map.remove(name);
        }
    }

    /// Number of stored KBs. Lock-free: a relaxed gauge mirrored from
    /// the map, so `/metrics` scrapes never contend with mutations.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Write a snapshot now if one is due (periodic trigger). Called by
    /// route handlers after releasing entry locks. Errors are counted
    /// and swallowed upstream: the commits themselves are already
    /// durable in the WAL, a failed snapshot only delays truncation.
    pub fn maybe_snapshot(&self) -> io::Result<bool> {
        match &self.durability {
            Durability::Memory => Ok(false),
            Durability::Durable(backend) => {
                let mut s = backend.state.lock().unwrap();
                if s.snapshot_every == 0 || s.since_snapshot < s.snapshot_every {
                    return Ok(false);
                }
                Self::snapshot_locked(&mut s, backend.group.as_ref(), &backend.repl)?;
                Ok(true)
            }
        }
    }

    /// Write a snapshot unconditionally (shutdown drain). A no-op for
    /// in-memory stores.
    pub fn snapshot_now(&self) -> io::Result<()> {
        match &self.durability {
            Durability::Memory => Ok(()),
            Durability::Durable(backend) => {
                let mut s = backend.state.lock().unwrap();
                Self::snapshot_locked(&mut s, backend.group.as_ref(), &backend.repl)
            }
        }
    }

    /// Snapshot protocol, under the WAL/shadow lock: serialize the
    /// shadow (the fold of the log), make it durable, then truncate the
    /// log it materializes. Commits are blocked for the duration, which
    /// is the price of the truncation being provably safe. The durable
    /// snapshot covers every append the shadow folded, so it also acks
    /// any commits still waiting on the group-commit flusher.
    fn snapshot_locked(
        s: &mut DurableState,
        group: Option<&GroupCommit>,
        repl: &ReplLog,
    ) -> io::Result<()> {
        let watermark = s.next_rseq - 1;
        snapshot::write_snapshot(&s.dir, &s.shadow, s.epoch, watermark, &s.fault)?;
        s.wal.truncate_to_empty()?;
        s.since_snapshot = 0;
        if let Some(group) = group {
            group.ack_snapshot();
        }
        // The durable snapshot carries every append the shadow folded,
        // so those frames are shippable even if their fsync never ran.
        repl.advance_durable(watermark);
        Ok(())
    }

    /// Count a failed periodic snapshot and keep serving: the WAL still
    /// holds everything, truncation is merely postponed.
    pub fn note_snapshot_error(&self) {
        metrics::WAL_SNAPSHOT_ERRORS.incr();
    }

    /// The replication log of a durable store (`None` in memory).
    pub fn replication(&self) -> Option<&Arc<ReplLog>> {
        match &self.durability {
            Durability::Memory => None,
            Durability::Durable(backend) => Some(&backend.repl),
        }
    }

    /// Apply one frame streamed from the primary, byte-for-byte.
    /// `framed` must be the exact wire bytes `stamped` was decoded from:
    /// they are appended to the local WAL verbatim, which is what makes
    /// primary and replica logs bit-identical over the shared history.
    ///
    /// Fencing and ordering are enforced here: a frame from an older
    /// epoch is refused ([`ApplyOutcome::StaleEpoch`] — a deposed
    /// primary is talking), an already-applied `rseq` is skipped
    /// ([`ApplyOutcome::Duplicate`]), and an `rseq` beyond the next
    /// expected one means frames were missed ([`ApplyOutcome::Gap`] —
    /// the caller resyncs from a snapshot). A *newer* epoch is adopted:
    /// the primary was promoted and this replica follows it.
    ///
    /// The apply does not wait for local durability — the primary's
    /// fsync was the commit's ack point, and the replica's group-commit
    /// flusher (or the next snapshot) makes the frame locally durable in
    /// the background. Visibility advances immediately so follower reads
    /// with `X-Arbitrex-Min-Seq` see the commit as soon as it applies.
    pub fn apply_replicated(
        &self,
        framed: &[u8],
        stamped: &StampedRecord,
    ) -> io::Result<ApplyOutcome> {
        let backend = match &self.durability {
            Durability::Memory => {
                return Err(io::Error::other("replication requires a durable store"))
            }
            Durability::Durable(b) => b,
        };
        let snapshot_due = {
            let mut s = backend.state.lock().unwrap();
            if stamped.epoch < s.epoch {
                return Ok(ApplyOutcome::StaleEpoch {
                    frame_epoch: stamped.epoch,
                    current_epoch: s.epoch,
                });
            }
            if stamped.rseq < s.next_rseq {
                return Ok(ApplyOutcome::Duplicate { rseq: stamped.rseq });
            }
            if stamped.rseq > s.next_rseq {
                return Ok(ApplyOutcome::Gap {
                    expected: s.next_rseq,
                    got: stamped.rseq,
                });
            }
            if stamped.epoch > s.epoch {
                s.epoch = stamped.epoch;
                backend.repl.set_epoch(stamped.epoch);
            }
            s.wal.append_frame_unsynced(framed)?;
            match &backend.group {
                Some(group) => {
                    // The background flusher will cover this ticket;
                    // nobody waits on it.
                    let _ = group.note_append();
                }
                None => s.wal.sync()?,
            }
            s.next_rseq += 1;
            backend
                .repl
                .push(stamped.epoch, stamped.rseq, framed.to_vec());
            match &stamped.record {
                WalRecord::Commit { name, kb } => {
                    s.shadow.insert(name.clone(), kb.clone());
                }
                WalRecord::Delete { name } => {
                    s.shadow.remove(name);
                }
            }
            s.since_snapshot += 1;
            s.snapshot_every > 0 && s.since_snapshot >= s.snapshot_every
        };
        backend.repl.advance_durable(stamped.rseq);
        // Publish to the live map with the WAL lock released (entry
        // locks are taken above WAL in the lock order). Single-writer:
        // the puller is the only mutator of a read-only replica.
        match &stamped.record {
            WalRecord::Commit { name, kb } => self.publish_replicated(name, kb.clone()),
            WalRecord::Delete { name } => self.unpublish_replicated(name),
        }
        backend.repl.set_visible(stamped.rseq);
        Ok(ApplyOutcome::Applied {
            rseq: stamped.rseq,
            snapshot_due,
        })
    }

    /// Install `next` for `name` in the live map (replica apply path).
    fn publish_replicated(&self, name: &str, next: StoredKb) {
        let mut next = Some(next);
        loop {
            let entry = self.entry_or_placeholder(name);
            let mut kb = entry.lock().unwrap();
            if kb.seq == 0 && !self.is_current(name, &entry) {
                continue;
            }
            if kb.seq == 0 {
                self.count.fetch_add(1, Ordering::Relaxed);
            }
            *kb = next.take().unwrap();
            return;
        }
    }

    /// Remove `name` from the live map (replica apply path).
    fn unpublish_replicated(&self, name: &str) {
        let entry = match self.entry(name) {
            Some(e) => e,
            None => return,
        };
        let mut kb = entry.lock().unwrap();
        if kb.seq == 0 {
            return;
        }
        kb.seq = 0;
        let mut map = self.map.write().unwrap();
        if map.get(name).is_some_and(|e| Arc::ptr_eq(e, &entry)) {
            map.remove(name);
        }
        drop(map);
        self.count.fetch_sub(1, Ordering::Relaxed);
    }

    /// Promote this store to primary: bump the fencing epoch and accept
    /// writes. Frames the deposed primary stamped with the old epoch are
    /// refused from here on. The rseq space continues — promotion never
    /// reuses a sequence number. Returns `(new_epoch, last_rseq)`.
    pub fn promote(&self) -> io::Result<(u64, u64)> {
        let backend = match &self.durability {
            Durability::Memory => {
                return Err(io::Error::other("promotion requires a durable store"))
            }
            Durability::Durable(b) => b,
        };
        let mut s = backend.state.lock().unwrap();
        s.epoch += 1;
        backend.repl.set_epoch(s.epoch);
        backend.repl.set_read_only(false);
        backend.repl.stop_puller();
        metrics::REPL_PROMOTIONS.incr();
        Ok((s.epoch, s.next_rseq - 1))
    }

    /// Demote this store to replica: refuse writes until the next
    /// promotion. The epoch is untouched — the follow/resync path adopts
    /// the new head's higher epoch when frames arrive. Used when a
    /// deposed chain head rejoins its shard's chain as a tail.
    pub fn demote(&self) -> io::Result<()> {
        let backend = match &self.durability {
            Durability::Memory => {
                return Err(io::Error::other("demotion requires a durable store"))
            }
            Durability::Durable(b) => b,
        };
        backend.repl.set_read_only(true);
        metrics::FAILOVER_DEMOTIONS.incr();
        Ok(())
    }

    /// Per-KB digest for anti-entropy: `(name, seq, canonical content
    /// hash)`, sorted by name. Two stores with equal digests hold
    /// logically identical state.
    pub fn digest(&self) -> Vec<(String, u64, u64)> {
        let entries: Vec<(String, Arc<Mutex<StoredKb>>)> = self
            .map
            .read()
            .unwrap()
            .iter()
            .map(|(name, entry)| (name.clone(), Arc::clone(entry)))
            .collect();
        let mut out = Vec::with_capacity(entries.len());
        for (name, entry) in entries {
            let kb = entry.lock().unwrap();
            if kb.seq > 0 {
                out.push((name, kb.seq, canonical_key(&kb.formula)));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The in-memory snapshot image of the current state — what `GET
    /// /v1/replication/snapshot` serves a resyncing replica. Built from
    /// the shadow under the WAL lock, so it is log-consistent.
    pub fn snapshot_image(&self) -> io::Result<Vec<u8>> {
        let backend = match &self.durability {
            Durability::Memory => {
                return Err(io::Error::other("snapshots require a durable store"))
            }
            Durability::Durable(b) => b,
        };
        let s = backend.state.lock().unwrap();
        Ok(snapshot::encode_snapshot(
            &s.shadow,
            s.epoch,
            s.next_rseq - 1,
        ))
    }

    /// Replace this store's entire state with a snapshot shipped from
    /// the primary (replica resync after falling behind frame retention
    /// or observing a promotion). The image is made locally durable
    /// first — crash-during-resync recovers to either the old state or
    /// the new one, never a mix.
    pub fn install_state(&self, contents: SnapshotContents) -> io::Result<()> {
        let backend = match &self.durability {
            Durability::Memory => {
                return Err(io::Error::other("replication requires a durable store"))
            }
            Durability::Durable(b) => b,
        };
        let mut s = backend.state.lock().unwrap();
        snapshot::write_snapshot(
            &s.dir,
            &contents.entries,
            contents.epoch,
            contents.rseq,
            &s.fault,
        )?;
        s.wal.truncate_to_empty()?;
        s.shadow = contents.entries.clone();
        s.epoch = contents.epoch;
        s.next_rseq = contents.rseq + 1;
        s.since_snapshot = 0;
        if let Some(group) = &backend.group {
            group.ack_snapshot();
        }
        backend.repl.reset(contents.epoch, contents.rseq);
        // Swap the live map under the WAL lock (WAL → map is the
        // documented order). The replica's single puller thread is the
        // only mutator, so no entry lock is held across this.
        let new_map: HashMap<String, Arc<Mutex<StoredKb>>> = contents
            .entries
            .into_iter()
            .map(|(name, kb)| (name, Arc::new(Mutex::new(kb))))
            .collect();
        let n = new_map.len();
        let mut map = self.map.write().unwrap();
        *map = new_map;
        drop(map);
        self.count.store(n, Ordering::Relaxed);
        Ok(())
    }

    /// Commit `next` for `name` with a caller-chosen sequence number
    /// (reconciliation: adopting a peer's KB verbatim, or landing a
    /// `Δ`-merged theory at a seq both sides agree on). Goes through the
    /// normal durable commit path; only the seq choice differs from
    /// [`KbStore::put`].
    pub fn force_put(&self, name: &str, next: StoredKb) -> io::Result<(u64, bool)> {
        let mut next = Some(next);
        loop {
            let entry = self.entry_or_placeholder(name);
            let mut kb = entry.lock().unwrap();
            if kb.seq == 0 && !self.is_current(name, &entry) {
                continue;
            }
            let next_kb = next.take().unwrap();
            match self.commit(name, &next_kb) {
                Ok((rseq, snapshot_due)) => {
                    if kb.seq == 0 {
                        self.count.fetch_add(1, Ordering::Relaxed);
                    }
                    *kb = next_kb;
                    return Ok((rseq, snapshot_due));
                }
                Err(e) => {
                    drop(kb);
                    self.cleanup_placeholder(name, &entry);
                    return Err(e);
                }
            }
        }
    }
}

/// What [`KbStore::apply_replicated`] did with a streamed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// Applied and visible; `snapshot_due` asks the caller to trigger a
    /// periodic snapshot (after releasing any entry locks).
    Applied {
        /// The frame's replication sequence number.
        rseq: u64,
        /// A periodic snapshot is now due.
        snapshot_due: bool,
    },
    /// Already applied (duplicate delivery); skipped.
    Duplicate {
        /// The duplicate frame's replication sequence number.
        rseq: u64,
    },
    /// Stamped by a deposed epoch; refused.
    StaleEpoch {
        /// The refused frame's epoch.
        frame_epoch: u64,
        /// This store's current epoch.
        current_epoch: u64,
    },
    /// Beyond the next expected `rseq`: frames were missed, resync.
    Gap {
        /// The `rseq` this store expected next.
        expected: u64,
        /// The `rseq` the frame actually carried.
        got: u64,
    },
}

impl Drop for KbStore {
    fn drop(&mut self) {
        if let Durability::Durable(backend) = &mut self.durability {
            if let Some(group) = backend.group.as_mut() {
                group.stop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbitrex_logic::parse;

    #[test]
    fn put_get_replace_delete_lifecycle() {
        let store = KbStore::new();
        assert!(store.entry("fleet").is_none());

        let mut sig = Sig::new();
        let f = parse(&mut sig, "A & B").unwrap();
        assert_eq!(store.put("fleet", sig.clone(), f, None).unwrap().0, 1);
        assert_eq!(store.len(), 1);

        let entry = store.entry("fleet").unwrap();
        assert_eq!(entry.lock().unwrap().seq, 1);

        let f2 = parse(&mut sig, "A | B").unwrap();
        assert_eq!(store.put("fleet", sig, f2, None).unwrap().0, 2);
        // The handle observes the replacement: entries are shared state.
        assert_eq!(entry.lock().unwrap().seq, 2);

        assert!(store.delete("fleet", None).unwrap().is_some());
        assert!(store.delete("fleet", None).unwrap().is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn in_place_mutation_bumps_seq_through_the_entry() {
        let store = KbStore::new();
        let mut sig = Sig::new();
        let f = parse(&mut sig, "A").unwrap();
        store.put("k", sig.clone(), f, None).unwrap();
        {
            let entry = store.entry("k").unwrap();
            let mut kb = entry.lock().unwrap();
            kb.formula = parse(&mut kb.sig, "A & C").unwrap();
            kb.seq += 1;
        }
        let entry = store.entry("k").unwrap();
        let kb = entry.lock().unwrap();
        assert_eq!(kb.seq, 2);
        assert!(kb.sig.get("C").is_some());
    }

    #[test]
    fn if_seq_guards_put_and_delete() {
        let store = KbStore::new();
        let mut sig = Sig::new();
        let f = parse(&mut sig, "A").unwrap();

        // Creating with if_seq 0 means "only if absent".
        assert_eq!(
            store.put("k", sig.clone(), f.clone(), Some(0)).unwrap().0,
            1
        );
        match store.put("k", sig.clone(), f.clone(), Some(0)) {
            Err(CommitError::Conflict { current }) => assert_eq!(current, 1),
            other => panic!("expected conflict, got {other:?}"),
        }
        // A failed guarded create of a *new* name leaves no placeholder.
        match store.put("other", sig.clone(), f.clone(), Some(7)) {
            Err(CommitError::Conflict { current }) => assert_eq!(current, 0),
            other => panic!("expected conflict, got {other:?}"),
        }
        assert!(store.entry("other").is_none());

        // Matching guard commits; stale guard then conflicts with the
        // new current seq.
        assert_eq!(
            store.put("k", sig.clone(), f.clone(), Some(1)).unwrap().0,
            2
        );
        match store.delete("k", Some(1)) {
            Err(CommitError::Conflict { current }) => assert_eq!(current, 2),
            other => panic!("expected conflict, got {other:?}"),
        }
        assert!(store.delete("k", Some(2)).unwrap().is_some());
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn len_is_lock_free_and_tracks_mutations() {
        let store = KbStore::new();
        let mut sig = Sig::new();
        let f = parse(&mut sig, "A").unwrap();
        for i in 0..10 {
            store
                .put(&format!("kb-{i}"), sig.clone(), f.clone(), None)
                .unwrap();
        }
        assert_eq!(store.len(), 10);
        // Replacement does not change the count.
        store.put("kb-3", sig.clone(), f.clone(), None).unwrap();
        assert_eq!(store.len(), 10);
        store.delete("kb-3", None).unwrap();
        assert_eq!(store.len(), 9);
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("fleet-1_config"));
        assert!(valid_name("A"));
        assert!(!valid_name(""));
        assert!(!valid_name("has space"));
        assert!(!valid_name("sneaky/../path"));
        assert!(!valid_name(&"x".repeat(MAX_NAME_LEN + 1)));
    }
}
