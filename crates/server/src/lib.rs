//! # arbitrex-server
//!
//! A concurrent arbitration service over the operators of Revesz's
//! *Arbitration between Old and New Information* (PODS 1993): a zero-
//! dependency TCP server speaking minimal HTTP/1.1 + JSON, built from
//! four pieces:
//!
//! * **event loop + CPU worker pool** ([`server`], [`poller`]) — one
//!   readiness-driven I/O thread (raw `epoll` on Linux) multiplexes
//!   every connection, parses pipelined HTTP/1.1 requests, and hands
//!   them to `threads` CPU workers over a `queue_depth`-bounded queue;
//!   overflow answers `503` (with `Retry-After`) immediately from the
//!   I/O thread (backpressure, not buffering);
//! * **per-request deadlines** ([`routes`]) — each request builds a
//!   [`arbitrex_core::Budget`]; a slow query degrades to a typed
//!   `upper_bound`/`interrupted` response instead of stalling a worker;
//! * **canonicalizing result cache** ([`arbitrex_core::cache::OpCache`]) —
//!   results keyed by the canonical form of the query (NNF, sorted
//!   arguments, renaming-invariant variable order), so alpha-equivalent
//!   and syntactically shuffled resubmissions hit;
//! * **named KB store** ([`kb`]) — theories arbitrated in place
//!   (`ψ ← ψ Δ μ`) with a sequence number, the service form of iterated
//!   theory change.
//!
//! Endpoints: `POST /v1/arbitrate`, `POST /v1/fit`, `POST /v1/warbitrate`,
//! `GET|POST|DELETE /v1/kb/{name}`, and `GET /metrics` (the workspace
//! telemetry snapshot plus server counters and per-endpoint latency
//! histograms). The protocol table is in the workspace README
//! ("Serving"); counter definitions are in `OBSERVABILITY.md`.
//!
//! ```
//! use arbitrex_server::{spawn, ServerConfig};
//! use std::io::{Read, Write};
//!
//! let server = spawn(ServerConfig {
//!     addr: "127.0.0.1:0".to_string(),
//!     ..ServerConfig::default()
//! })
//! .unwrap();
//! let mut conn = std::net::TcpStream::connect(server.addr).unwrap();
//! let body = r#"{"psi": "A & B", "phi": "!A & !B"}"#;
//! write!(
//!     conn,
//!     "POST /v1/arbitrate HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
//!     body.len(),
//!     body
//! )
//! .unwrap();
//! let mut reply = String::new();
//! conn.read_to_string(&mut reply).unwrap();
//! assert!(reply.contains("\"quality\":\"exact\""));
//! server.stop().unwrap();
//! ```

#![warn(missing_docs)]

pub mod failover;
pub mod http;
pub mod json;
pub mod kb;
pub mod metrics;
pub mod poller;
pub mod recovery;
pub mod replication;
pub mod routes;
pub mod server;
pub mod shard;
pub mod snapshot;
pub mod wal;

use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::thread::JoinHandle;

use arbitrex_core::cache::OpCache;
use arbitrex_core::{CompiledTier, FaultPlan};
use kb::{DurabilityOptions, KbStore};
use recovery::{RecoverMode, RecoveryReport};

pub use server::{install_signal_shutdown, Server, ShutdownHandle};

/// Knobs for one server instance, mirroring the `arbx serve` flags.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7313`; port `0` picks a free port.
    pub addr: String,
    /// Worker threads handling connections.
    pub threads: usize,
    /// Bounded connection-queue depth; overflow is refused with 503.
    pub queue_depth: usize,
    /// Result-cache capacity in entries; 0 disables caching.
    pub cache_entries: usize,
    /// Default per-request deadline in milliseconds; 0 means none. A
    /// request's own `timeout_ms` field overrides this.
    pub timeout_ms: u64,
    /// Largest accepted request body; larger `Content-Length`s are
    /// refused with 413 before buffering.
    pub max_body_bytes: usize,
    /// State directory for the durable KB store (`wal.log` +
    /// `snapshot.bin`). `None` (the default) keeps KBs in memory only.
    pub state_dir: Option<PathBuf>,
    /// Snapshot after this many WAL records (0 disables periodic
    /// snapshots; one is still written on clean shutdown).
    pub snapshot_every: u64,
    /// What recovery does on damage beyond a torn tail.
    pub recover: RecoverMode,
    /// Deterministic durability fault injection (testing): arm the
    /// `wal_write`/`wal_fsync`/`snapshot_rename` sites.
    pub durability_fault: Option<FaultPlan>,
    /// Idle keep-alive connections are closed after this long with no
    /// traffic and nothing in flight; `0` keeps them forever.
    pub keep_alive_timeout_ms: u64,
    /// Batch WAL fsyncs: commits append immediately but ack only after
    /// a shared flush, so one fsync acknowledges every commit that
    /// arrived while the previous one ran. `false` restores the
    /// fsync-per-commit path.
    pub group_commit: bool,
    /// With group commit, how long the flusher may wait for more
    /// commits to join a batch before issuing the fsync. `0` flushes as
    /// soon as the flusher is free (natural batching only). This bounds
    /// the *extra* ack latency a commit can pay for batching.
    pub flush_interval_us: u64,
    /// Compile a KB's `ψ` to an ROBDD after this many queries against the
    /// same canonical form; later queries are answered by BDD traversal.
    /// `0` disables the compiled tier entirely.
    pub bdd_hotness: u32,
    /// Per-`ψ` BDD node budget: a compilation (or per-query `μ`
    /// traversal) exceeding it degrades to the kernel path instead.
    pub bdd_node_budget: usize,
    /// Replicate from this primary (`host:port`): the store opens
    /// read-only, a puller thread streams the primary's WAL, and writes
    /// are refused until `POST /v1/replication/promote`. Requires
    /// `state_dir`.
    pub replicate_from: Option<String>,
    /// Start the fencing epoch here instead of continuing from recovery
    /// (never below what recovery found). Mostly for tests and storm
    /// scripts.
    pub replication_epoch: Option<u64>,
    /// Deterministic network fault injection at the replication
    /// transport (testing): arm one `net_*` site.
    pub net_fault: Option<replication::NetFaultPlan>,
    /// Join a sharded cluster advertising this address as this node's
    /// ring identity (`host:port`, or [`shard::SELF_AUTO`] to advertise
    /// the actually bound address). `None` disables sharding.
    pub shard_ring: Option<String>,
    /// Virtual nodes per ring member.
    pub shard_vnodes: u32,
    /// Other members seeding the initial ring (all nodes started with
    /// the same set agree; later membership goes through
    /// `POST /v1/cluster/{join,leave}`).
    pub cluster_peers: Vec<String>,
    /// Deterministic fault injection at the sharding layer (testing):
    /// arm one `shard_*` site.
    pub shard_fault: Option<shard::ShardFaultPlan>,
    /// How often the failure detector probes its chain head, in
    /// milliseconds. `0` disables the detector (no probes, no automatic
    /// promotion) even when this node is a chain replica.
    pub probe_interval_ms: u64,
    /// Consecutive failed probes before a chain head is suspected dead
    /// and the quorum check runs.
    pub suspect_after: u32,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7313".to_string(),
            threads: 4,
            queue_depth: 64,
            cache_entries: 1024,
            timeout_ms: 0,
            max_body_bytes: http::MAX_BODY_BYTES,
            state_dir: None,
            snapshot_every: 256,
            recover: RecoverMode::Strict,
            durability_fault: None,
            keep_alive_timeout_ms: 5_000,
            group_commit: true,
            flush_interval_us: 0,
            bdd_hotness: CompiledTier::DEFAULT_HOTNESS,
            bdd_node_budget: CompiledTier::DEFAULT_NODE_BUDGET,
            replicate_from: None,
            replication_epoch: None,
            net_fault: None,
            shard_ring: None,
            shard_vnodes: shard::DEFAULT_VNODES,
            cluster_peers: Vec::new(),
            shard_fault: None,
            probe_interval_ms: 500,
            suspect_after: 3,
        }
    }
}

/// Everything the request handlers share: configuration, the
/// canonicalizing result cache, and the named KB store.
pub struct ServiceState {
    /// The configuration the server was built with.
    pub config: ServerConfig,
    /// Result cache keyed by canonical query form.
    pub cache: OpCache,
    /// Named knowledge bases.
    pub kbs: KbStore,
    /// The compiled-KB tier: hot `ψ` theories as ROBDDs.
    pub compiled: CompiledTier,
    /// What recovery found, when the store is durable.
    pub recovery: Option<RecoveryReport>,
    /// The shard router (ring + self identity), when sharding is on.
    pub shards: Option<shard::ShardRouter>,
    /// Failover bookkeeping: the supervised puller slot, deposed heads
    /// awaiting revival, and the detector stop flag.
    pub failover: failover::FailoverState,
}

impl ServiceState {
    /// Build state for `config`, recovering the state directory if one
    /// is configured. Recovery refusals (mid-log corruption in strict
    /// mode) surface here as errors — the server does not start.
    pub fn new(config: ServerConfig) -> io::Result<ServiceState> {
        let cache = OpCache::new(config.cache_entries);
        let (kbs, recovery) = match &config.state_dir {
            None => (KbStore::new(), None),
            Some(dir) => {
                let (store, report) = KbStore::open_durable(DurabilityOptions {
                    dir: dir.clone(),
                    snapshot_every: config.snapshot_every,
                    recover: config.recover,
                    fault: config.durability_fault,
                    group_commit: config.group_commit,
                    flush_interval: std::time::Duration::from_micros(config.flush_interval_us),
                    initial_epoch: config.replication_epoch,
                    replica: config.replicate_from.is_some(),
                })
                .map_err(|e| io::Error::other(e.to_string()))?;
                (store, Some(report))
            }
        };
        if config.replicate_from.is_some() && config.state_dir.is_none() {
            return Err(io::Error::other(
                "--replicate-from requires --state-dir (a replica's store must be durable)",
            ));
        }
        if config.shard_ring.is_none() && !config.cluster_peers.is_empty() {
            return Err(io::Error::other(
                "--cluster-peers requires --shard-ring (this node needs a ring identity)",
            ));
        }
        if config.shard_ring.is_some() && config.threads < 2 {
            return Err(io::Error::other(
                "--shard-ring requires at least 2 worker threads (a member answers peer \
                 pulls while its own membership handler blocks); raise --threads",
            ));
        }
        let shards = config.shard_ring.clone().map(|self_spec| {
            shard::ShardRouter::new(self_spec, &config.cluster_peers, config.shard_vnodes)
        });
        // Combining `--replicate-from` with a fully-specified ring is
        // how a chain replica boots — but only when the primary it
        // names is actually a serving chain member. (With no
        // `--cluster-peers` the solo ring can't know its peers yet, so
        // an outside primary is the legitimate bootstrap posture.)
        if let (Some(router), Some(primary)) = (&shards, &config.replicate_from) {
            if !config.cluster_peers.is_empty() && !router.ring().contains(primary) {
                return Err(io::Error::other(format!(
                    "--replicate-from {primary} names a node outside the ring; a chain \
                     replica must pull from a serving chain member (list it in a chain \
                     spec, or drop --cluster-peers while bootstrapping)"
                )));
            }
        }
        let compiled = CompiledTier::new(
            config.bdd_hotness,
            config.bdd_node_budget,
            CompiledTier::DEFAULT_CAPACITY,
        );
        Ok(ServiceState {
            config,
            cache,
            kbs,
            compiled,
            recovery,
            shards,
            failover: failover::FailoverState::new(),
        })
    }
}

/// A server running on a background thread (tests, benches, and the CLI's
/// foreground runner all build on this).
pub struct RunningServer {
    /// The bound address (with port 0 resolved).
    pub addr: SocketAddr,
    state: std::sync::Arc<ServiceState>,
    shutdown: ShutdownHandle,
    join: JoinHandle<io::Result<()>>,
}

impl RunningServer {
    /// A handle that stops this server.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// The shared service state (cache, KB store, recovery report).
    pub fn state(&self) -> std::sync::Arc<ServiceState> {
        std::sync::Arc::clone(&self.state)
    }

    /// Request shutdown and wait for the drain to finish.
    pub fn stop(self) -> io::Result<()> {
        self.shutdown.shutdown();
        match self.join.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server thread panicked")),
        }
    }
}

/// Bind and run `config` on a background thread.
pub fn spawn(config: ServerConfig) -> io::Result<RunningServer> {
    let server = Server::bind(config)?;
    let addr = server.local_addr()?;
    let state = server.state();
    let shutdown = server.shutdown_handle();
    let join = std::thread::Builder::new()
        .name("arbitrex-acceptor".to_string())
        .spawn(move || server.run())?;
    Ok(RunningServer {
        addr,
        state,
        shutdown,
        join,
    })
}
