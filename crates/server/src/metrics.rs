//! Server-side counters and per-endpoint latency histograms.
//!
//! These join the workspace's existing sections (`kernel`, `weighted`,
//! `budget`, `cache`, `sat`) in the `/metrics` snapshot as section
//! `"server"`. Like every other counter they compile to no-ops when the
//! `telemetry` feature is off; the endpoint then reports zeros. Counter
//! definitions live in `OBSERVABILITY.md` at the workspace root.

use arbitrex_telemetry::{Counter, Histogram, Section};

/// Connections accepted by the listener.
pub static ACCEPTED: Counter = Counter::new("accepted");
/// Connections handed to the worker queue.
pub static QUEUED: Counter = Counter::new("queued");
/// Connections refused with 503 because the queue was full.
pub static REJECTED: Counter = Counter::new("rejected");
/// HTTP requests parsed off accepted connections.
pub static REQUESTS: Counter = Counter::new("requests");
/// Responses in the 2xx range.
pub static RESPONSES_OK: Counter = Counter::new("responses_ok");
/// Responses in the 4xx range (malformed bodies, unknown routes, …).
pub static RESPONSES_CLIENT_ERROR: Counter = Counter::new("responses_client_error");
/// Responses in the 5xx range (including backpressure 503s).
pub static RESPONSES_SERVER_ERROR: Counter = Counter::new("responses_server_error");
/// Operator responses whose budget tripped (quality below exact).
pub static DEGRADED: Counter = Counter::new("degraded");

/// The `"server"` section.
pub static SERVER_SECTION: Section = Section {
    name: "server",
    counters: &[
        &ACCEPTED,
        &QUEUED,
        &REJECTED,
        &REQUESTS,
        &RESPONSES_OK,
        &RESPONSES_CLIENT_ERROR,
        &RESPONSES_SERVER_ERROR,
        &DEGRADED,
    ],
    timers: &[],
};

/// Readiness events delivered to connection tokens by the poller.
pub static EL_READY_EVENTS: Counter = Counter::new("ready_events");
/// Completion-waker wakeups received by the event loop.
pub static EL_WAKEUPS: Counter = Counter::new("wakeups");
/// Requests parsed while the connection already had one in flight —
/// divide by `accepted` for pipelined requests per connection.
pub static EL_PIPELINED: Counter = Counter::new("pipelined_requests");
/// Times a connection hit [`crate::server::MAX_PIPELINE_DEPTH`] and its
/// socket reads were paused (TCP backpressure engaged).
pub static EL_READ_PAUSES: Counter = Counter::new("read_pauses");
/// Idle keep-alive connections closed by `keep_alive_timeout_ms`.
pub static EL_KEEPALIVE_REAPED: Counter = Counter::new("keep_alive_reaped");

/// The `"event_loop"` section.
pub static EVENT_LOOP_SECTION: Section = Section {
    name: "event_loop",
    counters: &[
        &EL_READY_EVENTS,
        &EL_WAKEUPS,
        &EL_PIPELINED,
        &EL_READ_PAUSES,
        &EL_KEEPALIVE_REAPED,
    ],
    timers: &[],
};

/// Commits acknowledged through the group-commit flusher.
pub static GC_COMMITS: Counter = Counter::new("commits");
/// Shared fsyncs issued by the flusher — `commits / fsyncs` is the
/// achieved batch size (commits per fsync).
pub static GC_FSYNCS: Counter = Counter::new("fsyncs");
/// Shared flushes that failed; every commit waiting on one is refused.
pub static GC_FLUSH_FAILURES: Counter = Counter::new("flush_failures");
/// Commits made durable by a snapshot landing before their fsync did.
pub static GC_SNAPSHOT_ACKS: Counter = Counter::new("snapshot_acks");

/// The `"group_commit"` section.
pub static GROUP_COMMIT_SECTION: Section = Section {
    name: "group_commit",
    counters: &[
        &GC_COMMITS,
        &GC_FSYNCS,
        &GC_FLUSH_FAILURES,
        &GC_SNAPSHOT_ACKS,
    ],
    timers: &[],
};

/// WAL records appended (each one a durable, acknowledged KB mutation).
pub static WAL_RECORDS_APPENDED: Counter = Counter::new("records_appended");
/// Framed bytes appended to the WAL.
pub static WAL_BYTES_APPENDED: Counter = Counter::new("bytes_appended");
/// WAL fsyncs issued (one per commit with group commit off; shared
/// across a batch with it on).
pub static WAL_FSYNCS: Counter = Counter::new("fsyncs");
/// Snapshots made durable (temp write + fsync + rename + dir fsync).
pub static WAL_SNAPSHOTS_WRITTEN: Counter = Counter::new("snapshots_written");
/// Periodic snapshots that failed (commits stay safe in the WAL;
/// truncation is postponed).
pub static WAL_SNAPSHOT_ERRORS: Counter = Counter::new("snapshot_errors");
/// Startup recoveries performed (one per durable open).
pub static WAL_REPLAYS: Counter = Counter::new("replays");
/// WAL records replayed during recovery.
pub static WAL_RECORDS_REPLAYED: Counter = Counter::new("records_replayed");
/// Torn final records truncated away during recovery (unacknowledged by
/// construction, so nothing durable was lost).
pub static WAL_TORN_TAIL_TRUNCATIONS: Counter = Counter::new("torn_tail_truncations");
/// Damaged regions dropped by `--recover=salvage` (corrupt mid-log
/// spans or a corrupt snapshot).
pub static WAL_SALVAGE_DROPS: Counter = Counter::new("salvage_drops");

/// The `"wal"` section: durability counters.
pub static WAL_SECTION: Section = Section {
    name: "wal",
    counters: &[
        &WAL_RECORDS_APPENDED,
        &WAL_BYTES_APPENDED,
        &WAL_FSYNCS,
        &WAL_SNAPSHOTS_WRITTEN,
        &WAL_SNAPSHOT_ERRORS,
        &WAL_REPLAYS,
        &WAL_RECORDS_REPLAYED,
        &WAL_TORN_TAIL_TRUNCATIONS,
        &WAL_SALVAGE_DROPS,
    ],
    timers: &[],
};

/// WAL frames shipped to replicas over `/v1/replication/wal`.
pub static REPL_FRAMES_SHIPPED: Counter = Counter::new("frames_shipped");
/// Batch responses served to replicas (including empty long-poll ones).
pub static REPL_BATCHES_SERVED: Counter = Counter::new("batches_served");
/// Streamed frames applied by this replica.
pub static REPL_FRAMES_APPLIED: Counter = Counter::new("frames_applied");
/// Duplicate frame deliveries skipped by the apply path.
pub static REPL_DUP_FRAMES_SKIPPED: Counter = Counter::new("dup_frames_skipped");
/// Frames or peers refused for carrying a deposed fencing epoch.
pub static REPL_EPOCH_REJECTIONS: Counter = Counter::new("epoch_rejections");
/// Streamed frames that failed CRC/decode verification on the replica.
pub static REPL_BAD_FRAMES: Counter = Counter::new("bad_frames");
/// Connections (re)established by the puller to its primary.
pub static REPL_RECONNECTS: Counter = Counter::new("reconnects");
/// Backoff sleeps taken by the puller between connection attempts.
pub static REPL_BACKOFF_SLEEPS: Counter = Counter::new("backoff_sleeps");
/// Full snapshot resyncs performed by this replica.
pub static REPL_RESYNCS: Counter = Counter::new("resyncs");
/// Promotions of this store to primary.
pub static REPL_PROMOTIONS: Counter = Counter::new("promotions");
/// Divergent KBs merged by `Δ` arbitration during anti-entropy.
pub static REPL_RECONCILIATIONS: Counter = Counter::new("reconciliations");
/// Injected `net_*` faults that fired at the replication transport.
pub static REPL_NET_FAULTS: Counter = Counter::new("net_faults");

/// The `"replication"` section.
pub static REPLICATION_SECTION: Section = Section {
    name: "replication",
    counters: &[
        &REPL_FRAMES_SHIPPED,
        &REPL_BATCHES_SERVED,
        &REPL_FRAMES_APPLIED,
        &REPL_DUP_FRAMES_SKIPPED,
        &REPL_EPOCH_REJECTIONS,
        &REPL_BAD_FRAMES,
        &REPL_RECONNECTS,
        &REPL_BACKOFF_SLEEPS,
        &REPL_RESYNCS,
        &REPL_PROMOTIONS,
        &REPL_RECONCILIATIONS,
        &REPL_NET_FAULTS,
    ],
    timers: &[],
};

/// Mutations answered `307 + X-Arbitrex-Shard-Owner` because another
/// member owns the KB.
pub static SHARD_REDIRECTS: Counter = Counter::new("redirects");
/// Reads proxied to the owning member on the caller's behalf.
pub static SHARD_PROXIED_READS: Counter = Counter::new("proxied_reads");
/// Proxied reads that failed (owner unreachable or an injected
/// `shard_proxy_drop`), answered 502.
pub static SHARD_PROXY_FAILURES: Counter = Counter::new("proxy_failures");
/// Requests refused 421 for routing against a stale ring epoch
/// (including injected `shard_ring_stale` charges).
pub static SHARD_STALE_RING_REFUSALS: Counter = Counter::new("stale_ring_refusals");
/// Ring versions installed here (local join/leave or an adopted sync).
pub static SHARD_RING_CHANGES: Counter = Counter::new("ring_changes");
/// KBs pulled to this node by the rebalancer (it became their owner).
pub static SHARD_KBS_MIGRATED: Counter = Counter::new("kbs_migrated");
/// Old-owner copies released after a verified handoff (counted by the
/// releasing side).
pub static SHARD_RELEASES: Counter = Counter::new("releases");
/// Writes refused 503 because their KB was mid-handoff (owner differs
/// between the current ring and an in-flight transition ring).
pub static SHARD_WRITES_FENCED: Counter = Counter::new("writes_fenced");
/// Handoffs torn between transfer and release — both copies survive
/// until a later pass or a `Δ` reconcile converges them.
pub static SHARD_HANDOFFS_TORN: Counter = Counter::new("handoffs_torn");
/// Injected `shard_*` faults that fired.
pub static SHARD_FAULTS: Counter = Counter::new("shard_faults");

/// The `"sharding"` section.
pub static SHARDING_SECTION: Section = Section {
    name: "sharding",
    counters: &[
        &SHARD_REDIRECTS,
        &SHARD_PROXIED_READS,
        &SHARD_PROXY_FAILURES,
        &SHARD_STALE_RING_REFUSALS,
        &SHARD_RING_CHANGES,
        &SHARD_KBS_MIGRATED,
        &SHARD_RELEASES,
        &SHARD_WRITES_FENCED,
        &SHARD_HANDOFFS_TORN,
        &SHARD_FAULTS,
    ],
    timers: &[],
};

/// Failure-detector probes sent at chain heads.
pub static FAILOVER_PROBES: Counter = Counter::new("probes");
/// Probes that failed (unreachable head or a refused status request).
pub static FAILOVER_PROBE_FAILURES: Counter = Counter::new("probe_failures");
/// Heads this node suspected dead (consecutive probe failures reached
/// the `--suspect-after` threshold).
pub static FAILOVER_SUSPICIONS: Counter = Counter::new("suspicions");
/// Suspicions vetoed by quorum — some peer could still reach the head,
/// so a partitioned successor stayed fenced instead of splitting the
/// brain.
pub static FAILOVER_QUORUM_VETOES: Counter = Counter::new("quorum_vetoes");
/// Automatic self-promotions performed by a chain successor after a
/// quorum-confirmed head death (manual `/v1/replication/promote` calls
/// count under `replication.promotions` only).
pub static FAILOVER_AUTO_PROMOTIONS: Counter = Counter::new("auto_promotions");
/// Chain rotations recorded in the ring (head dropped, successor
/// promoted, chain epoch bumped).
pub static FAILOVER_CHAIN_ROTATIONS: Counter = Counter::new("chain_rotations");
/// Nodes that stepped down to replica because an adopted ring listed
/// them behind a newer chain head (a deposed head fenced at routing).
pub static FAILOVER_DEMOTIONS: Counter = Counter::new("demotions");
/// Writes refused with a typed 503 because this node's WAL epoch trails
/// its chain's recorded epoch — a deposed head that has not yet caught
/// up with its own deposition.
pub static FAILOVER_FENCED_WRITES: Counter = Counter::new("fenced_writes");
/// Δ-arbitration reconciles run against a revived deposed head to
/// absorb commits it acked but never shipped.
pub static FAILOVER_RECONCILES: Counter = Counter::new("failover_reconciles");
/// Proxied-read retry attempts taken by the backoff loop (each retry
/// after the first attempt counts once).
pub static FAILOVER_PROXY_RETRIES: Counter = Counter::new("proxy_retries");

/// The `"failover"` section: per-shard replica chains.
pub static FAILOVER_SECTION: Section = Section {
    name: "failover",
    counters: &[
        &FAILOVER_PROBES,
        &FAILOVER_PROBE_FAILURES,
        &FAILOVER_SUSPICIONS,
        &FAILOVER_QUORUM_VETOES,
        &FAILOVER_AUTO_PROMOTIONS,
        &FAILOVER_CHAIN_ROTATIONS,
        &FAILOVER_DEMOTIONS,
        &FAILOVER_FENCED_WRITES,
        &FAILOVER_RECONCILES,
        &FAILOVER_PROXY_RETRIES,
    ],
    timers: &[],
};

/// Wall-clock handling latency of `/v1/arbitrate` requests.
pub static LATENCY_ARBITRATE: Histogram = Histogram::new("arbitrate");
/// Wall-clock handling latency of `/v1/fit` requests.
pub static LATENCY_FIT: Histogram = Histogram::new("fit");
/// Wall-clock handling latency of `/v1/warbitrate` requests.
pub static LATENCY_WARBITRATE: Histogram = Histogram::new("warbitrate");
/// Wall-clock handling latency of `/v1/kb/{name}` requests.
pub static LATENCY_KB: Histogram = Histogram::new("kb");
/// Wall-clock handling latency of `/metrics` requests.
pub static LATENCY_METRICS: Histogram = Histogram::new("metrics");
/// Latency of each WAL fsync — the per-commit durability price, and the
/// first place storage trouble shows up.
pub static LATENCY_WAL_FSYNC: Histogram = Histogram::new("wal_fsync");
/// Time a commit spends waiting on the shared group-commit flush
/// (append → ack). Bounded by one fsync plus `flush_interval_us`.
pub static LATENCY_FLUSH_WAIT: Histogram = Histogram::new("flush_wait");
/// Latency of each ψ → ROBDD compilation in the compiled-KB tier
/// (hotness promotions and commit-time recompiles alike) — the
/// amortized cost a KB pays to move onto the BDD fast path.
pub static LATENCY_BDD_COMPILE: Histogram = Histogram::new("bdd_compile");
/// Wall-clock handling latency of `/v1/replication/*` requests on the
/// serving (primary) side.
pub static LATENCY_REPL: Histogram = Histogram::new("repl");
/// Per-frame apply latency on the replica (decode + append + publish).
pub static LATENCY_REPL_APPLY: Histogram = Histogram::new("repl_apply");
/// Wall-clock handling latency of `/v1/cluster/*` and `/v1/kbs`
/// requests (membership, handoff, and listing — join/sync include the
/// synchronous rebalance they trigger).
pub static LATENCY_CLUSTER: Histogram = Histogram::new("cluster");

/// Every histogram, in protocol-table order (endpoints, then durability,
/// then the compiled tier, then replication, then sharding).
pub fn histograms() -> [&'static Histogram; 11] {
    [
        &LATENCY_ARBITRATE,
        &LATENCY_FIT,
        &LATENCY_WARBITRATE,
        &LATENCY_KB,
        &LATENCY_METRICS,
        &LATENCY_WAL_FSYNC,
        &LATENCY_FLUSH_WAIT,
        &LATENCY_BDD_COMPILE,
        &LATENCY_REPL,
        &LATENCY_REPL_APPLY,
        &LATENCY_CLUSTER,
    ]
}

/// Count `status` into the right response-class counter.
pub fn record_response(status: u16) {
    match status {
        200..=299 => RESPONSES_OK.incr(),
        400..=499 => RESPONSES_CLIENT_ERROR.incr(),
        _ => RESPONSES_SERVER_ERROR.incr(),
    }
}

/// The full `/metrics` document: the workspace telemetry snapshot
/// (including this crate's `"server"` section) plus per-endpoint latency
/// histograms.
pub fn metrics_json() -> String {
    let mut sections: Vec<&'static Section> = arbitrex_core::telemetry::sections().to_vec();
    sections.push(&SERVER_SECTION);
    sections.push(&EVENT_LOOP_SECTION);
    sections.push(&WAL_SECTION);
    sections.push(&GROUP_COMMIT_SECTION);
    sections.push(&REPLICATION_SECTION);
    sections.push(&SHARDING_SECTION);
    sections.push(&FAILOVER_SECTION);
    let snapshot = arbitrex_telemetry::snapshot_of(&sections);
    let mut out = String::with_capacity(2048);
    out.push_str("{\"telemetry\": ");
    out.push_str(&snapshot.to_json());
    out.push_str(", \"latency_ns\": {");
    for (i, h) in histograms().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        out.push_str(h.name());
        out.push_str("\": ");
        out.push_str(&h.snapshot().to_json());
    }
    out.push_str("}}");
    out
}

/// Reset the server counters and histograms (test isolation).
pub fn reset() {
    SERVER_SECTION.reset();
    EVENT_LOOP_SECTION.reset();
    WAL_SECTION.reset();
    GROUP_COMMIT_SECTION.reset();
    REPLICATION_SECTION.reset();
    SHARDING_SECTION.reset();
    FAILOVER_SECTION.reset();
    for h in histograms() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_json_contains_every_section_and_histogram() {
        let text = metrics_json();
        for section in [
            "kernel",
            "weighted",
            "budget",
            "cache",
            "bdd",
            "sat",
            "server",
            "event_loop",
            "wal",
            "group_commit",
            "replication",
            "sharding",
            "failover",
        ] {
            assert!(
                text.contains(&format!("\"{section}\"")),
                "missing {section}"
            );
        }
        for h in [
            "arbitrate",
            "fit",
            "warbitrate",
            "kb",
            "metrics",
            "wal_fsync",
            "flush_wait",
            "bdd_compile",
            "repl",
            "repl_apply",
            "cluster",
        ] {
            assert!(text.contains(&format!("\"{h}\"")), "missing histogram {h}");
        }
        assert!(text.contains("\"accepted\""));
        assert!(text.contains("\"rejected\""));
    }

    #[test]
    fn response_classes_split_by_status() {
        reset();
        record_response(200);
        record_response(201);
        record_response(404);
        record_response(503);
        if arbitrex_telemetry::enabled() {
            assert_eq!(RESPONSES_OK.get(), 2);
            assert_eq!(RESPONSES_CLIENT_ERROR.get(), 1);
            assert_eq!(RESPONSES_SERVER_ERROR.get(), 1);
        }
        reset();
    }
}
