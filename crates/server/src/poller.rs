//! Readiness polling: a thin, zero-dependency wrapper over `epoll(7)`
//! on Linux and `poll(2)` on other Unix, plus a cross-thread [`Waker`].
//!
//! The event loop registers every socket once with an explicit
//! [`Interest`] and updates it only on transitions (output buffered →
//! want writable; pipeline cap reached → stop wanting readable). Both
//! backends are level-triggered, which is why interest management is
//! explicit: a level-triggered fd with a full output buffer would spin
//! the loop if writable interest were left armed while there is nothing
//! to write, and a paused connection would spin on readable. Handlers
//! therefore always read/write to `WouldBlock`, and the loop clears the
//! corresponding interest the moment it stops consuming a readiness
//! state.
//!
//! Only the syscalls themselves are raw `extern "C"` bindings (matching
//! the repo's `signal(2)` idiom in `server.rs`); sockets stay ordinary
//! `std::net` types and the waker is a nonblocking `UnixStream` pair,
//! so no descriptor lifetime management leaves the standard library
//! except the epoll instance itself.

#![allow(unsafe_code)]

use std::io;
#[cfg(unix)]
use std::os::fd::RawFd;

/// Which readiness states a registration cares about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes (or EOF) to read.
    pub readable: bool,
    /// Wake when the fd can accept writes.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: usize,
    /// Bytes (or EOF) are available to read.
    pub readable: bool,
    /// The fd can accept writes.
    pub writable: bool,
    /// The peer hung up or the fd errored; the connection is done for
    /// regardless of interest.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
pub use linux::Poller;
#[cfg(all(unix, not(target_os = "linux")))]
pub use posix::Poller;

#[cfg(target_os = "linux")]
mod linux {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;

    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0x80000;

    // The kernel ABI packs this struct on x86-64 (and only there).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        // EPOLLRDHUP rides with readable interest only: a half-closed
        // peer is a persistent level-triggered condition, so arming it
        // while reads are paused would spin the loop.
        let mut m = 0;
        if interest.readable {
            m |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    /// An `epoll(7)` instance.
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Create the epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd })
        }

        /// Register `fd` under `token` with the given interest.
        pub fn add(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(|_| ())
        }

        /// Change the interest of an already registered `fd`.
        pub fn modify(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(|_| ())
        }

        /// Remove `fd` from the set. Dropping the fd also removes it;
        /// this exists for connections that close while their token is
        /// being recycled.
        pub fn remove(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        /// Wait up to `timeout_ms` (-1 blocks) and append readiness
        /// events to `out`. Returns the number of events delivered.
        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            const CAPACITY: usize = 1024;
            let mut raw = [EpollEvent { events: 0, data: 0 }; CAPACITY];
            // EINTR yields an empty batch so the caller re-checks
            // shutdown before waiting again.
            let n = match cvt(unsafe {
                epoll_wait(self.epfd, raw.as_mut_ptr(), CAPACITY as i32, timeout_ms)
            }) {
                Ok(n) => n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            for ev in &raw[..n] {
                // Copy out of the (possibly packed) struct first.
                let events = ev.events;
                let data = ev.data;
                out.push(Event {
                    token: data as usize,
                    readable: events & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod posix {
    use super::{Event, Interest};
    use std::cell::RefCell;
    use std::io;
    use std::os::fd::RawFd;

    const POLLIN: i16 = 0x1;
    const POLLOUT: i16 = 0x4;
    const POLLERR: i16 = 0x8;
    const POLLHUP: i16 = 0x10;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
    }

    /// A `poll(2)`-backed fallback with the same surface as the epoll
    /// poller. O(registered fds) per wait — fine for the fallback tier.
    pub struct Poller {
        entries: RefCell<Vec<(RawFd, usize, Interest)>>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                entries: RefCell::new(Vec::new()),
            })
        }

        pub fn add(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.entries.borrow_mut().push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut entries = self.entries.borrow_mut();
            match entries.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(entry) => {
                    *entry = (fd, token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn remove(&self, fd: RawFd) -> io::Result<()> {
            self.entries.borrow_mut().retain(|(f, _, _)| *f != fd);
            Ok(())
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            let entries = self.entries.borrow().clone();
            let mut fds: Vec<PollFd> = entries
                .iter()
                .map(|(fd, _, interest)| PollFd {
                    fd: *fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            let mut delivered = 0usize;
            for (slot, (_, token, _)) in fds.iter().zip(entries.iter()) {
                if slot.revents == 0 {
                    continue;
                }
                delivered += 1;
                out.push(Event {
                    token: *token,
                    readable: slot.revents & (POLLIN | POLLHUP) != 0,
                    writable: slot.revents & POLLOUT != 0,
                    hangup: slot.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(delivered)
        }
    }
}

/// Wakes a [`Poller::wait`] from another thread: a nonblocking
/// `UnixStream` pair whose read end sits in the poll set. `wake` writes
/// one byte (a full pipe means a wake is already pending — that is
/// success); the loop `drain`s on delivery so the next wake edges again.
#[cfg(unix)]
pub struct Waker {
    read_half: std::os::unix::net::UnixStream,
    write_half: std::os::unix::net::UnixStream,
}

#[cfg(unix)]
impl Waker {
    /// Build the pair; both halves nonblocking.
    pub fn new() -> io::Result<Waker> {
        let (read_half, write_half) = std::os::unix::net::UnixStream::pair()?;
        read_half.set_nonblocking(true)?;
        write_half.set_nonblocking(true)?;
        Ok(Waker {
            read_half,
            write_half,
        })
    }

    /// The fd to register (readable interest) in the poll set.
    pub fn fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        self.read_half.as_raw_fd()
    }

    /// Signal the loop. Callable from any thread; never blocks.
    pub fn wake(&self) {
        use std::io::Write;
        match (&self.write_half).write(&[1u8]) {
            Ok(_) => {}
            // Buffer full: a wake is already pending, nothing to do.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(_) => {}
        }
    }

    /// Consume pending wake bytes so the fd goes quiet again.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 256];
        while let Ok(n) = (&self.read_half).read(&mut buf) {
            if n == 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn reports_readable_when_bytes_arrive() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing pending yet.
        poller.wait(&mut events, 0).unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        events.clear();
        let mut seen = false;
        for _ in 0..100 {
            poller.wait(&mut events, 100).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                seen = true;
                break;
            }
        }
        assert!(seen, "readable event never delivered");
        let mut buf = [0u8; 8];
        let n = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
    }

    #[test]
    fn writable_interest_is_togglable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 3, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(!events.iter().any(|e| e.token == 3 && e.writable));

        // An idle socket is immediately writable once we ask.
        poller
            .modify(
                server.as_raw_fd(),
                3,
                Interest {
                    readable: true,
                    writable: true,
                },
            )
            .unwrap();
        events.clear();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));
    }

    #[test]
    fn waker_wakes_and_drains() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.fd(), 99, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());

        waker.wake();
        waker.wake(); // coalesces
        events.clear();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 99 && e.readable));

        waker.drain();
        events.clear();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "drained waker should be quiet");
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 5, Interest::READ).unwrap();
        drop(client);

        let mut events = Vec::new();
        let mut hung = false;
        for _ in 0..100 {
            poller.wait(&mut events, 100).unwrap();
            if events
                .iter()
                .any(|e| e.token == 5 && (e.hangup || e.readable))
            {
                hung = true;
                break;
            }
        }
        assert!(hung, "peer close never surfaced");
    }
}
