//! Startup recovery: rebuild the KB store from snapshot + WAL.
//!
//! The recovered state is `fold(apply, snapshot, wal_records)` — the
//! snapshot is the materialized prefix of the log, the log holds
//! everything committed since. The scan verdict from [`crate::wal::scan`]
//! decides what a bad frame means:
//!
//! * **torn tail** — the final frame is incomplete or fails its CRC with
//!   nothing after it. That is the signature of a crash mid-append: the
//!   record was *never acknowledged* (acks happen after fsync), so it is
//!   safe to drop. Recovery truncates the file at the bad frame and
//!   starts.
//! * **mid-log corruption** — a bad frame with more log after it means
//!   acknowledged history is damaged. In [`RecoverMode::Strict`] (the
//!   default) the server refuses to start rather than silently serve a
//!   state missing acknowledged commits. `--recover=salvage` keeps the
//!   verified prefix, truncates the rest, and counts what was dropped.
//!
//! A corrupt snapshot likewise refuses in strict mode; salvage drops it
//! and replays the WAL alone (whatever the log still proves). After
//! recovery the in-memory `seq` of every KB equals the on-disk one by
//! construction — replay *is* the on-disk state.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io;
use std::path::Path;

use crate::kb::StoredKb;
use crate::metrics;
use crate::snapshot;
use crate::wal::{self, ScanTail, WalRecord, WAL_FILE};

/// What to do when recovery meets damage beyond a torn tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoverMode {
    /// Refuse to start on mid-log or snapshot corruption (default).
    #[default]
    Strict,
    /// Keep the verified prefix, drop the damage, count what was lost.
    Salvage,
}

impl RecoverMode {
    /// Stable flag-value name (`--recover=strict|salvage`).
    pub fn name(self) -> &'static str {
        match self {
            RecoverMode::Strict => "strict",
            RecoverMode::Salvage => "salvage",
        }
    }

    /// Parse a `--recover` flag value.
    pub fn parse(text: &str) -> Option<RecoverMode> {
        match text {
            "strict" => Some(RecoverMode::Strict),
            "salvage" => Some(RecoverMode::Salvage),
            _ => None,
        }
    }
}

/// Why recovery refused to start.
#[derive(Debug)]
pub enum RecoveryError {
    /// An I/O error reading or repairing the state directory.
    Io(io::Error),
    /// Mid-log corruption in strict mode.
    CorruptWal {
        /// Byte offset of the first bad frame.
        offset: u64,
        /// What was wrong with it.
        what: String,
    },
    /// A corrupt snapshot in strict mode.
    CorruptSnapshot(String),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "recovery I/O error: {e}"),
            RecoveryError::CorruptWal { offset, what } => write!(
                f,
                "WAL corrupt at byte {offset} ({what}); refusing to start — \
                 acknowledged commits may be damaged. Pass --recover=salvage \
                 to keep the verified prefix and drop the rest"
            ),
            RecoveryError::CorruptSnapshot(what) => write!(
                f,
                "{what}; refusing to start. Pass --recover=salvage to drop \
                 the snapshot and replay the WAL alone"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<io::Error> for RecoveryError {
    fn from(e: io::Error) -> RecoveryError {
        RecoveryError::Io(e)
    }
}

/// What recovery found and did; surfaced by the CLI on startup and
/// asserted by the durability tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// KBs in the recovered state.
    pub kbs: usize,
    /// Was a snapshot loaded?
    pub snapshot_loaded: bool,
    /// WAL records replayed on top of the snapshot.
    pub wal_records_replayed: u64,
    /// Was a torn final record truncated away?
    pub torn_tail_truncated: bool,
    /// Bytes dropped by salvage (0 outside salvage mode).
    pub salvaged_bytes_dropped: u64,
    /// Did salvage drop a corrupt snapshot?
    pub snapshot_dropped: bool,
    /// The largest sequence number in the recovered state.
    pub max_seq: u64,
    /// When a torn or corrupt tail was truncated: the byte offset the
    /// file was cut back to (= the offset of the first bad frame).
    /// Post-crash forensics starts here, not at a guess.
    pub truncated_offset: Option<u64>,
    /// When a tail was truncated: the 0-based index of the first bad
    /// frame — equivalently, how many verified frames precede the cut.
    pub truncated_frame_index: Option<u64>,
    /// Highest fencing epoch in the recovered state (snapshot watermark
    /// or replayed frames; 0 for a fresh directory).
    pub max_epoch: u64,
    /// Highest global replication sequence number recovered. Appends
    /// resume stamping at `max_rseq + 1`.
    pub max_rseq: u64,
}

/// Apply one verified record to the recovered state.
fn apply(state: &mut HashMap<String, StoredKb>, rec: WalRecord) {
    match rec {
        WalRecord::Commit { name, kb } => {
            state.insert(name, kb);
        }
        WalRecord::Delete { name } => {
            state.remove(&name);
        }
    }
}

/// Recover the state directory `dir`: load the snapshot, replay the WAL,
/// repair a torn tail, and (in salvage mode only) drop damage. On
/// success the WAL file on disk contains exactly the replayed records —
/// appending may resume at its end.
pub fn recover(
    dir: &Path,
    mode: RecoverMode,
) -> Result<(HashMap<String, StoredKb>, RecoveryReport), RecoveryError> {
    std::fs::create_dir_all(dir)?;
    let mut report = RecoveryReport::default();

    // Debris of a crash mid-snapshot (or an injected rename fault): the
    // temp name is never state, remove it unconditionally.
    snapshot::remove_stale_tmp(dir)?;

    let mut state = match snapshot::read_snapshot(dir)? {
        Ok(Some(contents)) => {
            report.snapshot_loaded = true;
            report.max_epoch = contents.epoch;
            report.max_rseq = contents.rseq;
            contents.entries
        }
        Ok(None) => HashMap::new(),
        Err(corrupt) => match mode {
            RecoverMode::Strict => return Err(RecoveryError::CorruptSnapshot(corrupt.to_string())),
            RecoverMode::Salvage => {
                report.snapshot_dropped = true;
                metrics::WAL_SALVAGE_DROPS.incr();
                HashMap::new()
            }
        },
    };

    let wal_path = dir.join(WAL_FILE);
    if let Some(scan) = wal::scan(&wal_path)? {
        let truncate_at = match scan.tail {
            ScanTail::Clean => None,
            ScanTail::Torn { offset } => {
                report.torn_tail_truncated = true;
                metrics::WAL_TORN_TAIL_TRUNCATIONS.incr();
                Some(offset)
            }
            ScanTail::Corrupt { offset, what } => match mode {
                RecoverMode::Strict => return Err(RecoveryError::CorruptWal { offset, what }),
                RecoverMode::Salvage => {
                    report.salvaged_bytes_dropped = scan.file_len - offset;
                    metrics::WAL_SALVAGE_DROPS.incr();
                    Some(offset)
                }
            },
        };
        if let Some(offset) = truncate_at {
            report.truncated_offset = Some(offset);
            report.truncated_frame_index = Some(scan.records.len() as u64);
        }
        report.wal_records_replayed = scan.records.len() as u64;
        metrics::WAL_RECORDS_REPLAYED.add(scan.records.len() as u64);
        for stamped in scan.records {
            // Stamps are monotone within a scan (enforced by the scan),
            // so the last frame carries the maxima.
            report.max_epoch = report.max_epoch.max(stamped.epoch);
            report.max_rseq = report.max_rseq.max(stamped.rseq);
            apply(&mut state, stamped.record);
        }
        if let Some(offset) = truncate_at {
            // Physically repair the file so appends resume after the last
            // verified frame instead of interleaving with garbage.
            let file = OpenOptions::new().write(true).open(&wal_path)?;
            file.set_len(offset)?;
            file.sync_data()?;
        }
    }
    metrics::WAL_REPLAYS.incr();

    report.kbs = state.len();
    report.max_seq = state.values().map(|kb| kb.seq).max().unwrap_or(0);
    Ok((state, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbitrex_core::Budget;
    use arbitrex_logic::{parse, Sig};
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn temp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "arbx-recovery-test-{}-{}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn commit(name: &str, text: &str, seq: u64) -> WalRecord {
        let mut sig = Sig::new();
        let formula = parse(&mut sig, text).unwrap();
        WalRecord::Commit {
            name: name.to_string(),
            kb: StoredKb { sig, formula, seq },
        }
    }

    #[test]
    fn replay_is_a_fold_over_snapshot_plus_wal() {
        let dir = temp_dir();
        let mut snap = HashMap::new();
        let mut sig = Sig::new();
        let f = parse(&mut sig, "A").unwrap();
        snap.insert(
            "old".to_string(),
            StoredKb {
                sig,
                formula: f,
                seq: 5,
            },
        );
        snapshot::write_snapshot(&dir, &snap, 1, 40, &Budget::unlimited()).unwrap();
        {
            let mut wal = wal::Wal::open(&dir.join(WAL_FILE), Budget::unlimited()).unwrap();
            wal.append(1, 41, &commit("old", "A & B", 6)).unwrap();
            wal.append(1, 42, &commit("new", "C", 1)).unwrap();
            wal.append(
                2,
                43,
                &WalRecord::Delete {
                    name: "old".to_string(),
                },
            )
            .unwrap();
        }
        let (state, report) = recover(&dir, RecoverMode::Strict).unwrap();
        assert_eq!(state.len(), 1);
        assert_eq!(state["new"].seq, 1);
        assert!(report.snapshot_loaded);
        assert_eq!(report.wal_records_replayed, 3);
        assert!(!report.torn_tail_truncated);
        assert_eq!(report.max_seq, 1);
        assert_eq!(report.max_epoch, 2);
        assert_eq!(report.max_rseq, 43);
        assert_eq!(report.truncated_offset, None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_corruption_refuses_unless_salvage() {
        let dir = temp_dir();
        let wal_path = dir.join(WAL_FILE);
        {
            let mut wal = wal::Wal::open(&wal_path, Budget::unlimited()).unwrap();
            wal.append(1, 1, &commit("a", "A", 1)).unwrap();
            wal.append(1, 2, &commit("b", "B", 1)).unwrap();
            wal.append(1, 3, &commit("c", "C", 1)).unwrap();
        }
        // Flip a byte inside the *first* record's stamp (CRC-covered).
        let mut bytes = std::fs::read(&wal_path).unwrap();
        bytes[wal::WAL_MAGIC.len() + 9] ^= 0xFF;
        std::fs::write(&wal_path, &bytes).unwrap();

        assert!(matches!(
            recover(&dir, RecoverMode::Strict),
            Err(RecoveryError::CorruptWal { .. })
        ));
        // Salvage keeps the (empty) verified prefix and truncates,
        // reporting where the cut landed for forensics.
        let (state, report) = recover(&dir, RecoverMode::Salvage).unwrap();
        assert!(state.is_empty());
        assert!(report.salvaged_bytes_dropped > 0);
        assert_eq!(report.truncated_offset, Some(wal::WAL_MAGIC.len() as u64));
        assert_eq!(report.truncated_frame_index, Some(0));
        // The file is repaired: a strict re-open now succeeds.
        let (state, _) = recover(&dir, RecoverMode::Strict).unwrap();
        assert!(state.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_directory_recovers_empty() {
        let dir = temp_dir();
        let (state, report) = recover(&dir, RecoverMode::Strict).unwrap();
        assert!(state.is_empty());
        assert!(!report.snapshot_loaded);
        assert_eq!(report.wal_records_replayed, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
