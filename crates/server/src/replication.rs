//! Primary/replica replication over the WAL, with failover and
//! arbitration-based anti-entropy.
//!
//! The primary retains recent stamped WAL frames in a [`ReplLog`] ring;
//! a replica streams them over the same zero-dependency HTTP/1.1 stack
//! (`GET /v1/replication/wal?from_seq=N`, chunked, one frame per chunk)
//! and applies them through [`crate::kb::KbStore::apply_replicated`],
//! which lands the primary's bytes verbatim so the two logs are
//! byte-identical over the shared history. A replica that falls behind
//! the ring's retention — or that observes a higher fencing epoch on the
//! primary (a promotion happened while it was away) — resyncs by
//! installing the primary's snapshot image and resumes streaming from
//! its watermark.
//!
//! Failover is explicit: `POST /v1/replication/promote` bumps the
//! replica's epoch, clears read-only, and stops its puller. Frames from
//! the deposed epoch are fenced at every layer: the apply path rejects
//! them, the WAL scan refuses a stamp regression, and the puller
//! disconnects from any peer reporting a lower epoch than its own.
//!
//! Divergence after a partition (two primaries acked disjoint commits)
//! is not resolved by last-writer-wins: `POST /v1/replication/reconcile`
//! fetches the peer's per-KB digest (name, seq, canonical content hash)
//! and merges each divergent theory with the paper's arbitration
//! operator `Δ` — the fair merge of two equally trusted sources — with
//! the two sides ordered by canonical key so both nodes would compute
//! the identical result. See DESIGN.md §12.
//!
//! # Network fault injection
//!
//! [`NetFaultPlan`] arms exactly one deterministic, fire-once fault at
//! the primary's replication transport: `net_drop` (connection cut
//! mid-stream before the k-th frame), `net_torn` (k-th frame corrupted
//! in transit), `net_dup` (k-th frame delivered twice), `net_delay`
//! (k-th batch request delayed), `net_partition` (the k-th and the next
//! [`PARTITION_REFUSALS`]−1 batch requests refused, then healed).
//! Faults are one-shot — unlike the sticky durability `Budget` trips —
//! because a network fault heals; the replica's reconnect/backoff/CRC
//! machinery is what is under test.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use arbitrex_core::{tiered_arbitrate, Budget, Quality};
use arbitrex_logic::{canonical_key, parse as parse_formula, ENUM_LIMIT};

use crate::json::{self, Json};
use crate::kb::{ApplyOutcome, StoredKb};
use crate::metrics;
use crate::snapshot;
use crate::wal;
use crate::ServiceState;

/// Stamped WAL frames the primary retains for streaming; a replica whose
/// cursor is older than the oldest retained frame must resync from a
/// snapshot instead.
pub const RETAIN_FRAMES: usize = 8192;
/// Most frames served in one batch response.
pub const MAX_BATCH_FRAMES: usize = 512;
/// How long a batch request with nothing to ship long-polls before
/// returning an empty batch (the replica re-requests immediately, so
/// this is the idle polling cadence, not added replication lag).
pub const POLL_WAIT: Duration = Duration::from_millis(50);
/// Consecutive batch requests a `net_partition` fault refuses.
pub const PARTITION_REFUSALS: u64 = 3;
/// Reconnect backoff bounds: exponential from `BACKOFF_MIN`, capped at
/// `BACKOFF_MAX`, with deterministic jitter.
pub const BACKOFF_MIN: Duration = Duration::from_millis(10);
/// Upper bound of the reconnect backoff.
pub const BACKOFF_MAX: Duration = Duration::from_millis(1000);

// --- the replication log ----------------------------------------------------

/// One retained frame: the stamp plus the exact on-disk bytes.
#[derive(Debug, Clone)]
pub struct ReplFrame {
    /// Fencing epoch stamped into the frame.
    pub epoch: u64,
    /// Global replication sequence number.
    pub rseq: u64,
    /// The full framed bytes (`len||crc||epoch||rseq||payload`).
    pub bytes: Vec<u8>,
}

struct LogInner {
    /// Retained frames, contiguous by `rseq`.
    frames: VecDeque<ReplFrame>,
    /// `rseq` of the oldest retained frame; when empty, the next `rseq`
    /// a push will carry. A cursor below the floor needs a resync.
    floor: u64,
}

/// Shared replication state of one store: the frame ring, the watermarks
/// (durable = shippable head, visible = served by reads), the fencing
/// epoch, and the role flags.
pub struct ReplLog {
    inner: Mutex<LogInner>,
    /// Signals long-polling fetchers that the durable head advanced.
    shipped: Condvar,
    /// Highest `rseq` covered by an fsync or durable snapshot — the
    /// head a replica may be served up to.
    durable: AtomicU64,
    /// Highest `rseq` visible to reads (on a primary this trails
    /// `durable` by nothing observable; on a replica it advances as
    /// frames apply — the `X-Arbitrex-Min-Seq` gate reads this).
    visible: AtomicU64,
    /// Current fencing epoch.
    epoch: AtomicU64,
    /// Replica role: writes are refused until promotion.
    read_only: AtomicBool,
    /// Puller generation: bumped to invalidate the running puller
    /// (promotion, retarget, shutdown). A puller captures the value at
    /// spawn and exits once it changes, so stop-then-respawn can never
    /// leave a stale puller streaming from the old target alongside the
    /// new one.
    puller_gen: AtomicU64,
    /// The primary's head as last reported to this replica (lag gauge).
    last_seen_head: AtomicU64,
}

/// What a batch fetch produced.
#[derive(Debug)]
pub enum FetchOutcome {
    /// Frames from the cursor (possibly empty after the long-poll), plus
    /// the durable head at serve time.
    Frames {
        /// The batch, contiguous from the requested cursor.
        frames: Vec<ReplFrame>,
        /// Durable head at serve time.
        head: u64,
    },
    /// The cursor is older than the retention floor: the replica must
    /// install a snapshot and re-stream from its watermark.
    ResyncRequired {
        /// Oldest retained `rseq`.
        floor: u64,
    },
}

impl ReplLog {
    /// A log for a store whose next append will carry `next_rseq` under
    /// `epoch`. `read_only` marks a replica (cleared by promotion).
    pub fn new(epoch: u64, next_rseq: u64, read_only: bool) -> ReplLog {
        ReplLog {
            inner: Mutex::new(LogInner {
                frames: VecDeque::new(),
                floor: next_rseq,
            }),
            shipped: Condvar::new(),
            durable: AtomicU64::new(next_rseq.saturating_sub(1)),
            visible: AtomicU64::new(next_rseq.saturating_sub(1)),
            epoch: AtomicU64::new(epoch),
            read_only: AtomicBool::new(read_only),
            puller_gen: AtomicU64::new(0),
            last_seen_head: AtomicU64::new(0),
        }
    }

    /// Retain a just-appended frame. Called under the WAL lock, which is
    /// what keeps `rseq` contiguous in the ring.
    pub fn push(&self, epoch: u64, rseq: u64, bytes: Vec<u8>) {
        let mut inner = self.inner.lock().unwrap();
        debug_assert_eq!(rseq, inner.floor + inner.frames.len() as u64);
        inner.frames.push_back(ReplFrame { epoch, rseq, bytes });
        while inner.frames.len() > RETAIN_FRAMES {
            inner.frames.pop_front();
            inner.floor += 1;
        }
    }

    /// Advance the durable head (monotone) and wake long-pollers.
    pub fn advance_durable(&self, rseq: u64) {
        self.durable.fetch_max(rseq, Ordering::SeqCst);
        // Lock-then-notify so a fetcher between its head check and its
        // wait cannot miss the advance.
        drop(self.inner.lock().unwrap());
        self.shipped.notify_all();
    }

    /// The durable head: the highest `rseq` a replica may be served.
    pub fn head(&self) -> u64 {
        self.durable.load(Ordering::SeqCst)
    }

    /// Advance the read-visible watermark (monotone).
    pub fn set_visible(&self, rseq: u64) {
        self.visible.fetch_max(rseq, Ordering::SeqCst);
    }

    /// The read-visible watermark (the `X-Arbitrex-Min-Seq` gate).
    pub fn visible(&self) -> u64 {
        self.visible.load(Ordering::SeqCst)
    }

    /// Current fencing epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Adopt `epoch` (promotion, or a replica following its primary).
    pub fn set_epoch(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::SeqCst);
    }

    /// Is this store refusing writes (replica role)?
    pub fn read_only(&self) -> bool {
        self.read_only.load(Ordering::SeqCst)
    }

    /// Set or clear the replica role.
    pub fn set_read_only(&self, value: bool) {
        self.read_only.store(value, Ordering::SeqCst);
    }

    /// Ask the running puller thread (if any) to exit by bumping the
    /// puller generation. A puller spawned *after* this call captures
    /// the new generation and is unaffected — which is what lets the
    /// failover supervisor retarget a replica at a newly promoted chain
    /// head with a plain stop-then-spawn.
    pub fn stop_puller(&self) {
        self.puller_gen.fetch_add(1, Ordering::SeqCst);
    }

    /// The current puller generation.
    pub fn puller_gen(&self) -> u64 {
        self.puller_gen.load(Ordering::SeqCst)
    }

    /// Has the puller of generation `gen` been asked to exit?
    pub fn puller_stopped(&self, gen: u64) -> bool {
        self.puller_gen.load(Ordering::SeqCst) != gen
    }

    /// Record the primary's head as reported in a batch response.
    pub fn note_seen_head(&self, head: u64) {
        self.last_seen_head.fetch_max(head, Ordering::SeqCst);
    }

    /// The primary's head as last seen (0 before the first batch).
    pub fn last_seen_head(&self) -> u64 {
        self.last_seen_head.load(Ordering::SeqCst)
    }

    /// Oldest retained `rseq` (cursor floor).
    pub fn floor(&self) -> u64 {
        self.inner.lock().unwrap().floor
    }

    /// Serve a batch from cursor `from`, long-polling up to `wait` when
    /// nothing is shippable yet.
    pub fn fetch(&self, from: u64, wait: Duration) -> FetchOutcome {
        let deadline = Instant::now() + wait;
        let mut inner = self.inner.lock().unwrap();
        loop {
            if from < inner.floor {
                return FetchOutcome::ResyncRequired { floor: inner.floor };
            }
            let head = self.durable.load(Ordering::SeqCst);
            if from <= head {
                let frames: Vec<ReplFrame> = inner
                    .frames
                    .iter()
                    .skip_while(|f| f.rseq < from)
                    .take_while(|f| f.rseq <= head)
                    .take(MAX_BATCH_FRAMES)
                    .cloned()
                    .collect();
                if !frames.is_empty() {
                    return FetchOutcome::Frames { frames, head };
                }
                // Cursor ≤ head but nothing retained at it (can only
                // happen right at the floor after a reset): resync.
                if head >= inner.floor {
                    return FetchOutcome::ResyncRequired { floor: inner.floor };
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return FetchOutcome::Frames {
                    frames: Vec::new(),
                    head,
                };
            }
            let (guard, _) = self.shipped.wait_timeout(inner, deadline - now).unwrap();
            inner = guard;
        }
    }

    /// Reset after a snapshot install: the ring empties, the floor moves
    /// past the snapshot watermark, and every watermark snaps to it.
    pub fn reset(&self, epoch: u64, rseq: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.frames.clear();
        inner.floor = rseq + 1;
        drop(inner);
        self.epoch.fetch_max(epoch, Ordering::SeqCst);
        self.durable.fetch_max(rseq, Ordering::SeqCst);
        self.visible.fetch_max(rseq, Ordering::SeqCst);
        self.shipped.notify_all();
    }
}

// --- deterministic network faults -------------------------------------------

/// Where a network fault plan fires, at the primary's replication
/// transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultSite {
    /// Cut the stream (no chunk terminator, connection closed) before
    /// the k-th frame ships.
    Drop,
    /// Corrupt one byte of the k-th frame in transit; the stream
    /// continues — the replica's CRC check is what must catch it.
    Torn,
    /// Deliver the k-th frame twice.
    Dup,
    /// Delay the k-th batch request by [`NET_DELAY`].
    Delay,
    /// Refuse the k-th batch request and the next
    /// [`PARTITION_REFUSALS`]−1 with 503, then heal.
    Partition,
}

/// Artificial latency the `net_delay` fault injects.
pub const NET_DELAY: Duration = Duration::from_millis(100);

impl NetFaultSite {
    /// Every site, for help text and validation.
    pub const ALL: [NetFaultSite; 5] = [
        NetFaultSite::Drop,
        NetFaultSite::Torn,
        NetFaultSite::Dup,
        NetFaultSite::Delay,
        NetFaultSite::Partition,
    ];

    /// The `--fault` spelling of this site.
    pub fn name(self) -> &'static str {
        match self {
            NetFaultSite::Drop => "net_drop",
            NetFaultSite::Torn => "net_torn",
            NetFaultSite::Dup => "net_dup",
            NetFaultSite::Delay => "net_delay",
            NetFaultSite::Partition => "net_partition",
        }
    }

    /// Parse a `--fault` site name.
    pub fn parse(name: &str) -> Option<NetFaultSite> {
        NetFaultSite::ALL.into_iter().find(|s| s.name() == name)
    }
}

#[derive(Debug, Default)]
struct NetFaultState {
    /// Charges against this plan's site (frames shipped for frame-level
    /// sites, batch requests for request-level ones).
    counter: AtomicU64,
    /// Outstanding partition refusals.
    partition_refusals: AtomicU64,
}

/// A deterministic, fire-once network fault: the k-th charge at `site`
/// trips it. Shared (`Arc`) so the plan travels inside a cloned
/// `ServerConfig` while all clones count against the same trigger —
/// and, unlike the sticky durability `Budget`, it disarms after firing,
/// because a network fault heals.
#[derive(Debug, Clone)]
pub struct NetFaultPlan {
    /// Which transport behavior misfires.
    pub site: NetFaultSite,
    /// Fire on the `at`-th charge (1-based).
    pub at: u64,
    state: Arc<NetFaultState>,
}

impl NetFaultPlan {
    /// A plan firing on the `at`-th charge at `site`.
    pub fn new(site: NetFaultSite, at: u64) -> NetFaultPlan {
        NetFaultPlan {
            site,
            at,
            state: Arc::new(NetFaultState::default()),
        }
    }

    /// Charge one unit at `site`; `true` exactly once, on the `at`-th
    /// charge of the plan's own site.
    pub fn fire(&self, site: NetFaultSite) -> bool {
        if site != self.site {
            return false;
        }
        let n = self.state.counter.fetch_add(1, Ordering::SeqCst) + 1;
        if n == self.at {
            metrics::REPL_NET_FAULTS.incr();
            true
        } else {
            false
        }
    }

    /// Should this batch request be refused by the partition fault?
    /// Consumes one refusal if the partition is active; fires the
    /// partition (arming the remaining refusals) on the k-th request.
    pub fn partition_refuses(&self) -> bool {
        if self
            .state
            .partition_refusals
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok()
        {
            return true;
        }
        if self.fire(NetFaultSite::Partition) {
            self.state
                .partition_refusals
                .store(PARTITION_REFUSALS - 1, Ordering::SeqCst);
            return true;
        }
        false
    }
}

// --- a blocking peer client --------------------------------------------------

/// What a peer answered: status, lowercased headers, the body, and — for
/// chunked responses — the individual chunks (one WAL frame each).
#[derive(Debug)]
pub struct PeerResponse {
    /// HTTP status code.
    pub status: u16,
    /// Lowercased header names with values.
    pub headers: Vec<(String, String)>,
    /// The whole body (chunks concatenated when chunked).
    pub body: Vec<u8>,
    /// The individual chunks of a chunked response.
    pub chunks: Option<Vec<Vec<u8>>>,
}

impl PeerResponse {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A blocking HTTP/1.1 client for one keep-alive connection to a peer
/// node. Requests are strictly sequential (no pipelining), so the
/// buffered reader never holds bytes of an unconsumed response.
pub struct PeerClient {
    reader: BufReader<TcpStream>,
}

/// Read timeout on peer sockets; a peer silent this long is treated as
/// gone and the connection is rebuilt.
const PEER_READ_TIMEOUT: Duration = Duration::from_secs(5);

impl PeerClient {
    /// Connect to `addr` (host:port).
    pub fn connect(addr: &str) -> io::Result<PeerClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(PEER_READ_TIMEOUT))?;
        let _ = stream.set_nodelay(true);
        Ok(PeerClient {
            reader: BufReader::new(stream),
        })
    }

    /// Send `method path` with an optional JSON body and read the full
    /// response (buffering all chunks of a chunked one).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<PeerResponse> {
        self.request_with_headers(method, path, body, &[])
    }

    /// [`PeerClient::request`] with extra request headers — the shard
    /// handoff marks its pulls cluster-internal this way, so an old
    /// owner serves its local copy instead of routing by the new ring.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> io::Result<PeerResponse> {
        use std::fmt::Write as _;
        let body = body.unwrap_or("");
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: peer\r\n");
        for (name, value) in headers {
            let _ = write!(head, "{name}: {value}\r\n");
        }
        let _ = write!(head, "Content-Length: {}\r\n\r\n", body.len());
        {
            let stream = self.reader.get_mut();
            stream.write_all(head.as_bytes())?;
            stream.write_all(body.as_bytes())?;
            stream.flush()?;
        }
        self.read_response()
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer closed mid-response",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn read_response(&mut self) -> io::Result<PeerResponse> {
        let status_line = self.read_line()?;
        let mut parts = status_line.split_ascii_whitespace();
        let status = match (parts.next(), parts.next()) {
            (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code
                .parse::<u16>()
                .map_err(|_| io::Error::other(format!("bad status line `{status_line}`")))?,
            _ => return Err(io::Error::other(format!("bad status line `{status_line}`"))),
        };
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let chunked = headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
        if chunked {
            let mut chunks = Vec::new();
            let mut body = Vec::new();
            loop {
                let size_line = self.read_line()?;
                let size = usize::from_str_radix(size_line.trim(), 16)
                    .map_err(|_| io::Error::other(format!("bad chunk size `{size_line}`")))?;
                if size == 0 {
                    let _ = self.read_line(); // trailing CRLF after the last chunk
                    break;
                }
                let mut chunk = vec![0u8; size];
                self.reader.read_exact(&mut chunk)?;
                let mut crlf = [0u8; 2];
                self.reader.read_exact(&mut crlf)?;
                body.extend_from_slice(&chunk);
                chunks.push(chunk);
            }
            return Ok(PeerResponse {
                status,
                headers,
                body,
                chunks: Some(chunks),
            });
        }
        let length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        Ok(PeerResponse {
            status,
            headers,
            body,
            chunks: None,
        })
    }
}

// --- the replica's puller thread ---------------------------------------------

/// Capped exponential backoff with deterministic xorshift jitter. The
/// same policy backs the replication puller's reconnects and the shard
/// proxy's read retries (`routes::shard_proxy_get`).
pub(crate) struct Backoff {
    delay: Duration,
    rng: u64,
}

impl Backoff {
    pub(crate) fn new(seed: u64) -> Backoff {
        Backoff {
            delay: BACKOFF_MIN,
            rng: seed | 1,
        }
    }

    pub(crate) fn reset(&mut self) {
        self.delay = BACKOFF_MIN;
    }

    /// The next sleep: current delay ± 25% jitter (the draw is uniform
    /// over `[base - base/4, base + base/4]`); the base then doubles
    /// toward the cap for the draw after this one.
    pub(crate) fn next_delay(&mut self) -> Duration {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let base = self.delay.as_millis() as u64;
        let jitter = self.rng % (base / 2 + 1); // 0 ..= base/2
        self.delay = (self.delay * 2).min(BACKOFF_MAX);
        Duration::from_millis(base - base / 4 + jitter)
    }

    /// Sleep the next delay (in short slices so a stop request is
    /// observed promptly).
    fn sleep(&mut self, log: &ReplLog, gen: u64) {
        metrics::REPL_BACKOFF_SLEEPS.incr();
        let total = self.next_delay();
        let slice = Duration::from_millis(10);
        let deadline = Instant::now() + total;
        while Instant::now() < deadline && !log.puller_stopped(gen) {
            thread::sleep(slice.min(deadline - Instant::now()));
        }
    }
}

/// Spawn the replica's puller thread: connect to `primary`, stream WAL
/// frames, apply them, resync via snapshot when required, and reconnect
/// with capped backoff on every failure. Exits when the store's
/// [`ReplLog::stop_puller`] fires (promotion or shutdown).
pub fn spawn_puller(state: Arc<ServiceState>, primary: String) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name("arbitrex-repl-puller".to_string())
        .spawn(move || run_puller(&state, &primary))
        .expect("spawn replication puller")
}

fn run_puller(state: &ServiceState, primary: &str) {
    let log = match state.kbs.replication() {
        Some(log) => Arc::clone(log),
        None => return, // replication requires a durable store
    };
    let seed = primary.bytes().fold(0xDEAD_BEEF_u64, |h, b| {
        h.wrapping_mul(31).wrapping_add(b as u64)
    });
    let mut backoff = Backoff::new(seed);
    let gen = log.puller_gen();
    while !log.puller_stopped(gen) {
        let mut client = match PeerClient::connect(primary) {
            Ok(c) => {
                backoff.reset();
                c
            }
            Err(_) => {
                backoff.sleep(&log, gen);
                continue;
            }
        };
        metrics::REPL_RECONNECTS.incr();
        // Stream batches on this connection until it breaks.
        loop {
            if log.puller_stopped(gen) {
                return;
            }
            let from = log.head() + 1;
            let response = match client.request(
                "GET",
                &format!("/v1/replication/wal?from_seq={from}"),
                None,
            ) {
                Ok(r) => r,
                Err(_) => break, // dropped/cut connection: rebuild it
            };
            match response.status {
                200 => {}
                409 => {
                    // Cursor below the primary's retention floor.
                    if !resync(state, &log, &mut client) {
                        break;
                    }
                    continue;
                }
                _ => break, // partition 503s and surprises: back off
            }
            let peer_epoch = response
                .header("x-arbitrex-epoch")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            if peer_epoch < log.epoch() {
                // A deposed primary is answering: refuse its frames.
                metrics::REPL_EPOCH_REJECTIONS.incr();
                break;
            }
            if peer_epoch > log.epoch() {
                // A promotion happened while we were away; our history
                // may have diverged past the shared prefix — resync.
                if !resync(state, &log, &mut client) {
                    break;
                }
                continue;
            }
            if let Some(head) = response
                .header("x-arbitrex-head")
                .and_then(|v| v.parse::<u64>().ok())
            {
                log.note_seen_head(head);
            }
            let chunks = response.chunks.unwrap_or_default();
            let mut stream_ok = true;
            for chunk in &chunks {
                let start = Instant::now();
                let stamped = match wal::decode_frame(chunk) {
                    Ok(s) => s,
                    Err(_) => {
                        // Torn in transit: drop the rest, re-request
                        // from the same cursor on this connection.
                        metrics::REPL_BAD_FRAMES.incr();
                        break;
                    }
                };
                match state.kbs.apply_replicated(chunk, &stamped) {
                    Ok(ApplyOutcome::Applied { snapshot_due, .. }) => {
                        metrics::REPL_FRAMES_APPLIED.incr();
                        metrics::LATENCY_REPL_APPLY
                            .record_nanos(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                        if snapshot_due && state.kbs.maybe_snapshot().is_err() {
                            state.kbs.note_snapshot_error();
                        }
                    }
                    Ok(ApplyOutcome::Duplicate { .. }) => {
                        metrics::REPL_DUP_FRAMES_SKIPPED.incr();
                    }
                    Ok(ApplyOutcome::StaleEpoch { .. }) => {
                        metrics::REPL_EPOCH_REJECTIONS.incr();
                        stream_ok = false;
                        break;
                    }
                    Ok(ApplyOutcome::Gap { .. }) => {
                        stream_ok = resync(state, &log, &mut client);
                        break;
                    }
                    Err(_) => {
                        // Local append failed (disk trouble): back off
                        // rather than spin against a broken store.
                        stream_ok = false;
                        break;
                    }
                }
            }
            if !stream_ok {
                break;
            }
        }
        backoff.sleep(&log, gen);
    }
}

/// Install the primary's snapshot image: fetch, verify, swap the whole
/// store, and resume the cursor from the snapshot watermark. `false`
/// breaks the connection loop (caller backs off).
fn resync(state: &ServiceState, log: &ReplLog, client: &mut PeerClient) -> bool {
    metrics::REPL_RESYNCS.incr();
    let response = match client.request("GET", "/v1/replication/snapshot", None) {
        Ok(r) => r,
        Err(_) => return false,
    };
    if response.status != 200 {
        return false;
    }
    let contents = match snapshot::parse_snapshot(&response.body) {
        Ok(c) => c,
        Err(_) => {
            metrics::REPL_BAD_FRAMES.incr();
            return false;
        }
    };
    // Fencing covers state transfer too: a node fenced at epoch E must
    // not install a deposed primary's snapshot, or a kill-9'd old
    // primary could undo a promotion by answering a resync.
    if contents.epoch < log.epoch() {
        metrics::REPL_EPOCH_REJECTIONS.incr();
        return false;
    }
    if state.kbs.install_state(contents).is_err() {
        return false;
    }
    // Watermarks were reset by install_state through the same log.
    true
}

// --- Δ-based anti-entropy ----------------------------------------------------

/// What one reconciliation pass did.
#[derive(Debug, Default)]
pub struct ReconcileSummary {
    /// KBs present on both sides with identical seq and content.
    pub identical: u64,
    /// KBs absent locally, adopted verbatim from the peer.
    pub adopted: u64,
    /// KBs with identical content but different seq; seq aligned to max.
    pub aligned: u64,
    /// Divergent KBs merged with `Δ` arbitration.
    pub merged: u64,
    /// Divergent KBs skipped (peer formula unreadable or arbitration
    /// not exact — should not happen with an unlimited budget).
    pub skipped: u64,
}

/// One entry of a peer's digest.
struct DigestEntry {
    name: String,
    seq: u64,
    hash: u64,
}

fn parse_digest(body: &[u8]) -> Result<Vec<DigestEntry>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "digest is not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| format!("digest does not parse: {e}"))?;
    let kbs = doc
        .get("kbs")
        .and_then(|v| v.as_array())
        .ok_or("digest has no `kbs` array")?;
    let mut out = Vec::with_capacity(kbs.len());
    for entry in kbs {
        let name = entry
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or("digest entry has no name")?
            .to_string();
        let seq = entry
            .get("seq")
            .and_then(|v| v.as_u64())
            .ok_or("digest entry has no seq")?;
        let hash = entry
            .get("hash")
            .and_then(|v| v.as_str())
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or("digest entry has no hash")?;
        out.push(DigestEntry { name, seq, hash });
    }
    Ok(out)
}

/// Fetch one KB's formula text and seq from the peer.
fn fetch_peer_kb(client: &mut PeerClient, name: &str) -> Result<(String, u64), String> {
    // Anti-entropy addresses a *node*, not the namespace: the shard
    // bypass header makes a sharded peer serve its own local copy
    // instead of proxying the read back through the ring (which would
    // hand this node its own theory and turn the Δ-merge into a no-op).
    let response = client
        .request_with_headers(
            "GET",
            &format!("/v1/kb/{name}"),
            None,
            &[(crate::shard::INTERNAL_HEADER, "1")],
        )
        .map_err(|e| format!("peer unreachable: {e}"))?;
    if response.status != 200 {
        return Err(format!("peer answered {} for `{name}`", response.status));
    }
    let text = std::str::from_utf8(&response.body).map_err(|_| "KB body not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| format!("KB body does not parse: {e}"))?;
    let formula = doc
        .get("formula")
        .and_then(|v| v.as_str())
        .ok_or("KB body has no formula")?
        .to_string();
    let seq = doc
        .get("seq")
        .and_then(|v| v.as_u64())
        .ok_or("KB body has no seq")?;
    Ok((formula, seq))
}

/// One anti-entropy pass against `peer`: adopt KBs we lack, align seqs
/// on identical content, and merge genuinely divergent theories with
/// `Δ` arbitration — both sides ordered by canonical key, so the peer
/// running the same pass against us would commit the identical result.
pub fn reconcile_with_peer(state: &ServiceState, peer: &str) -> Result<ReconcileSummary, String> {
    if state.kbs.replication().is_none() {
        return Err("reconciliation requires a durable store".to_string());
    }
    let mut client = PeerClient::connect(peer).map_err(|e| format!("cannot reach {peer}: {e}"))?;
    let digest_response = client
        .request("GET", "/v1/replication/digest", None)
        .map_err(|e| format!("digest fetch failed: {e}"))?;
    if digest_response.status != 200 {
        return Err(format!(
            "peer answered {} for digest",
            digest_response.status
        ));
    }
    let peer_digest = parse_digest(&digest_response.body)?;
    let local: std::collections::HashMap<String, (u64, u64)> = state
        .kbs
        .digest()
        .into_iter()
        .map(|(name, seq, hash)| (name, (seq, hash)))
        .collect();

    let mut summary = ReconcileSummary::default();
    for entry in peer_digest {
        match local.get(&entry.name) {
            None => {
                // Absent here: adopt the peer's theory verbatim, seq
                // included, so the digests agree afterwards.
                let (text, seq) = match fetch_peer_kb(&mut client, &entry.name) {
                    Ok(v) => v,
                    Err(_) => {
                        summary.skipped += 1;
                        continue;
                    }
                };
                let mut sig = arbitrex_logic::Sig::new();
                let formula = match parse_formula(&mut sig, &text) {
                    Ok(f) => f,
                    Err(_) => {
                        summary.skipped += 1;
                        continue;
                    }
                };
                if state
                    .kbs
                    .force_put(&entry.name, StoredKb { sig, formula, seq })
                    .is_err()
                {
                    summary.skipped += 1;
                    continue;
                }
                summary.adopted += 1;
            }
            Some(&(local_seq, local_hash)) if local_hash == entry.hash => {
                if local_seq == entry.seq {
                    summary.identical += 1;
                    continue;
                }
                // Same theory, different seq (e.g. one side redundantly
                // re-committed): align on the max so digests converge.
                let target = local_seq.max(entry.seq);
                if align_seq(state, &entry.name, target) {
                    summary.aligned += 1;
                } else {
                    summary.skipped += 1;
                }
            }
            Some(&(local_seq, _)) => {
                // Genuine divergence: merge with Δ, not last-writer-wins.
                match merge_divergent(state, &mut client, &entry.name, local_seq, entry.seq) {
                    Ok(()) => {
                        metrics::REPL_RECONCILIATIONS.incr();
                        summary.merged += 1;
                    }
                    Err(_) => summary.skipped += 1,
                }
            }
        }
    }
    Ok(summary)
}

/// Re-commit the local theory under `target` seq (content unchanged).
fn align_seq(state: &ServiceState, name: &str, target: u64) -> bool {
    let Some(entry) = state.kbs.entry(name) else {
        return false;
    };
    let next = {
        let kb = entry.lock().unwrap();
        if kb.seq == 0 || kb.seq == target {
            return kb.seq == target;
        }
        StoredKb {
            sig: kb.sig.clone(),
            formula: kb.formula.clone(),
            seq: target,
        }
    };
    state.kbs.force_put(name, next).is_ok()
}

/// Merge one divergent KB: `Δ(side_a, side_b)` with the sides ordered by
/// canonical key (arbitration is a fair merge; the ordering only pins a
/// deterministic evaluation order so both nodes compute identical
/// results). Commits at `max(seq_local, seq_peer) + 1`.
fn merge_divergent(
    state: &ServiceState,
    client: &mut PeerClient,
    name: &str,
    local_seq: u64,
    peer_seq: u64,
) -> Result<(), String> {
    let (peer_text, _) = fetch_peer_kb(client, name)?;
    let entry = state
        .kbs
        .entry(name)
        .ok_or("KB vanished during reconciliation")?;
    let (mut sig, local_formula) = {
        let kb = entry.lock().unwrap();
        if kb.seq == 0 {
            return Err("KB vanished during reconciliation".to_string());
        }
        (kb.sig.clone(), kb.formula.clone())
    };
    let peer_formula = parse_formula(&mut sig, &peer_text)
        .map_err(|e| format!("peer formula does not parse: {e}"))?;
    let n = sig.width();
    if n > ENUM_LIMIT {
        return Err(format!("merged signature of {n} variables too wide"));
    }
    // Order the sides canonically: Δ treats both as equally trusted, so
    // the pair — not its order — determines the fair merge; pinning the
    // order makes the two nodes' computations bitwise identical.
    let (psi, phi) = if canonical_key(&local_formula) <= canonical_key(&peer_formula) {
        (local_formula, peer_formula)
    } else {
        (peer_formula, local_formula)
    };
    let (outcome, _cache, _report) = tiered_arbitrate(
        &state.cache,
        &state.compiled,
        &psi,
        &phi,
        n,
        &Budget::unlimited(),
    )
    .map_err(|e| e.to_string())?;
    if outcome.quality != Quality::Exact {
        return Err("arbitration degraded under an unlimited budget".to_string());
    }
    let merged = StoredKb {
        sig,
        formula: outcome.models.to_formula(),
        seq: local_seq.max(peer_seq) + 1,
    };
    state
        .kbs
        .force_put(name, merged)
        .map_err(|e| e.to_string())?;
    Ok(())
}

/// Render a reconcile summary as the endpoint's response body.
pub fn summary_json(peer: &str, s: &ReconcileSummary) -> Json {
    json::obj([
        ("peer", json::s(peer)),
        ("identical", json::n(s.identical)),
        ("adopted", json::n(s.adopted)),
        ("aligned", json::n(s.aligned)),
        ("merged", json::n(s.merged)),
        ("skipped", json::n(s.skipped)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(epoch: u64, rseq: u64) -> Vec<u8> {
        wal::frame(epoch, rseq, &[rseq as u8])
    }

    #[test]
    fn repl_log_serves_contiguous_batches_up_to_the_durable_head() {
        let log = ReplLog::new(1, 1, false);
        for rseq in 1..=5 {
            log.push(1, rseq, frame_bytes(1, rseq));
        }
        // Nothing durable yet: an immediate fetch long-polls then
        // returns empty.
        match log.fetch(1, Duration::from_millis(1)) {
            FetchOutcome::Frames { frames, head } => {
                assert!(frames.is_empty());
                assert_eq!(head, 0);
            }
            other => panic!("expected empty frames, got {other:?}"),
        }
        log.advance_durable(3);
        match log.fetch(1, Duration::from_millis(1)) {
            FetchOutcome::Frames { frames, head } => {
                assert_eq!(head, 3);
                assert_eq!(
                    frames.iter().map(|f| f.rseq).collect::<Vec<_>>(),
                    vec![1, 2, 3]
                );
            }
            other => panic!("expected frames 1..=3, got {other:?}"),
        }
        // A cursor mid-ring serves the suffix.
        match log.fetch(3, Duration::from_millis(1)) {
            FetchOutcome::Frames { frames, .. } => {
                assert_eq!(frames.iter().map(|f| f.rseq).collect::<Vec<_>>(), vec![3]);
            }
            other => panic!("expected frame 3, got {other:?}"),
        }
    }

    #[test]
    fn repl_log_requires_resync_below_the_retention_floor() {
        let log = ReplLog::new(1, 1, false);
        for rseq in 1..=(RETAIN_FRAMES as u64 + 10) {
            log.push(1, rseq, frame_bytes(1, rseq));
        }
        log.advance_durable(RETAIN_FRAMES as u64 + 10);
        assert_eq!(log.floor(), 11);
        match log.fetch(5, Duration::from_millis(1)) {
            FetchOutcome::ResyncRequired { floor } => assert_eq!(floor, 11),
            other => panic!("expected resync, got {other:?}"),
        }
        match log.fetch(11, Duration::from_millis(1)) {
            FetchOutcome::Frames { frames, .. } => {
                assert_eq!(frames.len(), MAX_BATCH_FRAMES);
                assert_eq!(frames[0].rseq, 11);
            }
            other => panic!("expected frames, got {other:?}"),
        }
    }

    #[test]
    fn repl_log_reset_moves_every_watermark_past_the_snapshot() {
        let log = ReplLog::new(1, 1, true);
        for rseq in 1..=4 {
            log.push(1, rseq, frame_bytes(1, rseq));
        }
        log.advance_durable(4);
        log.reset(3, 40);
        assert_eq!(log.epoch(), 3);
        assert_eq!(log.head(), 40);
        assert_eq!(log.visible(), 40);
        assert_eq!(log.floor(), 41);
        match log.fetch(41, Duration::from_millis(1)) {
            FetchOutcome::Frames { frames, .. } => assert!(frames.is_empty()),
            other => panic!("expected empty frames, got {other:?}"),
        }
    }

    #[test]
    fn net_fault_plans_fire_once_at_their_site_only() {
        let plan = NetFaultPlan::new(NetFaultSite::Torn, 3);
        // Other sites never charge this plan's counter.
        assert!(!plan.fire(NetFaultSite::Drop));
        assert!(!plan.fire(NetFaultSite::Dup));
        assert!(!plan.fire(NetFaultSite::Torn)); // 1st
        assert!(!plan.fire(NetFaultSite::Torn)); // 2nd
        assert!(plan.fire(NetFaultSite::Torn)); // 3rd: fires
        assert!(!plan.fire(NetFaultSite::Torn)); // fired once, disarmed
    }

    #[test]
    fn partition_fault_refuses_a_window_then_heals() {
        let plan = NetFaultPlan::new(NetFaultSite::Partition, 2);
        assert!(!plan.partition_refuses()); // request 1: healthy
        assert!(plan.partition_refuses()); // request 2: fires
        for _ in 1..PARTITION_REFUSALS {
            assert!(plan.partition_refuses());
        }
        assert!(!plan.partition_refuses()); // healed
        assert!(!plan.partition_refuses());
    }

    #[test]
    fn net_fault_site_names_round_trip() {
        for site in NetFaultSite::ALL {
            assert_eq!(NetFaultSite::parse(site.name()), Some(site));
        }
        assert_eq!(NetFaultSite::parse("net_gremlins"), None);
        assert_eq!(NetFaultSite::parse("wal_write"), None);
    }

    #[test]
    fn backoff_doubles_to_the_cap_and_resets() {
        let log = ReplLog::new(1, 1, true);
        let gen = log.puller_gen();
        log.stop_puller(); // sleeps return immediately
        let mut backoff = Backoff::new(7);
        let mut seen = Vec::new();
        for _ in 0..10 {
            seen.push(backoff.delay);
            backoff.sleep(&log, gen);
        }
        assert_eq!(seen[0], BACKOFF_MIN);
        assert!(seen.windows(2).all(|w| w[1] >= w[0]));
        assert_eq!(*seen.last().unwrap(), BACKOFF_MAX);
        backoff.reset();
        assert_eq!(backoff.delay, BACKOFF_MIN);
    }

    #[test]
    fn backoff_sleeps_stay_inside_the_jitter_band() {
        // With the log live (no stop request), each sleep must run for
        // its full jittered duration: at least `base - base/4` (jitter
        // floor) and not wildly past `base + base/4` (jitter ceiling;
        // generous slack for scheduler noise on loaded CI).
        let log = ReplLog::new(1, 1, true);
        let gen = log.puller_gen();
        let mut backoff = Backoff::new(42);
        for _ in 0..3 {
            let base = backoff.delay.as_millis() as u64;
            let start = Instant::now();
            backoff.sleep(&log, gen);
            let elapsed = start.elapsed().as_millis() as u64;
            assert!(
                elapsed + 1 >= base - base / 4,
                "slept {elapsed}ms, below the jitter floor of base {base}ms"
            );
            assert!(
                elapsed <= base + base / 4 + 100,
                "slept {elapsed}ms, far past the jitter ceiling of base {base}ms"
            );
        }
        // After the doubling ladder, one successful connect resets the
        // next sleep to the floor — measured, not just stored.
        backoff.reset();
        let start = Instant::now();
        backoff.sleep(&log, gen);
        let elapsed = start.elapsed();
        assert!(elapsed >= BACKOFF_MIN - BACKOFF_MIN / 4);
        assert!(elapsed < BACKOFF_MAX / 2, "reset did not take: {elapsed:?}");
    }

    #[test]
    fn next_delay_draws_stay_inside_the_jitter_band_at_every_tier() {
        // The shard proxy's retry sleeps come straight from
        // `next_delay`, so the band must hold as a pure function of the
        // ladder, not just as measured sleep time: every draw lands in
        // `[base - base/4, base + base/4]` while the base doubles from
        // `BACKOFF_MIN` to `BACKOFF_MAX`, and keeps holding at the cap.
        for seed in [1_u64, 42, 0xA5A5, u64::MAX] {
            let mut backoff = Backoff::new(seed);
            for _ in 0..64 {
                let base = backoff.delay.as_millis() as u64;
                let drawn = backoff.next_delay().as_millis() as u64;
                assert!(
                    drawn >= base - base / 4 && drawn <= base + base / 4,
                    "seed {seed}: drew {drawn}ms outside the band of base {base}ms"
                );
            }
            assert_eq!(backoff.delay, BACKOFF_MAX);
        }
    }

    #[test]
    fn puller_generations_invalidate_only_older_pullers() {
        let log = ReplLog::new(1, 1, true);
        let gen = log.puller_gen();
        assert!(!log.puller_stopped(gen));
        log.stop_puller();
        assert!(log.puller_stopped(gen), "the old generation is invalidated");
        let newer = log.puller_gen();
        assert!(
            !log.puller_stopped(newer),
            "a puller spawned at the new generation keeps running"
        );
        log.stop_puller();
        assert!(log.puller_stopped(newer));
    }
}
