//! Endpoint dispatch: the service protocol over parsed requests.
//!
//! Every handler is a pure function of the shared [`ServiceState`] and one
//! [`Request`], returning a [`Response`] — the connection loop in
//! `server.rs` owns all socket I/O. The protocol table lives in the
//! workspace README ("Serving").

use std::time::{Duration, Instant};

use crate::http::{Request, Response};
use crate::json::{self, obj, Json};
use crate::kb::{self, CommitError, StoredKb};
use crate::metrics;
use crate::replication::{
    self, FetchOutcome, NetFaultSite, PeerClient, PeerResponse, ReplLog, NET_DELAY, POLL_WAIT,
};
use crate::shard::{self, Placement, ShardFaultSite, ShardRouter};
use crate::ServiceState;

use arbitrex_core::cache::{cached_warbitrate, CacheStatus};
use arbitrex_core::iterated::iterate_fixed_input;
use arbitrex_core::{
    budgeted_operator, tiered_apply, tiered_arbitrate, Budget, BudgetSpent, Outcome, Quality,
    TierReport,
};
use arbitrex_logic::{parse as parse_formula, Formula, Interp, ModelSet, Sig, ENUM_LIMIT};

/// Longest artificial `hold_ms` accepted (a load-testing knob; see
/// [`budget_and_hold`]).
pub const MAX_HOLD_MS: u64 = 10_000;
/// Most models listed verbatim in a response; larger sets report
/// `n_models` and set `models_truncated`.
pub const MAX_LISTED_MODELS: usize = 256;
/// Cap on `max_steps` for the KB `iterate` action.
pub const MAX_ITERATE_STEPS: usize = 256;

/// Route and handle one request, recording request/latency/response-class
/// telemetry.
pub fn dispatch(state: &ServiceState, req: &Request) -> Response {
    metrics::REQUESTS.incr();
    let start = Instant::now();
    let (histogram, response) = route(state, req);
    if let Some(h) = histogram {
        h.record_nanos(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
    metrics::record_response(response.status);
    response
}

type Routed = (Option<&'static arbitrex_telemetry::Histogram>, Response);

fn route(state: &ServiceState, req: &Request) -> Routed {
    // Split the query string off the target; only the replication WAL
    // endpoint uses one, but a stray `?` must not break path matching.
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (req.path.as_str(), None),
    };
    if let Some(name) = path.strip_prefix("/v1/kb/") {
        return (Some(&metrics::LATENCY_KB), handle_kb(state, req, name));
    }
    if let Some(action) = path.strip_prefix("/v1/replication/") {
        return (
            Some(&metrics::LATENCY_REPL),
            handle_replication(state, req, action, query),
        );
    }
    if let Some(action) = path.strip_prefix("/v1/cluster/") {
        return (
            Some(&metrics::LATENCY_CLUSTER),
            handle_cluster(state, req, action),
        );
    }
    match (req.method.as_str(), path) {
        ("GET", "/v1/kbs") => (Some(&metrics::LATENCY_CLUSTER), handle_kbs(state)),
        ("GET", "/metrics") => (Some(&metrics::LATENCY_METRICS), handle_metrics(state)),
        ("POST", "/v1/arbitrate") => (
            Some(&metrics::LATENCY_ARBITRATE),
            handle_arbitrate(state, req),
        ),
        ("POST", "/v1/fit") => (Some(&metrics::LATENCY_FIT), handle_fit(state, req)),
        ("POST", "/v1/warbitrate") => (
            Some(&metrics::LATENCY_WARBITRATE),
            handle_warbitrate(state, req),
        ),
        (_, "/metrics" | "/v1/arbitrate" | "/v1/fit" | "/v1/warbitrate" | "/v1/kbs") => {
            (None, error_response(405, "method not allowed"))
        }
        _ => (None, error_response(404, "no such endpoint")),
    }
}

/// The uniform error body: `{"error": "...", "code": N}`.
pub fn error_response(status: u16, message: impl Into<String>) -> Response {
    let body = obj([
        ("error", json::s(message.into())),
        ("code", json::n(status as u64)),
    ]);
    Response::json(status, body.to_text())
}

fn ok(body: Json) -> Response {
    Response::json(200, body.to_text())
}

// --- request decoding helpers ----------------------------------------------

fn body_json(req: &Request) -> Result<Json, Response> {
    let text =
        std::str::from_utf8(&req.body).map_err(|_| error_response(400, "body is not UTF-8"))?;
    json::parse(text).map_err(|e| error_response(400, format!("invalid JSON: {e}")))
}

fn field_str<'a>(body: &'a Json, key: &str) -> Result<&'a str, Response> {
    body.get(key)
        .ok_or_else(|| error_response(400, format!("missing field `{key}`")))?
        .as_str()
        .ok_or_else(|| error_response(400, format!("field `{key}` must be a string")))
}

fn field_u64(body: &Json, key: &str) -> Result<Option<u64>, Response> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            error_response(400, format!("field `{key}` must be a non-negative integer"))
        }),
    }
}

fn parse_side(sig: &mut Sig, body: &Json, key: &str) -> Result<Formula, Response> {
    let text = field_str(body, key)?;
    parse_formula(sig, text)
        .map_err(|e| error_response(400, format!("field `{key}` does not parse: {e}")))
}

fn check_width(n_vars: u32) -> Result<(), Response> {
    if n_vars > ENUM_LIMIT {
        return Err(error_response(
            400,
            format!("{n_vars} variables exceed the enumeration limit of {ENUM_LIMIT}"),
        ));
    }
    Ok(())
}

/// Build the request budget and apply the synthetic `hold_ms` latency.
///
/// `timeout_ms` in the body overrides the server default (`0` means an
/// immediate deadline — useful for forcing degraded responses in tests);
/// an absent field uses the server default, where `0` means unlimited.
/// `hold_ms` makes the worker sleep before computing, a documented
/// load-testing knob for exercising queue overflow.
fn budget_and_hold(body: &Json, state: &ServiceState) -> Result<Budget, Response> {
    if let Some(hold) = field_u64(body, "hold_ms")? {
        std::thread::sleep(Duration::from_millis(hold.min(MAX_HOLD_MS)));
    }
    let mut budget = Budget::unlimited();
    match field_u64(body, "timeout_ms")? {
        Some(ms) => budget = budget.with_deadline(Duration::from_millis(ms)),
        None if state.config.timeout_ms > 0 => {
            budget = budget.with_deadline(Duration::from_millis(state.config.timeout_ms));
        }
        None => {}
    }
    if let Some(steps) = field_u64(body, "max_steps")? {
        budget = budget.with_step_limit(steps);
    }
    Ok(budget)
}

// --- response encoding helpers ---------------------------------------------

fn model_names(sig: &Sig, i: Interp) -> Json {
    Json::Arr(
        sig.iter()
            .filter(|(v, _)| i.get(*v))
            .map(|(_, name)| json::s(name))
            .collect(),
    )
}

fn models_json(sig: &Sig, models: &ModelSet) -> (Json, bool) {
    let truncated = models.len() > MAX_LISTED_MODELS;
    let listed = models
        .iter()
        .take(MAX_LISTED_MODELS)
        .map(|i| model_names(sig, i))
        .collect();
    (Json::Arr(listed), truncated)
}

fn spent_json(spent: &BudgetSpent) -> Json {
    let mut members = vec![
        ("scans", json::n(spent.scans)),
        ("nodes", json::n(spent.nodes)),
        ("conflicts", json::n(spent.conflicts)),
        ("models", json::n(spent.models)),
        ("ladder_steps", json::n(spent.ladder_steps)),
        ("tripped", Json::Bool(spent.trip.is_some())),
    ];
    if let Some(trip) = spent.trip {
        members.push(("trip_reason", json::s(trip.reason.name())));
    }
    obj(members)
}

fn note_quality(quality: Quality) {
    if quality != Quality::Exact {
        metrics::DEGRADED.incr();
    }
}

/// Feed a tier report's compile time (if this request paid one) into the
/// `bdd_compile` latency histogram.
fn note_compile(report: &TierReport) {
    if let Some(ns) = report.compile_ns {
        metrics::LATENCY_BDD_COMPILE.record_nanos(ns);
    }
}

fn outcome_json(
    endpoint: &str,
    sig: &Sig,
    outcome: &Outcome,
    cache: CacheStatus,
    report: &TierReport,
) -> Json {
    note_quality(outcome.quality);
    note_compile(report);
    let (models, truncated) = models_json(sig, &outcome.models);
    obj([
        ("endpoint", json::s(endpoint)),
        ("quality", json::s(outcome.quality.name())),
        ("cache", json::s(cache.name())),
        ("backend", json::s(report.backend.name())),
        ("n_vars", json::n(outcome.models.n_vars() as u64)),
        ("n_models", json::n(outcome.models.len() as u64)),
        ("models", models),
        ("models_truncated", Json::Bool(truncated)),
        (
            "formula",
            json::s(outcome.models.to_formula().display(sig).to_string()),
        ),
        ("spent", spent_json(&outcome.spent)),
    ])
}

// --- endpoint handlers ------------------------------------------------------

fn handle_metrics(state: &ServiceState) -> Response {
    let mut text = metrics::metrics_json();
    let (role, epoch, head, visible, lag) = match state.kbs.replication() {
        Some(log) => (
            if log.read_only() { 0 } else { 1 },
            log.epoch(),
            log.head(),
            log.visible(),
            log.last_seen_head().saturating_sub(log.visible()),
        ),
        None => (1, 0, 0, 0, 0),
    };
    let (ring_epoch, ring_members, chain_length, chain_position) = match &state.shards {
        Some(router) => {
            let ring = router.ring();
            let (len, pos) = match router.self_chain() {
                Some(chain) => {
                    let pos = chain
                        .members()
                        .iter()
                        .position(|m| *m == router.self_addr())
                        .unwrap_or(0);
                    (chain.members().len(), pos)
                }
                None => (0, 0),
            };
            (ring.epoch(), ring.members().len(), len, pos)
        }
        None => (0, 0, 0, 0),
    };
    let deposed_heads = state.failover.deposed_count();
    // Splice live gauge values (cache fill, KB count, replication
    // watermarks, ring and chain state) into the document.
    let gauges = format!(
        ", \"gauges\": {{\"cache_entries\": {}, \"cache_capacity\": {}, \"kb_count\": {}, \"compiled_kbs\": {}, \"replication_role\": {role}, \"replication_epoch\": {epoch}, \"replication_head\": {head}, \"replication_visible\": {visible}, \"replication_lag\": {lag}, \"shard_ring_epoch\": {ring_epoch}, \"shard_members\": {ring_members}, \"chain_length\": {chain_length}, \"chain_position\": {chain_position}, \"deposed_heads\": {deposed_heads}}}}}",
        state.cache.len(),
        state.cache.capacity(),
        state.kbs.len(),
        state.compiled.compiled_count()
    );
    text.truncate(text.len() - 1);
    text.push_str(&gauges);
    Response::json(200, text)
}

fn handle_arbitrate(state: &ServiceState, req: &Request) -> Response {
    let body = match body_json(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    match arbitrate_inner(state, &body) {
        Ok(resp) => resp,
        Err(resp) => resp,
    }
}

fn arbitrate_inner(state: &ServiceState, body: &Json) -> Result<Response, Response> {
    let budget = budget_and_hold(body, state)?;
    let mut sig = Sig::new();
    let psi = parse_side(&mut sig, body, "psi")?;
    let phi = parse_side(&mut sig, body, "phi")?;
    check_width(sig.width())?;
    let (outcome, cache, report) = tiered_arbitrate(
        &state.cache,
        &state.compiled,
        &psi,
        &phi,
        sig.width(),
        &budget,
    )
    .map_err(|e| error_response(400, e.to_string()))?;
    Ok(ok(outcome_json(
        "arbitrate",
        &sig,
        &outcome,
        cache,
        &report,
    )))
}

fn handle_fit(state: &ServiceState, req: &Request) -> Response {
    let body = match body_json(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    match fit_inner(state, &body) {
        Ok(resp) => resp,
        Err(resp) => resp,
    }
}

fn fit_inner(state: &ServiceState, body: &Json) -> Result<Response, Response> {
    let op_name = match body.get("op") {
        None => "odist",
        Some(v) => v
            .as_str()
            .ok_or_else(|| error_response(400, "field `op` must be a string"))?,
    };
    let op = budgeted_operator(op_name).ok_or_else(|| {
        error_response(
            400,
            format!(
                "unknown operator `{op_name}`; budgeted operators: {}",
                arbitrex_core::BUDGETED_OPERATOR_NAMES.join(", ")
            ),
        )
    })?;
    let budget = budget_and_hold(body, state)?;
    let mut sig = Sig::new();
    let psi = parse_side(&mut sig, body, "psi")?;
    let mu = parse_side(&mut sig, body, "mu")?;
    check_width(sig.width())?;
    let (outcome, cache, report) = tiered_apply(
        &state.cache,
        &state.compiled,
        op.as_ref(),
        &psi,
        &mu,
        sig.width(),
        &budget,
    )
    .map_err(|e| error_response(400, e.to_string()))?;
    let mut response = outcome_json("fit", &sig, &outcome, cache, &report);
    if let Json::Obj(members) = &mut response {
        members.insert(1, ("op".to_string(), json::s(op_name)));
    }
    Ok(ok(response))
}

fn handle_warbitrate(state: &ServiceState, req: &Request) -> Response {
    let body = match body_json(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    match warbitrate_inner(state, &body) {
        Ok(resp) => resp,
        Err(resp) => resp,
    }
}

fn warbitrate_inner(state: &ServiceState, body: &Json) -> Result<Response, Response> {
    let budget = budget_and_hold(body, state)?;
    let psi_weight = field_u64(body, "psi_weight")?.unwrap_or(1);
    let phi_weight = field_u64(body, "phi_weight")?.unwrap_or(1);
    if psi_weight == 0 || phi_weight == 0 {
        return Err(error_response(400, "weights must be at least 1"));
    }
    let mut sig = Sig::new();
    let psi = parse_side(&mut sig, body, "psi")?;
    let phi = parse_side(&mut sig, body, "phi")?;
    check_width(sig.width())?;
    let n = sig.width();
    for (key, f) in [("psi", &psi), ("phi", &phi)] {
        if ModelSet::of_formula(f, n).is_empty() {
            return Err(error_response(
                400,
                format!("field `{key}` is unsatisfiable; weighted sources need models"),
            ));
        }
    }
    let (outcome, cache) =
        cached_warbitrate(&state.cache, &psi, psi_weight, &phi, phi_weight, n, &budget)
            .map_err(|e| error_response(400, e.to_string()))?;
    note_quality(outcome.quality);
    let support_size = outcome.kb.support_size();
    let support: Vec<Json> = outcome
        .kb
        .support()
        .take(MAX_LISTED_MODELS)
        .map(|(i, w)| obj([("model", model_names(&sig, i)), ("weight", json::n(w))]))
        .collect();
    Ok(ok(obj([
        ("endpoint", json::s("warbitrate")),
        ("quality", json::s(outcome.quality.name())),
        ("cache", json::s(cache.name())),
        ("n_vars", json::n(n as u64)),
        ("support_size", json::n(support_size as u64)),
        ("support", Json::Arr(support)),
        (
            "support_truncated",
            Json::Bool(support_size > MAX_LISTED_MODELS),
        ),
        ("total_weight", json::n(outcome.kb.total_weight() as u64)),
        ("spent", spent_json(&outcome.spent)),
    ])))
}

// --- the replication endpoints ----------------------------------------------

fn handle_replication(
    state: &ServiceState,
    req: &Request,
    action: &str,
    query: Option<&str>,
) -> Response {
    let log = match state.kbs.replication() {
        Some(log) => log,
        None => {
            return error_response(
                503,
                "replication requires a durable store (start with --state-dir)",
            )
        }
    };
    match (req.method.as_str(), action) {
        ("GET", "wal") => repl_wal(state, log, query),
        ("GET", "snapshot") => repl_snapshot(state),
        ("GET", "digest") => repl_digest(state, log),
        ("GET", "status") => repl_status(state, log),
        ("POST", "promote") => repl_promote(state),
        ("POST", "reconcile") => repl_reconcile(state, req),
        (_, "wal" | "snapshot" | "digest" | "status" | "promote" | "reconcile") => {
            error_response(405, "method not allowed")
        }
        _ => error_response(404, "no such endpoint"),
    }
}

/// `GET /v1/replication/wal?from_seq=N`: a chunked batch of stamped WAL
/// frames from cursor `N` (one frame per HTTP chunk), long-polling
/// briefly when the replica is caught up. `409` with `resync: true`
/// when the cursor is older than frame retention. The configured
/// `net_*` fault plan is injected here — this endpoint *is* the
/// replication transport.
fn repl_wal(state: &ServiceState, log: &ReplLog, query: Option<&str>) -> Response {
    let from = query
        .into_iter()
        .flat_map(|q| q.split('&'))
        .find_map(|kv| kv.strip_prefix("from_seq="))
        .and_then(|v| v.parse::<u64>().ok());
    let from = match from {
        Some(v) => v,
        None => return error_response(400, "query `from_seq=N` is required"),
    };
    let fault = state.config.net_fault.as_ref();
    if let Some(plan) = fault {
        if plan.partition_refuses() {
            let mut refused = error_response(503, "injected fault: network partition");
            refused.force_close = true;
            return refused;
        }
        if plan.fire(NetFaultSite::Delay) {
            std::thread::sleep(NET_DELAY);
        }
    }
    match log.fetch(from, POLL_WAIT) {
        FetchOutcome::ResyncRequired { floor } => {
            let body = obj([
                (
                    "error",
                    json::s(format!(
                        "cursor {from} is below the retention floor {floor}; resync from a snapshot"
                    )),
                ),
                ("code", json::n(409)),
                ("resync", Json::Bool(true)),
                ("floor", json::n(floor)),
            ]);
            Response::json(409, body.to_text())
        }
        FetchOutcome::Frames { frames, head } => {
            metrics::REPL_BATCHES_SERVED.incr();
            let mut chunks = Vec::with_capacity(frames.len());
            let mut abort = false;
            for frame in &frames {
                if let Some(plan) = fault {
                    if plan.fire(NetFaultSite::Drop) {
                        // Cut the stream: no terminator, socket closed.
                        abort = true;
                        break;
                    }
                    if plan.fire(NetFaultSite::Torn) {
                        // Corrupt in transit; the replica's CRC check
                        // must refuse this frame.
                        let mut torn = frame.bytes.clone();
                        let last = torn.len() - 1;
                        torn[last] ^= 0x01;
                        chunks.push(torn);
                        metrics::REPL_FRAMES_SHIPPED.incr();
                        continue;
                    }
                    if plan.fire(NetFaultSite::Dup) {
                        chunks.push(frame.bytes.clone());
                    }
                }
                chunks.push(frame.bytes.clone());
                metrics::REPL_FRAMES_SHIPPED.incr();
            }
            let mut response = Response::binary_chunked(200, chunks);
            response.chunk_abort = abort;
            response
                .extra_headers
                .push(("X-Arbitrex-Epoch", log.epoch().to_string()));
            response
                .extra_headers
                .push(("X-Arbitrex-Head", head.to_string()));
            response
        }
    }
}

/// `GET /v1/replication/snapshot`: the deterministic in-memory snapshot
/// image of the current state, for replica resync.
fn repl_snapshot(state: &ServiceState) -> Response {
    match state.kbs.snapshot_image() {
        Ok(bytes) => Response::binary_chunked(200, vec![bytes]),
        Err(e) => error_response(500, e.to_string()),
    }
}

/// `GET /v1/replication/digest`: per-KB `(name, seq, canonical content
/// hash)` for anti-entropy comparison.
fn repl_digest(state: &ServiceState, log: &ReplLog) -> Response {
    let kbs: Vec<Json> = state
        .kbs
        .digest()
        .into_iter()
        .map(|(name, seq, hash)| {
            obj([
                ("name", json::s(name)),
                ("seq", json::n(seq)),
                ("hash", json::s(format!("{hash:016x}"))),
            ])
        })
        .collect();
    ok(obj([
        ("epoch", json::n(log.epoch())),
        ("kbs", Json::Arr(kbs)),
    ]))
}

/// `GET /v1/replication/status`: role, epoch, watermarks, and the ring
/// epoch this node routes by. This endpoint doubles as the failure
/// detector's probe, so the configured `net_partition` fault is
/// injected here too — chaos runs can make a healthy head *look* dead
/// to its probers and exercise the quorum veto.
fn repl_status(state: &ServiceState, log: &ReplLog) -> Response {
    if let Some(plan) = &state.config.net_fault {
        if plan.partition_refuses() {
            let mut refused = error_response(503, "injected fault: network partition");
            refused.force_close = true;
            return refused;
        }
    }
    let ring_epoch = state.shards.as_ref().map(|r| r.epoch()).unwrap_or(0);
    ok(obj([
        ("ring_epoch", json::n(ring_epoch)),
        (
            "role",
            json::s(if log.read_only() {
                "replica"
            } else {
                "primary"
            }),
        ),
        ("epoch", json::n(log.epoch())),
        ("head", json::n(log.head())),
        ("visible", json::n(log.visible())),
        ("floor", json::n(log.floor())),
        ("last_seen_head", json::n(log.last_seen_head())),
    ]))
}

/// `POST /v1/replication/promote`: explicit failover — bump the fencing
/// epoch, stop following, accept writes.
fn repl_promote(state: &ServiceState) -> Response {
    match state.kbs.promote() {
        Ok((epoch, last_rseq)) => ok(obj([
            ("promoted", Json::Bool(true)),
            ("epoch", json::n(epoch)),
            ("last_rseq", json::n(last_rseq)),
        ])),
        Err(e) => error_response(503, e.to_string()),
    }
}

/// `POST /v1/replication/reconcile {"peer": "host:port"}`: one
/// anti-entropy pass merging divergent KBs with `Δ` arbitration.
fn repl_reconcile(state: &ServiceState, req: &Request) -> Response {
    let body = match body_json(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let peer = match field_str(&body, "peer") {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    match replication::reconcile_with_peer(state, peer) {
        Ok(summary) => ok(replication::summary_json(peer, &summary)),
        Err(message) => error_response(502, message),
    }
}

// --- sharding: listing and cluster membership -------------------------------

/// `GET /v1/kbs`: every KB on this node with its sequence number and
/// canonical content hash — the listing shard handoff (and operators)
/// walk. The hash rendering matches `/v1/replication/digest` so either
/// endpoint can feed a digest comparison.
fn handle_kbs(state: &ServiceState) -> Response {
    let kbs: Vec<Json> = state
        .kbs
        .digest()
        .into_iter()
        .map(|(name, seq, hash)| {
            obj([
                ("name", json::s(name)),
                ("seq", json::n(seq)),
                ("hash", json::s(format!("{hash:016x}"))),
            ])
        })
        .collect();
    let epoch = state.kbs.replication().map(|log| log.epoch()).unwrap_or(0);
    let ring_epoch = state.shards.as_ref().map(|r| r.epoch()).unwrap_or(0);
    ok(obj([
        ("count", json::n(kbs.len() as u64)),
        ("epoch", json::n(epoch)),
        ("ring_epoch", json::n(ring_epoch)),
        ("kbs", Json::Arr(kbs)),
    ]))
}

/// Reject cluster calls on a node that was not started as a ring member.
fn shard_router(state: &ServiceState) -> Result<&ShardRouter, Response> {
    state
        .shards
        .as_ref()
        .ok_or_else(|| error_response(503, "sharding is not enabled (start with --shard-ring)"))
}

fn handle_cluster(state: &ServiceState, req: &Request, action: &str) -> Response {
    match (req.method.as_str(), action) {
        ("GET", "ring") => cluster_ring(state),
        ("POST", "join") => cluster_membership(state, req, true),
        ("POST", "leave") => cluster_membership(state, req, false),
        ("POST", "sync") => cluster_sync(state, req),
        ("POST", "release") => cluster_release(state, req),
        ("POST", "probe") => cluster_probe(state, req),
        ("POST", "enlist") => cluster_enlist(state, req),
        (_, "ring" | "join" | "leave" | "sync" | "release" | "probe" | "enlist") => {
            error_response(405, "method not allowed")
        }
        _ => error_response(404, "unknown cluster action"),
    }
}

/// `GET /v1/cluster/ring`: the membership view this node routes by.
fn cluster_ring(state: &ServiceState) -> Response {
    let router = match shard_router(state) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let ring = router.ring();
    let members: Vec<Json> = ring.members().iter().map(|m| json::s(m.clone())).collect();
    let owned_here = state
        .kbs
        .digest()
        .iter()
        .filter(|(name, _, _)| matches!(router.place(name), Placement::Local))
        .count();
    ok(obj([
        ("epoch", json::n(ring.epoch())),
        ("self", json::s(router.self_addr())),
        ("vnodes", json::n(ring.vnodes() as u64)),
        ("members", Json::Arr(members)),
        ("kbs_here", json::n(state.kbs.len() as u64)),
        ("owned_here", json::n(owned_here as u64)),
    ]))
}

/// `POST /v1/cluster/probe {"addr": "host:port"}`: a quorum-check
/// vote. This node probes `addr` itself and reports whether it could
/// reach it — a suspecting replica asks its peers before promoting, so
/// one partitioned prober cannot depose a healthy head alone.
fn cluster_probe(state: &ServiceState, req: &Request) -> Response {
    if let Err(resp) = shard_router(state) {
        return resp;
    }
    let body = match body_json(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let addr = match field_str(&body, "addr") {
        Ok(a) => a,
        Err(resp) => return resp,
    };
    if addr.is_empty() {
        return error_response(400, "field `addr` must be a host:port");
    }
    let reachable = crate::failover::probe_status(addr).is_some();
    ok(obj([
        ("addr", json::s(addr)),
        ("reachable", Json::Bool(reachable)),
    ]))
}

/// `POST /v1/cluster/enlist {"host": "a", "addr": "b"}`: append `b` to
/// the chain serving `a` as its new replica tail. Chains hash by their
/// stable anchor, so enlistment moves no data and needs no write fence
/// — the grown ring just broadcasts, and the new tail demotes itself
/// and retargets its puller when it adopts it.
fn cluster_enlist(state: &ServiceState, req: &Request) -> Response {
    let router = match shard_router(state) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let Some(_membership) = router.try_membership() else {
        return membership_busy_response();
    };
    let body = match body_json(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let host = match field_str(&body, "host") {
        Ok(h) => h,
        Err(resp) => return resp,
    };
    let addr = match field_str(&body, "addr") {
        Ok(a) => a,
        Err(resp) => return resp,
    };
    if host.is_empty() || addr.is_empty() {
        return error_response(400, "fields `host` and `addr` must be host:port");
    }
    match router.enlist_member(host, addr) {
        Some(ring) => {
            let synced = crate::failover::broadcast_ring(state, &ring, &[]);
            ok(obj([
                ("addr", json::s(addr)),
                ("enlisted", Json::Bool(true)),
                ("epoch", json::n(ring.epoch())),
                ("synced", json::n(synced)),
            ]))
        }
        // `host` serves nowhere, or `addr` already serves: no-op.
        None => ok(obj([
            ("addr", json::s(addr)),
            ("enlisted", Json::Bool(false)),
            ("epoch", json::n(router.epoch())),
        ])),
    }
}

/// The ring-sync broadcast body: the full membership list plus the new
/// epoch, and on a leave the departed node as an extra handoff source.
fn ring_sync_body(ring: &shard::ShardRing, source: Option<&str>) -> String {
    let members: Vec<Json> = ring.members().iter().map(|m| json::s(m.clone())).collect();
    let mut fields = vec![
        ("epoch".to_string(), json::n(ring.epoch())),
        ("members".to_string(), Json::Arr(members)),
    ];
    if let Some(src) = source {
        fields.push(("source".to_string(), json::s(src)));
    }
    Json::Obj(fields).to_text()
}

/// Rebalance sources for a node holding `ring`: every other chain
/// *head* (heads are authoritative; a replica's copy may lag its
/// chain), plus (on a leave) the departed node whose shards must drain
/// somewhere.
fn rebalance_sources(ring: &shard::ShardRing, self_addr: &str, extra: Option<&str>) -> Vec<String> {
    let mut sources: Vec<String> = ring
        .chains()
        .iter()
        .map(|c| c.head().to_string())
        .filter(|m| m.as_str() != self_addr)
        .collect();
    if let Some(addr) = extra {
        if addr != self_addr && !sources.iter().any(|s| s == addr) {
            sources.push(addr.to_string());
        }
    }
    sources
}

/// The typed refusal when two membership operations collide on one
/// node: the router has a single transition slot, and overlapping
/// operations would clobber each other's write fence — the caller
/// retries once the in-flight change completes.
fn membership_busy_response() -> Response {
    let body = obj([
        (
            "error",
            json::s("a membership change is already in progress on this node; retry"),
        ),
        ("code", json::n(503)),
    ]);
    let mut resp = Response::json(503, body.to_text());
    resp.extra_headers.push(("Retry-After", "0".to_string()));
    resp
}

/// `POST /v1/cluster/{join,leave}`: mutate membership on this node, push
/// the new ring to every affected peer (each rebalances inside its sync
/// handler), then run the local rebalance pass. Synchronous by design:
/// when the request returns, every reachable member routes by the new
/// epoch and has pulled the shards it gained. Membership operations
/// serialize through the router's single slot; a colliding operation is
/// refused with a typed 503 instead of clobbering the active fence.
fn cluster_membership(state: &ServiceState, req: &Request, join: bool) -> Response {
    let router = match shard_router(state) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let Some(_membership) = router.try_membership() else {
        return membership_busy_response();
    };
    let body = match body_json(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let addr = match field_str(&body, "addr") {
        Ok(a) => a,
        Err(resp) => return resp,
    };
    if addr.is_empty() {
        return error_response(400, "field `addr` must be a host:port");
    }
    let before = router.ring();
    let changed = if join {
        router.add_member(addr)
    } else {
        router.remove_member(addr)
    };
    let verb = if join { "joined" } else { "left" };
    let Some(ring) = changed else {
        // Already in the requested state: idempotent no-op.
        return ok(obj([
            ("addr", json::s(addr)),
            (verb, Json::Bool(false)),
            ("epoch", json::n(router.epoch())),
        ]));
    };
    let self_addr = router.self_addr();
    let source = if join { None } else { Some(addr) };
    // Fence writes for every KB changing owner until the local
    // rebalance pass lands (peers fence themselves inside their sync
    // handlers).
    router.begin_transition(before);
    let sync_body = ring_sync_body(&ring, source);
    // Broadcast to every serving *address* (replicas included — they
    // route by the ring too); the departed node also gets the sync so
    // it stops answering for shards it no longer owns.
    let mut targets: Vec<String> = ring
        .serving_addrs()
        .into_iter()
        .filter(|m| m.as_str() != self_addr)
        .collect();
    if !join && addr != self_addr {
        targets.push(addr.to_string());
    }
    let mut synced = 0u64;
    for target in &targets {
        let acked = PeerClient::connect(target)
            .and_then(|mut client| client.request("POST", "/v1/cluster/sync", Some(&sync_body)))
            .map(|resp| resp.status == 200)
            .unwrap_or(false);
        if acked {
            synced += 1;
        }
    }
    let summary = shard::rebalance(state, &rebalance_sources(&ring, &self_addr, source));
    router.end_transition();
    let members: Vec<Json> = ring.members().iter().map(|m| json::s(m.clone())).collect();
    ok(obj([
        ("addr", json::s(addr)),
        (verb, Json::Bool(true)),
        ("epoch", json::n(ring.epoch())),
        ("members", Json::Arr(members)),
        ("synced", json::n(synced)),
        ("rebalance", summary.to_json()),
    ]))
}

/// `POST /v1/cluster/sync`: adopt a superseding ring and immediately
/// pull the shards the new placement assigns here. A ring that does not
/// supersede under the `(epoch, member set)` total order is
/// acknowledged without action, which makes redelivery safe. Like
/// join/leave, syncs serialize through the router's membership slot.
fn cluster_sync(state: &ServiceState, req: &Request) -> Response {
    let router = match shard_router(state) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    let Some(_membership) = router.try_membership() else {
        return membership_busy_response();
    };
    let body = match body_json(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let epoch = match field_u64(&body, "epoch") {
        Ok(Some(e)) => e,
        Ok(None) => return error_response(400, "missing field `epoch`"),
        Err(resp) => return resp,
    };
    let members: Vec<String> = match body.get("members").and_then(|v| v.as_array()) {
        Some(arr) => {
            let mut out = Vec::with_capacity(arr.len());
            for v in arr {
                match v.as_str() {
                    Some(s) => out.push(s.to_string()),
                    None => return error_response(400, "field `members` must be strings"),
                }
            }
            out
        }
        None => return error_response(400, "missing field `members`"),
    };
    let source = body.get("source").and_then(|v| v.as_str());
    // Rebalance against the *candidate* ring first, adopt second: until
    // the pull completes this node routes by its old ring, so writes for
    // the migrating KBs bounce 307 between owners (brief unavailability)
    // instead of committing onto a copy the pull would overwrite.
    let mut fields = Vec::new();
    let adopted = match router.preview(&members, epoch) {
        Some(ring) if router.ring().same_placement(&ring) => {
            // Pure chain-topology change (a head rotation or a replica
            // enlistment): every name stays on its chain, so no write
            // fence and no rebalance — adopt in place.
            router.adopt(&members, epoch)
        }
        Some(ring) => {
            router.begin_transition(ring.clone());
            let sources = rebalance_sources(&ring, &router.self_addr(), source);
            let summary = shard::rebalance_onto(state, &sources, &ring);
            let adopted = router.adopt(&members, epoch);
            router.end_transition();
            fields.push(("rebalance".to_string(), summary.to_json()));
            adopted
        }
        None => false,
    };
    if adopted {
        // The adopted ring may change this node's chain role — a
        // deposed head re-listed as a tail, or a standalone primary
        // enlisted behind a head — so align the store's write side now.
        // The puller retargets on the failure detector's next tick.
        crate::failover::reconcile_role(state);
    }
    fields.insert(0, ("adopted".to_string(), Json::Bool(adopted)));
    fields.insert(1, ("epoch".to_string(), json::n(router.epoch())));
    ok(Json::Obj(fields))
}

/// `POST /v1/cluster/release`: the handoff's final step. The new owner
/// proves it pulled seq `seq`; the source deletes its copy only if that
/// is still the latest — a racing commit turns the release into a typed
/// 409 and the puller re-pulls. The injected `shard_handoff_torn` fault
/// fails here, leaving both copies alive for anti-entropy to reconcile.
fn cluster_release(state: &ServiceState, req: &Request) -> Response {
    if let Err(resp) = shard_router(state) {
        return resp;
    }
    let body = match body_json(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let name = match field_str(&body, "name") {
        Ok(n) => n,
        Err(resp) => return resp,
    };
    if !kb::valid_name(name) {
        return error_response(400, "KB names are [A-Za-z0-9_-], at most 64 chars");
    }
    let seq = match field_u64(&body, "seq") {
        Ok(Some(s)) => s,
        Ok(None) => return error_response(400, "missing field `seq`"),
        Err(resp) => return resp,
    };
    if let Some(plan) = &state.config.shard_fault {
        if plan.fire(ShardFaultSite::HandoffTorn) {
            return error_response(503, "injected fault: shard handoff torn");
        }
    }
    match state.kbs.delete(name, Some(seq)) {
        Ok(Some(_)) => {
            metrics::SHARD_RELEASES.incr();
            ok(obj([
                ("name", json::s(name)),
                ("released", Json::Bool(true)),
            ]))
        }
        // Already gone: the handoff converged some other way.
        Ok(None) => ok(obj([
            ("name", json::s(name)),
            ("released", Json::Bool(false)),
        ])),
        Err(CommitError::Conflict { current }) => {
            let body = obj([
                (
                    "error",
                    json::s(format!(
                        "release of `{name}` at seq {seq} conflicts with local seq {current}"
                    )),
                ),
                ("code", json::n(409)),
                ("released", Json::Bool(false)),
                ("seq", json::n(current)),
            ]);
            Response::json(409, body.to_text())
        }
        Err(CommitError::Io(e)) => error_response(500, e.to_string()),
    }
}

// --- the KB endpoint --------------------------------------------------------

/// Stamp a mutation response with the commit's replication sequence
/// number, the token follower reads pass back via `X-Arbitrex-Min-Seq`.
fn with_commit_seq(mut response: Response, rseq: u64) -> Response {
    if rseq > 0 {
        response
            .extra_headers
            .push(("X-Arbitrex-Seq", rseq.to_string()));
    }
    response
}

fn handle_kb(state: &ServiceState, req: &Request, name: &str) -> Response {
    if !kb::valid_name(name) {
        return error_response(400, "KB names are [A-Za-z0-9_-], at most 64 chars");
    }
    // Shard routing: on a ring member, a KB owned elsewhere is proxied
    // (reads) or redirected (writes) instead of being served from a copy
    // that would fork history. Handoff pulls and proxy legs carry the
    // internal bypass header so the source keeps serving its local copy
    // mid-migration.
    if let Some(router) = &state.shards {
        if req.header(shard::INTERNAL_HEADER).is_none() {
            if let Some(routed) = shard_route(state, router, req, name) {
                return routed;
            }
        }
    }
    // A replica serves reads only; mutations must go to the primary (or
    // wait for promotion).
    if req.method.as_str() != "GET" {
        if let Some(log) = state.kbs.replication() {
            if log.read_only() {
                return error_response(
                    503,
                    "this node is a read-only replica; write to the primary",
                );
            }
        }
    }
    let response = match req.method.as_str() {
        "GET" => kb_get(state, req, name),
        "DELETE" => kb_delete(state, name, None),
        "POST" => {
            let body = match body_json(req) {
                Ok(b) => b,
                Err(resp) => return resp,
            };
            match kb_post(state, name, &body) {
                Ok(resp) => resp,
                Err(resp) => resp,
            }
        }
        _ => error_response(405, "method not allowed"),
    };
    stamp_ring_epoch(state, response)
}

/// Every KB response from a ring member carries the serving node's ring
/// epoch so clients (and the storm harness) can detect membership drift
/// without a separate poll.
fn stamp_ring_epoch(state: &ServiceState, mut response: Response) -> Response {
    if let Some(router) = &state.shards {
        response
            .extra_headers
            .push(("X-Arbitrex-Ring-Epoch", router.epoch().to_string()));
    }
    response
}

/// The typed stale-ring refusal: a client that pinned a ring epoch via
/// `X-Arbitrex-Ring-Epoch` gets 421 instead of a commit the current ring
/// would route elsewhere — the split-brain write becomes a visible retry.
fn stale_ring_response(current: u64, claimed: u64) -> Response {
    metrics::SHARD_STALE_RING_REFUSALS.incr();
    let body = obj([
        (
            "error",
            json::s(format!(
                "ring epoch {claimed} is stale; this node is at epoch {current}"
            )),
        ),
        ("code", json::n(421)),
        ("ring_epoch", json::n(current)),
        ("claimed", json::n(claimed)),
    ]);
    let mut resp = Response::json(421, body.to_text());
    resp.extra_headers
        .push(("X-Arbitrex-Ring-Epoch", current.to_string()));
    resp
}

/// Decide whether this node answers for `name` or routes away. `None`
/// means "ours: fall through to the local handlers".
fn shard_route(
    state: &ServiceState,
    router: &ShardRouter,
    req: &Request,
    name: &str,
) -> Option<Response> {
    let epoch = router.epoch();
    if let Some(claimed) = req
        .header("x-arbitrex-ring-epoch")
        .and_then(|v| v.parse::<u64>().ok())
    {
        if claimed != epoch {
            return Some(stale_ring_response(epoch, claimed));
        }
    }
    if let Some(plan) = &state.config.shard_fault {
        if plan.fire(ShardFaultSite::RingStale) {
            // Injected: pretend the caller pinned a ring one epoch behind.
            return Some(stale_ring_response(epoch, epoch.saturating_sub(1)));
        }
    }
    // The handoff write fence: while a membership transition is pulling
    // this KB between owners, no node accepts external writes for it —
    // a commit landing mid-pull would be overwritten by the migration.
    if req.method.as_str() != "GET" && router.in_transition(name) {
        metrics::SHARD_WRITES_FENCED.incr();
        let body = obj([
            (
                "error",
                json::s(format!(
                    "KB `{name}` is mid-handoff (ring transition in progress); retry"
                )),
            ),
            ("code", json::n(503)),
            ("ring_epoch", json::n(epoch)),
        ]);
        let mut resp = Response::json(503, body.to_text());
        resp.extra_headers.push(("Retry-After", "0".to_string()));
        resp.extra_headers
            .push(("X-Arbitrex-Ring-Epoch", epoch.to_string()));
        return Some(resp);
    }
    // Reads are served by *any* member of the owning chain — replicas
    // hold the head's KBs through WAL replication, and the
    // `X-Arbitrex-Min-Seq` gate turns replica lag into a typed 412
    // instead of a stale answer. That keeps reads available through a
    // failover blackout.
    if req.method.as_str() == "GET" && router.read_serves_locally(name) {
        return None;
    }
    match router.place(name) {
        Placement::Local => {
            // The deposed-head routing fence: the ring records each
            // chain's WAL epoch at its last rotation. A listed head
            // whose own store is *behind* that epoch is serving a
            // superseded history (a deposed head that restarted, or a
            // store rolled back under a live ring) — accepting the
            // write would fork from the chain's true timeline.
            if let (Some(log), Some(chain)) = (state.kbs.replication(), router.self_chain()) {
                if chain.repl_epoch() > log.epoch() {
                    metrics::FAILOVER_FENCED_WRITES.incr();
                    let body = obj([
                        (
                            "error",
                            json::s(format!(
                                "this node's store (epoch {}) is behind its chain's \
                                 recorded epoch {}; refusing the write until it resyncs",
                                log.epoch(),
                                chain.repl_epoch()
                            )),
                        ),
                        ("code", json::n(503)),
                        ("ring_epoch", json::n(epoch)),
                    ]);
                    let mut resp = Response::json(503, body.to_text());
                    resp.extra_headers.push(("Retry-After", "1".to_string()));
                    resp.extra_headers
                        .push(("X-Arbitrex-Ring-Epoch", epoch.to_string()));
                    return Some(resp);
                }
            }
            None
        }
        Placement::Remote(owner) => {
            if req.method.as_str() == "GET" {
                Some(shard_proxy_get(state, router, req, name, &owner, epoch))
            } else {
                metrics::SHARD_REDIRECTS.incr();
                let body = obj([
                    (
                        "error",
                        json::s(format!("KB `{name}` is owned by shard {owner}")),
                    ),
                    ("code", json::n(307)),
                    ("owner", json::s(owner.as_str())),
                ]);
                let mut resp = Response::json(307, body.to_text());
                resp.extra_headers
                    .push(("Location", format!("http://{owner}/v1/kb/{name}")));
                resp.extra_headers
                    .push(("X-Arbitrex-Shard-Owner", owner.clone()));
                resp.extra_headers
                    .push(("X-Arbitrex-Ring-Epoch", epoch.to_string()));
                Some(resp)
            }
        }
    }
}

/// How many times a proxied read is attempted before the typed 502.
const PROXY_ATTEMPTS: u32 = 3;

/// Longest slice of a peer's `Retry-After` a proxy leg will honor — a
/// read held longer than this is better answered by the next chain
/// member than by waiting out the peer's estimate.
const PROXY_RETRY_CAP: Duration = Duration::from_millis(250);

/// One proxy leg to `target`; `Err` is a transport failure.
fn proxy_leg(
    state: &ServiceState,
    target: &str,
    name: &str,
    min_seq: Option<&str>,
) -> Result<PeerResponse, String> {
    if let Some(plan) = &state.config.shard_fault {
        if plan.fire(ShardFaultSite::ProxyDrop) {
            return Err("injected fault: shard proxy dropped".to_string());
        }
    }
    let mut headers = vec![(shard::INTERNAL_HEADER, "1")];
    if let Some(min) = min_seq {
        headers.push(("x-arbitrex-min-seq", min));
    }
    PeerClient::connect(target)
        .map_err(|e| format!("connect {target}: {e}"))
        .and_then(|mut client| {
            client
                .request_with_headers("GET", &format!("/v1/kb/{name}"), None, &headers)
                .map_err(|e| format!("proxy to {target}: {e}"))
        })
}

/// A peer's `Retry-After` header in seconds, if it sent one.
fn retry_after_of(peer: &PeerResponse) -> Option<Duration> {
    peer.headers
        .iter()
        .find(|(k, _)| k == "retry-after")
        .and_then(|(_, v)| v.trim().parse::<u64>().ok())
        .map(Duration::from_secs)
}

/// Proxy a read to the owning chain. The forwarded request carries the
/// internal bypass header (so the target serves even mid-handoff) and
/// the caller's read-your-writes watermark, if any. Transient failures
/// — transport errors, 503 (fenced or mid-transition), 421 (stale
/// ring) — are retried with the replication puller's jittered
/// capped-exponential backoff, walking down the owning chain (head
/// first, then replicas) so a read stays answerable through a failover
/// blackout; a peer's `Retry-After` is honored up to a cap.
fn shard_proxy_get(
    state: &ServiceState,
    router: &ShardRouter,
    req: &Request,
    name: &str,
    owner: &str,
    epoch: u64,
) -> Response {
    let mut targets = router.read_targets(name);
    if targets.is_empty() {
        targets.push(owner.to_string());
    }
    let min_seq = req.header("x-arbitrex-min-seq").map(str::to_string);
    // Deterministic per-name seed: tests can assert the jitter band.
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    });
    let mut backoff = replication::Backoff::new(seed);
    let mut last_failure = String::new();
    for attempt in 0..PROXY_ATTEMPTS {
        let target = &targets[attempt as usize % targets.len()];
        let retry_after = match proxy_leg(state, target, name, min_seq.as_deref()) {
            Ok(peer) if peer.status != 503 && peer.status != 421 => {
                metrics::SHARD_PROXIED_READS.incr();
                // Mid-handoff read race: the ring already points at the
                // new owner but the pull has not landed there yet, so
                // the local copy (not yet released) is still the truth —
                // serve it. Scoped strictly to an active transition:
                // outside one, the owner's 404 is authoritative, and a
                // stale leftover copy (e.g. after a torn handoff) must
                // not resurrect a KB that was legitimately deleted.
                let fallback = (peer.status == 404 && router.in_transition(name))
                    .then(|| local_kb_view(state, name))
                    .flatten();
                let mut resp = match fallback {
                    Some(local) => ok(local),
                    None => match String::from_utf8(peer.body) {
                        Ok(text) => Response::json(peer.status, text),
                        Err(_) => {
                            error_response(502, format!("shard {target} returned a non-JSON body"))
                        }
                    },
                };
                resp.extra_headers
                    .push(("X-Arbitrex-Shard-Owner", target.to_string()));
                resp.extra_headers
                    .push(("X-Arbitrex-Ring-Epoch", epoch.to_string()));
                return resp;
            }
            Ok(peer) => {
                last_failure = format!("shard {target} refused with {}", peer.status);
                retry_after_of(&peer)
            }
            Err(message) => {
                last_failure = message;
                None
            }
        };
        if attempt + 1 < PROXY_ATTEMPTS {
            metrics::FAILOVER_PROXY_RETRIES.incr();
            let mut delay = backoff.next_delay();
            if let Some(hint) = retry_after {
                delay = delay.max(hint.min(PROXY_RETRY_CAP));
            }
            std::thread::sleep(delay);
        }
    }
    metrics::SHARD_PROXY_FAILURES.incr();
    let mut resp = error_response(
        502,
        format!("{last_failure} (after {PROXY_ATTEMPTS} attempts)"),
    );
    resp.extra_headers
        .push(("X-Arbitrex-Shard-Owner", owner.to_string()));
    resp.extra_headers
        .push(("X-Arbitrex-Ring-Epoch", epoch.to_string()));
    resp
}

/// The local copy of `name` as a response body, if this node holds a
/// committed copy (seq > 0).
fn local_kb_view(state: &ServiceState, name: &str) -> Option<Json> {
    let entry = state.kbs.entry(name)?;
    let kb = entry.lock().unwrap();
    (kb.seq > 0).then(|| kb_view(name, &kb))
}

fn kb_view(name: &str, kb: &StoredKb) -> Json {
    obj([
        ("name", json::s(name)),
        ("formula", json::s(kb.formula.display(&kb.sig).to_string())),
        ("n_vars", json::n(kb.sig.width() as u64)),
        ("seq", json::n(kb.seq)),
    ])
}

/// The typed optimistic-concurrency failure: 409 carrying both the
/// sequence number actually current and the one the caller guarded on,
/// so the client can re-read and retry.
fn conflict_response(current: u64, wanted: u64) -> Response {
    let body = obj([
        (
            "error",
            json::s(format!(
                "if_seq {wanted} does not match current seq {current}"
            )),
        ),
        ("code", json::n(409)),
        ("seq", json::n(current)),
        ("if_seq", json::n(wanted)),
    ]);
    Response::json(409, body.to_text())
}

fn commit_error_response(e: CommitError, wanted: Option<u64>) -> Response {
    match e {
        CommitError::Conflict { current } => conflict_response(current, wanted.unwrap_or(0)),
        CommitError::Io(err) => error_response(
            500,
            format!("durable commit failed: {err}; the KB is unchanged"),
        ),
    }
}

/// Run a due periodic snapshot. Called only after every entry lock is
/// released; a failure is counted and absorbed — the commits it would
/// have folded stay safe in the WAL.
fn run_due_snapshot(state: &ServiceState, due: bool) {
    if due && state.kbs.maybe_snapshot().is_err() {
        state.kbs.note_snapshot_error();
    }
}

fn kb_get(state: &ServiceState, req: &Request, name: &str) -> Response {
    // Read-your-writes across failover: a client holding the
    // `X-Arbitrex-Seq` of its commit asks any node to only answer once
    // that seq is visible; a lagging replica answers 412 + Retry-After
    // instead of serving a stale read. Ignored on in-memory stores,
    // which have no replication watermark.
    if let Some(min_seq) = req
        .header("x-arbitrex-min-seq")
        .and_then(|v| v.parse::<u64>().ok())
    {
        if let Some(log) = state.kbs.replication() {
            let visible = log.visible();
            if visible < min_seq {
                let body = obj([
                    (
                        "error",
                        json::s(format!(
                            "read requires seq {min_seq}; only {visible} is visible here"
                        )),
                    ),
                    ("code", json::n(412)),
                    ("min_seq", json::n(min_seq)),
                    ("visible", json::n(visible)),
                ]);
                let mut stale = Response::json(412, body.to_text());
                stale.extra_headers.push(("Retry-After", "0".to_string()));
                return stale;
            }
        }
    }
    if let Some(entry) = state.kbs.entry(name) {
        let kb = entry.lock().unwrap();
        // seq 0 is an uncommitted placeholder: not a KB yet.
        if kb.seq > 0 {
            return ok(kb_view(name, &kb));
        }
    }
    error_response(404, format!("no KB named `{name}`"))
}

fn kb_delete(state: &ServiceState, name: &str, if_seq: Option<u64>) -> Response {
    match state.kbs.delete(name, if_seq) {
        Ok(Some((rseq, snapshot_due))) => {
            run_due_snapshot(state, snapshot_due);
            with_commit_seq(
                ok(obj([
                    ("name", json::s(name)),
                    ("deleted", Json::Bool(true)),
                ])),
                rseq,
            )
        }
        Ok(None) => error_response(404, format!("no KB named `{name}`")),
        Err(e) => commit_error_response(e, if_seq),
    }
}

fn kb_post(state: &ServiceState, name: &str, body: &Json) -> Result<Response, Response> {
    let action = field_str(body, "action")?;
    let if_seq = field_u64(body, "if_seq")?;
    match action {
        "put" => {
            let mut sig = Sig::new();
            let formula = parse_side(&mut sig, body, "formula")?;
            check_width(sig.width())?;
            match state.kbs.put(name, sig.clone(), formula.clone(), if_seq) {
                Ok((seq, rseq, snapshot_due)) => {
                    run_due_snapshot(state, snapshot_due);
                    let kb = StoredKb { sig, formula, seq };
                    Ok(with_commit_seq(ok(kb_view(name, &kb)), rseq))
                }
                Err(e) => Err(commit_error_response(e, if_seq)),
            }
        }
        "delete" => Ok(kb_delete(state, name, if_seq)),
        "arbitrate" | "fit" => kb_change(state, name, body, action, if_seq),
        "iterate" => kb_iterate(state, name, body, if_seq),
        other => Err(error_response(
            400,
            format!("unknown action `{other}`; expected put, arbitrate, fit, iterate, delete"),
        )),
    }
}

/// Arbitrate (or fit, with an explicit operator) new information into the
/// stored theory in place: `ψ ← ψ Δ μ`. Only exact results commit; a
/// degraded outcome is reported but leaves the KB untouched, so a stored
/// theory can never silently absorb an under-searched compromise.
fn kb_change(
    state: &ServiceState,
    name: &str,
    body: &Json,
    action: &str,
    if_seq: Option<u64>,
) -> Result<Response, Response> {
    let budget = budget_and_hold(body, state)?;
    let entry = state
        .kbs
        .entry(name)
        .ok_or_else(|| error_response(404, format!("no KB named `{name}`")))?;
    let mut kb = entry.lock().unwrap();
    if kb.seq == 0 {
        return Err(error_response(404, format!("no KB named `{name}`")));
    }
    if let Some(wanted) = if_seq {
        if wanted != kb.seq {
            return Err(conflict_response(kb.seq, wanted));
        }
    }

    let mut sig = kb.sig.clone();
    let mu = parse_side(&mut sig, body, "formula")?;
    check_width(sig.width())?;
    let n = sig.width();
    let psi = kb.formula.clone();

    let (outcome, cache, report) = if action == "arbitrate" {
        tiered_arbitrate(&state.cache, &state.compiled, &psi, &mu, n, &budget)
    } else {
        let op_name = match body.get("op") {
            None => "odist",
            Some(v) => v
                .as_str()
                .ok_or_else(|| error_response(400, "field `op` must be a string"))?,
        };
        let op = budgeted_operator(op_name)
            .ok_or_else(|| error_response(400, format!("unknown operator `{op_name}`")))?;
        tiered_apply(
            &state.cache,
            &state.compiled,
            op.as_ref(),
            &psi,
            &mu,
            n,
            &budget,
        )
    }
    .map_err(|e| error_response(400, e.to_string()))?;

    note_quality(outcome.quality);
    note_compile(&report);
    let committed = outcome.quality == Quality::Exact;
    let mut snapshot_due = false;
    let mut rseq = 0;
    if committed {
        let next = StoredKb {
            sig: sig.clone(),
            formula: outcome.models.to_formula(),
            seq: kb.seq + 1,
        };
        // WAL append + fsync first; the in-memory state only advances
        // once the record is durable, so an acked seq always survives.
        (rseq, snapshot_due) = state
            .kbs
            .commit(name, &next)
            .map_err(|e| commit_error_response(CommitError::Io(e), if_seq))?;
        *kb = next;
    }
    let committed_formula = committed.then(|| outcome.models.to_formula());
    let seq_now = kb.seq;
    drop(kb);
    run_due_snapshot(state, snapshot_due);
    // Compiled-tier invalidation runs strictly after the entry lock is
    // released: the tier mutex is a leaf lock (DESIGN.md §11). Keys are
    // content-addressed, so correctness never depends on this hook — it
    // frees the dead entry and transfers hotness to the new ψ.
    if let Some(next_psi) = committed_formula {
        if let Some(ns) = state.compiled.note_commit(Some(&psi), &next_psi, n) {
            metrics::LATENCY_BDD_COMPILE.record_nanos(ns);
        }
    }
    let (models, truncated) = models_json(&sig, &outcome.models);
    Ok(with_commit_seq(
        ok(obj([
            ("endpoint", json::s("kb")),
            ("name", json::s(name)),
            ("action", json::s(action)),
            ("quality", json::s(outcome.quality.name())),
            ("cache", json::s(cache.name())),
            ("backend", json::s(report.backend.name())),
            ("committed", Json::Bool(committed)),
            ("seq", json::n(seq_now)),
            ("n_vars", json::n(n as u64)),
            ("n_models", json::n(outcome.models.len() as u64)),
            ("models", models),
            ("models_truncated", Json::Bool(truncated)),
            (
                "formula",
                json::s(outcome.models.to_formula().display(&sig).to_string()),
            ),
            ("spent", spent_json(&outcome.spent)),
        ])),
        rseq,
    ))
}

/// Iterate `ψ ← op(ψ, μ)` to a fixpoint or cycle via `core::iterated`,
/// committing the final state.
fn kb_iterate(
    state: &ServiceState,
    name: &str,
    body: &Json,
    if_seq: Option<u64>,
) -> Result<Response, Response> {
    let entry = state
        .kbs
        .entry(name)
        .ok_or_else(|| error_response(404, format!("no KB named `{name}`")))?;
    let mut kb = entry.lock().unwrap();
    if kb.seq == 0 {
        return Err(error_response(404, format!("no KB named `{name}`")));
    }
    if let Some(wanted) = if_seq {
        if wanted != kb.seq {
            return Err(conflict_response(kb.seq, wanted));
        }
    }

    let mut sig = kb.sig.clone();
    let mu = parse_side(&mut sig, body, "formula")?;
    check_width(sig.width())?;
    let n = sig.width();
    let max_steps = field_u64(body, "max_steps")?
        .map(|s| (s as usize).min(MAX_ITERATE_STEPS))
        .unwrap_or(64);
    let op_name = match body.get("op") {
        None => "odist",
        Some(v) => v
            .as_str()
            .ok_or_else(|| error_response(400, "field `op` must be a string"))?,
    };
    let op = arbitrex_core::operator(op_name)
        .ok_or_else(|| error_response(400, format!("unknown operator `{op_name}`")))?;

    let psi_m = ModelSet::of_formula(&kb.formula, n);
    let mu_m = ModelSet::of_formula(&mu, n);
    let run = iterate_fixed_input(op.as_ref(), &psi_m, &mu_m, max_steps);
    let final_models = run.trajectory.last().cloned().unwrap_or(psi_m);

    let next = StoredKb {
        sig: sig.clone(),
        formula: final_models.to_formula(),
        seq: kb.seq + 1,
    };
    let (rseq, snapshot_due) = state
        .kbs
        .commit(name, &next)
        .map_err(|e| commit_error_response(CommitError::Io(e), if_seq))?;
    *kb = next;
    let seq_now = kb.seq;
    drop(kb);
    run_due_snapshot(state, snapshot_due);

    Ok(with_commit_seq(
        ok(obj([
            ("endpoint", json::s("kb")),
            ("name", json::s(name)),
            ("action", json::s("iterate")),
            ("op", json::s(op_name)),
            ("steps", json::n(run.trajectory.len() as u64 - 1)),
            (
                "period",
                run.period()
                    .map(|p| json::n(p as u64))
                    .unwrap_or(Json::Null),
            ),
            ("fixpoint", Json::Bool(run.is_fixpoint())),
            ("seq", json::n(seq_now)),
            ("n_models", json::n(final_models.len() as u64)),
            (
                "formula",
                json::s(final_models.to_formula().display(&sig).to_string()),
            ),
        ])),
        rseq,
    ))
}
