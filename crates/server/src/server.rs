//! The connection engine: accept loop, bounded queue, worker pool.
//!
//! One acceptor thread polls a nonblocking listener and pushes accepted
//! connections onto a bounded queue; `threads` workers pop connections and
//! run keep-alive request loops against [`crate::routes::dispatch`]. When
//! the queue is full the *acceptor* writes the 503 — backpressure costs
//! one small write, never a worker slot. Shutdown is cooperative: a flag
//! checked by the acceptor poll, by idle workers, and between keep-alive
//! requests, so SIGTERM (or [`ShutdownHandle::shutdown`]) drains cleanly
//! with no request torn mid-response.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use crate::http::{self, ReadOutcome, Response};
use crate::metrics;
use crate::routes;
use crate::{ServerConfig, ServiceState};

/// How often blocked loops wake to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
/// Consecutive idle polls before a worker drops a keep-alive connection.
const MAX_IDLE_POLLS: u32 = 200; // 200 × 25 ms = 5 s

/// Process-global flag set by the installed signal handler. Checked by
/// every running server in the process alongside its own handle.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Install SIGTERM/SIGINT handlers that request clean shutdown of every
/// server in the process. Uses the raw `signal(2)` binding — the handler
/// only stores to an atomic, which is async-signal-safe.
#[cfg(unix)]
pub fn install_signal_shutdown() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

/// No-op off Unix; only the in-process [`ShutdownHandle`] stops the server.
#[cfg(not(unix))]
pub fn install_signal_shutdown() {}

/// Requests a running server stop accepting and drain. Cloneable and
/// usable from any thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Ask the server to stop. Idempotent.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    fn is_set(&self) -> bool {
        self.flag.load(Ordering::SeqCst) || SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
    }
}

/// The bounded handoff between the acceptor and the workers.
struct ConnQueue {
    inner: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    depth: usize,
}

impl ConnQueue {
    fn new(depth: usize) -> ConnQueue {
        ConnQueue {
            inner: Mutex::new(VecDeque::with_capacity(depth)),
            ready: Condvar::new(),
            depth,
        }
    }

    /// Enqueue unless full; the stream comes back on overflow so the
    /// caller can refuse it.
    fn try_push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut q = self.inner.lock().unwrap();
        if q.len() >= self.depth {
            return Err(stream);
        }
        q.push_back(stream);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Block for the next connection, waking periodically to observe
    /// shutdown. `None` means "shutting down and drained".
    fn pop(&self, shutdown: &ShutdownHandle) -> Option<TcpStream> {
        let mut q = self.inner.lock().unwrap();
        loop {
            if let Some(stream) = q.pop_front() {
                return Some(stream);
            }
            if shutdown.is_set() {
                return None;
            }
            let (guard, _timeout) = self.ready.wait_timeout(q, POLL_INTERVAL).unwrap();
            q = guard;
        }
    }
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServiceState>,
    shutdown: ShutdownHandle,
}

impl Server {
    /// Bind `config.addr` (port 0 picks a free port) and build the shared
    /// state: the canonicalizing result cache and the KB store — running
    /// crash recovery first when a state directory is configured. A
    /// recovery refusal (mid-log corruption in strict mode) fails the
    /// bind: the server never serves a state it cannot prove complete.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let state = ServiceState::new(config)?;
        let listener = TcpListener::bind(&state.config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            state: Arc::new(state),
            shutdown: ShutdownHandle {
                flag: Arc::new(AtomicBool::new(false)),
            },
        })
    }

    /// The actually bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops this server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// The shared service state (cache, KB store, config).
    pub fn state(&self) -> Arc<ServiceState> {
        Arc::clone(&self.state)
    }

    /// Run until shutdown: spawns the worker pool, accepts connections,
    /// applies backpressure, then drains and joins the workers.
    pub fn run(self) -> io::Result<()> {
        let queue = Arc::new(ConnQueue::new(self.state.config.queue_depth.max(1)));
        let threads = self.state.config.threads.max(1);

        let workers: Vec<_> = (0..threads)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let state = Arc::clone(&self.state);
                let shutdown = self.shutdown.clone();
                thread::Builder::new()
                    .name(format!("arbitrex-worker-{i}"))
                    .spawn(move || {
                        while let Some(stream) = queue.pop(&shutdown) {
                            handle_connection(stream, &state, &shutdown);
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        while !self.shutdown.is_set() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    metrics::ACCEPTED.incr();
                    // Accepted sockets must block: workers use timeouts.
                    let _ = stream.set_nonblocking(false);
                    match queue.try_push(stream) {
                        Ok(()) => metrics::QUEUED.incr(),
                        Err(mut refused) => {
                            metrics::REJECTED.incr();
                            let resp = routes::error_response(
                                503,
                                "server overloaded: request queue is full",
                            );
                            metrics::record_response(resp.status);
                            let _ = http::write_response(&mut refused, &resp, true);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // Unexpected accept failure: stop cleanly rather than
                    // spin; workers still drain the queue.
                    self.shutdown.shutdown();
                    for worker in workers {
                        let _ = worker.join();
                    }
                    return Err(e);
                }
            }
        }

        for worker in workers {
            let _ = worker.join();
        }
        // Drain complete: no worker can commit anymore. Fold the WAL
        // into a final snapshot so the next startup replays nothing.
        // Best-effort — every commit is already durable in the log.
        if self.state.kbs.snapshot_now().is_err() {
            self.state.kbs.note_snapshot_error();
        }
        Ok(())
    }
}

/// Serve one connection's keep-alive request loop.
fn handle_connection(mut stream: TcpStream, state: &ServiceState, shutdown: &ShutdownHandle) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let mut idle_polls = 0u32;
    loop {
        match http::read_request_limited(&mut stream, state.config.max_body_bytes) {
            Ok(ReadOutcome::Idle) => {
                idle_polls += 1;
                if shutdown.is_set() || idle_polls > MAX_IDLE_POLLS {
                    return;
                }
            }
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Malformed(message)) => {
                metrics::REQUESTS.incr();
                let resp = routes::error_response(400, message);
                metrics::record_response(resp.status);
                let _ = http::write_response(&mut stream, &resp, true);
                return;
            }
            Ok(ReadOutcome::TooLarge { declared, cap }) => {
                metrics::REQUESTS.incr();
                let resp = routes::error_response(
                    413,
                    format!("body of {declared} bytes exceeds the {cap}-byte cap"),
                );
                metrics::record_response(resp.status);
                // The unread body makes the connection unusable: close.
                let _ = http::write_response(&mut stream, &resp, true);
                return;
            }
            Ok(ReadOutcome::Request(request)) => {
                idle_polls = 0;
                let response: Response = routes::dispatch(state, &request);
                let close = request.wants_close() || shutdown.is_set();
                if http::write_response(&mut stream, &response, close).is_err() || close {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}
