//! The connection engine: a readiness-driven event loop with a CPU
//! worker pool.
//!
//! One I/O thread multiplexes every connection through a [`Poller`]
//! (raw `epoll` on Linux, `poll(2)` elsewhere): nonblocking accept,
//! per-connection state machines that parse pipelined HTTP/1.1 requests
//! out of a read buffer, and in-order response flushing. Parsed
//! requests are handed to `threads` CPU workers over a bounded queue;
//! workers run [`crate::routes::dispatch`] (operator work, budgets,
//! commits) and complete responses back to the I/O thread through a
//! completion list plus a [`Waker`]. When the queue is full the I/O
//! thread writes the `503` itself (with `Retry-After`) — backpressure
//! costs one buffered write, never a worker slot, and the connection
//! stays usable.
//!
//! Pipelining: a connection may have up to [`MAX_PIPELINE_DEPTH`]
//! requests in flight. Each parsed request claims the next response
//! slot; completions fill slots out of order but flush strictly in
//! request order, so concurrent workers never reorder a connection's
//! responses. At the cap the loop stops reading that socket — TCP
//! backpressure, not buffering — and resumes when a slot frees.
//!
//! Shutdown is cooperative: a flag checked by the loop's 25 ms poll
//! timeout and by idle workers. On shutdown the loop stops accepting,
//! stops parsing new requests, lets in-flight requests complete and
//! flush, then joins the workers — no request is torn mid-response.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::http::{self, BufferParse, Request};
use crate::metrics;
use crate::poller::{Event, Interest, Poller, Waker};
use crate::routes;
use crate::{ServerConfig, ServiceState};

/// How often blocked loops wake to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
/// Most requests one connection may have in flight (parsed but not yet
/// flushed). Beyond this the loop stops reading the socket until a
/// response flushes, so a pipelining client cannot force unbounded
/// response buffering.
pub const MAX_PIPELINE_DEPTH: usize = 128;
/// Socket read chunk size.
const READ_CHUNK: usize = 16 * 1024;
/// How often idle keep-alive connections are swept against
/// `keep_alive_timeout_ms`.
const REAP_INTERVAL: Duration = Duration::from_millis(500);

/// Token of the listening socket in the poll set.
const LISTENER_TOKEN: usize = usize::MAX;
/// Token of the completion waker in the poll set.
const WAKER_TOKEN: usize = usize::MAX - 1;

/// Process-global flag set by the installed signal handler. Checked by
/// every running server in the process alongside its own handle.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Install SIGTERM/SIGINT handlers that request clean shutdown of every
/// server in the process. Uses the raw `signal(2)` binding — the handler
/// only stores to an atomic, which is async-signal-safe.
#[cfg(unix)]
pub fn install_signal_shutdown() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

/// No-op off Unix; only the in-process [`ShutdownHandle`] stops the server.
#[cfg(not(unix))]
pub fn install_signal_shutdown() {}

/// Requests a running server stop accepting and drain. Cloneable and
/// usable from any thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Ask the server to stop. Idempotent.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    fn is_set(&self) -> bool {
        self.flag.load(Ordering::SeqCst) || SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
    }
}

/// One parsed request on its way to a CPU worker.
struct Job {
    token: usize,
    generation: u64,
    slot: u64,
    request: Request,
    close: bool,
}

/// A finished response on its way back to the I/O thread.
struct Completion {
    token: usize,
    generation: u64,
    slot: u64,
    bytes: Vec<u8>,
    /// The response demands the connection close after this flush
    /// (handler-forced close or an aborted chunked stream).
    close: bool,
}

/// The bounded handoff between the I/O thread and the CPU workers.
struct WorkQueue {
    inner: Mutex<VecDeque<Job>>,
    ready: Condvar,
    depth: usize,
}

impl WorkQueue {
    fn new(depth: usize) -> WorkQueue {
        WorkQueue {
            inner: Mutex::new(VecDeque::with_capacity(depth)),
            ready: Condvar::new(),
            depth,
        }
    }

    /// Enqueue unless full; the job comes back on overflow so the
    /// caller can refuse it.
    fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut q = self.inner.lock().unwrap();
        if q.len() >= self.depth {
            return Err(job);
        }
        q.push_back(job);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Block for the next job, waking periodically to observe shutdown.
    /// `None` means "shutting down and drained".
    fn pop(&self, shutdown: &ShutdownHandle) -> Option<Job> {
        let mut q = self.inner.lock().unwrap();
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if shutdown.is_set() {
                return None;
            }
            let (guard, _timeout) = self.ready.wait_timeout(q, POLL_INTERVAL).unwrap();
            q = guard;
        }
    }
}

/// Finished responses plus the waker that tells the poll loop about
/// them.
struct Completions {
    inner: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl Completions {
    fn new() -> io::Result<Completions> {
        Ok(Completions {
            inner: Mutex::new(Vec::new()),
            waker: Waker::new()?,
        })
    }

    fn push(&self, completion: Completion) {
        self.inner.lock().unwrap().push(completion);
        self.waker.wake();
    }

    fn take(&self, into: &mut Vec<Completion>) {
        std::mem::swap(&mut *self.inner.lock().unwrap(), into);
    }
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Guards completions against token reuse: a completion whose
    /// generation does not match the current occupant is dropped.
    generation: u64,
    /// Unparsed request bytes.
    buf: Vec<u8>,
    /// Encoded response bytes awaiting the socket; `out[..written]` is
    /// already sent.
    out: Vec<u8>,
    written: usize,
    /// In-flight responses in request order. `None` = still computing;
    /// the front flushes as soon as it is `Some`.
    slots: VecDeque<Option<Vec<u8>>>,
    /// Slot number of `slots[0]`.
    base_slot: u64,
    /// Next slot number to assign.
    next_slot: u64,
    /// The interest currently registered with the poller (`None` =
    /// deregistered).
    interest: Option<Interest>,
    last_activity: Instant,
    /// Read side saw EOF (or hangup).
    peer_closed: bool,
    /// No further requests will be parsed (close requested, malformed
    /// input, or server drain).
    stop_parsing: bool,
    /// Close once every slot has flushed.
    close_after_flush: bool,
    /// Unrecoverable socket error; close regardless of pending output.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, generation: u64) -> Conn {
        Conn {
            stream,
            generation,
            buf: Vec::new(),
            out: Vec::new(),
            written: 0,
            slots: VecDeque::new(),
            base_slot: 0,
            next_slot: 0,
            interest: None,
            last_activity: Instant::now(),
            peer_closed: false,
            stop_parsing: false,
            close_after_flush: false,
            dead: false,
        }
    }

    /// At the pipeline cap: stop reading until a slot frees.
    fn paused(&self) -> bool {
        self.slots.len() >= MAX_PIPELINE_DEPTH
    }

    fn flushed(&self) -> bool {
        self.slots.is_empty() && self.written >= self.out.len()
    }

    fn should_close(&self) -> bool {
        self.dead
            || (self.flushed() && (self.close_after_flush || self.peer_closed || self.stop_parsing))
    }

    fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.stop_parsing && !self.peer_closed && !self.dead && !self.paused(),
            writable: self.written < self.out.len(),
        }
    }

    /// Record a synchronous (I/O-thread-produced) response in the next
    /// slot: queue-full 503s, malformed 400s, oversized 413s.
    fn push_ready_slot(&mut self, bytes: Vec<u8>) {
        self.next_slot += 1;
        self.slots.push_back(Some(bytes));
    }

    /// Move leading completed slots into the output buffer.
    fn promote_ready_slots(&mut self) {
        while matches!(self.slots.front(), Some(Some(_))) {
            let bytes = self.slots.pop_front().flatten().unwrap();
            self.base_slot += 1;
            self.out.extend_from_slice(&bytes);
        }
    }

    /// Write buffered output until the socket would block.
    fn write_out(&mut self) {
        while self.written < self.out.len() {
            match self.stream.write(&self.out[self.written..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.written += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.out.clear();
        self.written = 0;
    }
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServiceState>,
    shutdown: ShutdownHandle,
}

impl Server {
    /// Bind `config.addr` (port 0 picks a free port) and build the shared
    /// state: the canonicalizing result cache and the KB store — running
    /// crash recovery first when a state directory is configured. A
    /// recovery refusal (mid-log corruption in strict mode) fails the
    /// bind: the server never serves a state it cannot prove complete.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let state = ServiceState::new(config)?;
        let listener = TcpListener::bind(&state.config.addr)?;
        listener.set_nonblocking(true)?;
        // A sharded node advertising `auto` learns its ring identity
        // from the bound address (resolving port 0), before any request
        // can ask for a placement.
        if let Some(router) = &state.shards {
            router.resolve_self(&listener.local_addr()?.to_string());
        }
        Ok(Server {
            listener,
            state: Arc::new(state),
            shutdown: ShutdownHandle {
                flag: Arc::new(AtomicBool::new(false)),
            },
        })
    }

    /// The actually bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops this server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// The shared service state (cache, KB store, config).
    pub fn state(&self) -> Arc<ServiceState> {
        Arc::clone(&self.state)
    }

    /// Run until shutdown: spawns the CPU workers, runs the event loop,
    /// then drains and joins the workers.
    pub fn run(self) -> io::Result<()> {
        let threads = self.state.config.threads.max(1);
        let work = Arc::new(WorkQueue::new(self.state.config.queue_depth.max(1)));
        let completions = Arc::new(Completions::new()?);

        // A replica streams its primary's WAL on a dedicated thread.
        // The failover supervisor owns the puller slot so a chain
        // rotation can retarget it later; the detector thread probes
        // this node's chain head and promotes through it.
        crate::failover::ensure_puller(&self.state);
        let detector = crate::failover::spawn_detector(Arc::clone(&self.state));

        let workers: Vec<_> = (0..threads)
            .map(|i| {
                let work = Arc::clone(&work);
                let completions = Arc::clone(&completions);
                let state = Arc::clone(&self.state);
                let shutdown = self.shutdown.clone();
                thread::Builder::new()
                    .name(format!("arbitrex-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = work.pop(&shutdown) {
                            let response = routes::dispatch(&state, &job.request);
                            let close = job.close
                                || shutdown.is_set()
                                || response.force_close
                                || response.chunk_abort;
                            completions.push(Completion {
                                token: job.token,
                                generation: job.generation,
                                slot: job.slot,
                                bytes: http::encode_response(&response, close),
                                close,
                            });
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        let poller = Poller::new()?;
        poller.add(self.listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        poller.add(completions.waker.fd(), WAKER_TOKEN, Interest::READ)?;

        let state = Arc::clone(&self.state);
        let mut event_loop = EventLoop {
            listener: self.listener,
            state: self.state,
            shutdown: self.shutdown.clone(),
            poller,
            work,
            completions,
            conns: Vec::new(),
            free: Vec::new(),
            next_generation: 0,
        };
        let result = event_loop.run();
        // The loop exits only with shutdown set (requested or fatal), so
        // the workers drain the queue and stop.
        for worker in workers {
            let _ = worker.join();
        }
        state.failover.request_stop();
        if let Some(handle) = detector {
            let _ = handle.join();
        }
        crate::failover::join_puller(&state);
        // Drain complete: no worker can commit anymore. Fold the WAL
        // into a final snapshot so the next startup replays nothing.
        // Best-effort — every commit is already durable in the log.
        if state.kbs.snapshot_now().is_err() {
            state.kbs.note_snapshot_error();
        }
        result
    }
}

/// The I/O thread's entire mutable world.
struct EventLoop {
    listener: TcpListener,
    state: Arc<ServiceState>,
    shutdown: ShutdownHandle,
    poller: Poller,
    work: Arc<WorkQueue>,
    completions: Arc<Completions>,
    /// Token-indexed connection slab.
    conns: Vec<Option<Conn>>,
    /// Recycled tokens.
    free: Vec<usize>,
    next_generation: u64,
}

impl EventLoop {
    fn run(&mut self) -> io::Result<()> {
        let mut events: Vec<Event> = Vec::with_capacity(1024);
        let mut scratch: Vec<Completion> = Vec::new();
        let mut accepting = true;
        let mut fatal: Option<io::Error> = None;
        let mut last_reap = Instant::now();

        loop {
            if self.shutdown.is_set() {
                if accepting {
                    accepting = false;
                    let _ = self.poller.remove(self.listener.as_raw_fd());
                    self.begin_drain();
                }
                if self.conns.iter().all(|c| c.is_none()) {
                    break;
                }
            }

            events.clear();
            if let Err(e) = self
                .poller
                .wait(&mut events, POLL_INTERVAL.as_millis() as i32)
            {
                // The poll set itself is broken: no drain is possible.
                fatal = Some(e);
                self.shutdown.shutdown();
                break;
            }
            for i in 0..events.len() {
                let ev = events[i];
                match ev.token {
                    LISTENER_TOKEN => {
                        if accepting {
                            if let Err(e) = self.accept_all() {
                                // Unexpected accept failure: stop cleanly
                                // rather than spin; in-flight work drains.
                                fatal = Some(e);
                                self.shutdown.shutdown();
                            }
                        }
                    }
                    WAKER_TOKEN => {
                        metrics::EL_WAKEUPS.incr();
                        self.completions.waker.drain();
                    }
                    token => {
                        metrics::EL_READY_EVENTS.incr();
                        self.conn_event(token, ev);
                    }
                }
            }
            self.drain_completions(&mut scratch);
            if last_reap.elapsed() >= REAP_INTERVAL {
                last_reap = Instant::now();
                self.reap_idle();
            }
        }

        for token in 0..self.conns.len() {
            self.close_conn(token);
        }
        match fatal {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Accept until the listener would block.
    fn accept_all(&mut self) -> io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    metrics::ACCEPTED.incr();
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = match self.free.pop() {
                        Some(t) => t,
                        None => {
                            self.conns.push(None);
                            self.conns.len() - 1
                        }
                    };
                    self.next_generation += 1;
                    let mut conn = Conn::new(stream, self.next_generation);
                    if self
                        .poller
                        .add(conn.stream.as_raw_fd(), token, Interest::READ)
                        .is_ok()
                    {
                        conn.interest = Some(Interest::READ);
                        self.conns[token] = Some(conn);
                    } else {
                        // Registration failed; the connection is dropped
                        // (closed) and the token recycled.
                        self.free.push(token);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn conn_event(&mut self, token: usize, ev: Event) {
        if self.conns.get(token).map_or(true, |c| c.is_none()) {
            return;
        }
        if ev.readable {
            self.read_and_parse(token);
        }
        if ev.hangup {
            if let Some(conn) = self.conns[token].as_mut() {
                // Reads above drained any final bytes; whatever is left
                // on a hung-up socket is gone.
                conn.peer_closed = true;
            }
        }
        self.finalize(token);
    }

    /// Read until the socket would block (or the connection pauses at
    /// the pipeline cap), parsing requests as bytes land.
    fn read_and_parse(&mut self, token: usize) {
        let mut scratch = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.conns.get_mut(token).and_then(|c| c.as_mut()) else {
                return;
            };
            if conn.dead || conn.peer_closed || conn.stop_parsing || conn.paused() {
                break;
            }
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.buf.extend_from_slice(&scratch[..n]);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
            self.parse_buffered(token);
        }
        self.parse_buffered(token);
    }

    /// Parse as many complete requests as the buffer holds, dispatching
    /// each to the worker queue (or answering synchronously: 400, 413,
    /// and queue-full 503).
    fn parse_buffered(&mut self, token: usize) {
        let max_body = self.state.config.max_body_bytes;
        loop {
            let parsed = {
                let Some(conn) = self.conns.get_mut(token).and_then(|c| c.as_mut()) else {
                    return;
                };
                if conn.dead || conn.stop_parsing || conn.paused() || conn.buf.is_empty() {
                    return;
                }
                http::parse_request_buffer(&conn.buf, max_body)
            };
            match parsed {
                BufferParse::Incomplete => return,
                BufferParse::Malformed(message) => {
                    metrics::REQUESTS.incr();
                    let resp = routes::error_response(400, message);
                    metrics::record_response(resp.status);
                    let bytes = http::encode_response(&resp, true);
                    let conn = self.conns[token].as_mut().unwrap();
                    conn.buf.clear();
                    conn.stop_parsing = true;
                    conn.close_after_flush = true;
                    conn.push_ready_slot(bytes);
                    return;
                }
                BufferParse::TooLarge { declared, cap } => {
                    metrics::REQUESTS.incr();
                    let resp = routes::error_response(
                        413,
                        format!("body of {declared} bytes exceeds the {cap}-byte cap"),
                    );
                    metrics::record_response(resp.status);
                    // The unread body makes the connection unusable: close.
                    let bytes = http::encode_response(&resp, true);
                    let conn = self.conns[token].as_mut().unwrap();
                    conn.buf.clear();
                    conn.stop_parsing = true;
                    conn.close_after_flush = true;
                    conn.push_ready_slot(bytes);
                    return;
                }
                BufferParse::Complete { request, consumed } => {
                    let close = request.wants_close();
                    let (generation, slot) = {
                        let conn = self.conns[token].as_mut().unwrap();
                        conn.buf.drain(..consumed);
                        if !conn.slots.is_empty() {
                            metrics::EL_PIPELINED.incr();
                        }
                        let slot = conn.next_slot;
                        conn.next_slot += 1;
                        conn.slots.push_back(None);
                        if conn.paused() {
                            metrics::EL_READ_PAUSES.incr();
                        }
                        if close {
                            conn.stop_parsing = true;
                            conn.close_after_flush = true;
                        }
                        (conn.generation, slot)
                    };
                    let job = Job {
                        token,
                        generation,
                        slot,
                        request,
                        close,
                    };
                    match self.work.try_push(job) {
                        Ok(()) => metrics::QUEUED.incr(),
                        Err(_refused) => {
                            metrics::REQUESTS.incr();
                            metrics::REJECTED.incr();
                            let resp = routes::error_response(
                                503,
                                "server overloaded: request queue is full",
                            )
                            .with_header("Retry-After", "1");
                            metrics::record_response(resp.status);
                            let bytes = http::encode_response(&resp, close);
                            let conn = self.conns[token].as_mut().unwrap();
                            let idx = (slot - conn.base_slot) as usize;
                            conn.slots[idx] = Some(bytes);
                        }
                    }
                    if close {
                        return;
                    }
                }
            }
        }
    }

    /// Flush what is flushable, resume parsing if a pause lifted, sync
    /// poller interest with the connection's needs, and close if done.
    fn finalize(&mut self, token: usize) {
        let was_paused = {
            let Some(conn) = self.conns.get_mut(token).and_then(|c| c.as_mut()) else {
                return;
            };
            let was_paused = conn.paused();
            conn.promote_ready_slots();
            conn.write_out();
            if conn.should_close() {
                self.close_conn(token);
                return;
            }
            was_paused
        };
        // A freed slot may unblock buffered pipelined requests (the
        // kernel fires no new readiness for bytes we already hold).
        if was_paused {
            self.parse_buffered(token);
        }
        let Some(conn) = self.conns.get_mut(token).and_then(|c| c.as_mut()) else {
            return;
        };
        // Synchronous responses out of the resumed parse flush now too.
        conn.promote_ready_slots();
        conn.write_out();
        if conn.should_close() {
            self.close_conn(token);
            return;
        }
        let desired = conn.desired_interest();
        if conn.interest != Some(desired) {
            let fd = conn.stream.as_raw_fd();
            let result = if desired.readable || desired.writable {
                if conn.interest.is_some() {
                    self.poller.modify(fd, token, desired)
                } else {
                    self.poller.add(fd, token, desired)
                }
            } else {
                // Nothing to wait for (e.g. all slots computing and
                // output drained): leave the poll set entirely so a
                // hung-up fd cannot spin the loop.
                conn.interest = None;
                self.poller.remove(fd)
            };
            match result {
                Ok(()) => {
                    if desired.readable || desired.writable {
                        conn.interest = Some(desired);
                    }
                }
                Err(_) => {
                    self.close_conn(token);
                }
            }
        }
    }

    /// Deliver finished responses to their connections and flush.
    fn drain_completions(&mut self, scratch: &mut Vec<Completion>) {
        self.completions.take(scratch);
        if scratch.is_empty() {
            return;
        }
        let mut touched: Vec<usize> = Vec::with_capacity(scratch.len());
        for completion in scratch.drain(..) {
            let Some(conn) = self
                .conns
                .get_mut(completion.token)
                .and_then(|c| c.as_mut())
            else {
                continue;
            };
            if conn.generation != completion.generation {
                continue; // token was recycled; the response has no home
            }
            let idx = (completion.slot - conn.base_slot) as usize;
            if let Some(slot) = conn.slots.get_mut(idx) {
                *slot = Some(completion.bytes);
            }
            if completion.close {
                conn.stop_parsing = true;
                conn.close_after_flush = true;
            }
            conn.last_activity = Instant::now();
            touched.push(completion.token);
        }
        touched.sort_unstable();
        touched.dedup();
        for token in touched {
            self.finalize(token);
        }
    }

    /// Server drain: stop parsing everywhere, discard unparsed input,
    /// and close every connection with nothing in flight.
    fn begin_drain(&mut self) {
        for token in 0..self.conns.len() {
            if let Some(conn) = self.conns[token].as_mut() {
                conn.stop_parsing = true;
                conn.buf.clear();
            } else {
                continue;
            }
            self.finalize(token);
        }
    }

    /// Close idle keep-alive connections past the configured timeout.
    fn reap_idle(&mut self) {
        let timeout_ms = self.state.config.keep_alive_timeout_ms;
        if timeout_ms == 0 {
            return;
        }
        let timeout = Duration::from_millis(timeout_ms);
        for token in 0..self.conns.len() {
            let stale = match self.conns[token].as_ref() {
                Some(conn) => {
                    conn.flushed() && conn.buf.is_empty() && conn.last_activity.elapsed() >= timeout
                }
                None => false,
            };
            if stale {
                metrics::EL_KEEPALIVE_REAPED.incr();
                self.close_conn(token);
            }
        }
    }

    fn close_conn(&mut self, token: usize) {
        if let Some(conn) = self.conns.get_mut(token).and_then(|c| c.take()) {
            if conn.interest.is_some() {
                let _ = self.poller.remove(conn.stream.as_raw_fd());
            }
            self.free.push(token);
            // conn drops here, closing the socket.
        }
    }
}
