//! Consistent-hash sharding of named KBs across a cluster of primaries.
//!
//! PR 8 gave one KB namespace a single primary with epoch-fenced
//! replicas; this module spreads the namespace over *several* primaries.
//! A [`ShardRing`] — consistent hashing with virtual nodes and a
//! rendezvous tie-break — maps each KB name to exactly one owner. Every
//! node serves the KBs it owns locally, **proxies** reads for the rest
//! to the owner, and answers mutations for the rest with
//! `307 Temporary Redirect` plus `X-Arbitrex-Shard-Owner`, so a commit
//! always lands at (and is fenced by) its owner.
//!
//! The ring is versioned by a **ring epoch**. Every routed KB response
//! carries `X-Arbitrex-Ring-Epoch`; a client may pin the epoch it
//! routed against by sending the same header, and a mismatch is refused
//! with a typed `421 Misdirected Request` instead of a split-brain
//! commit against a stale ring. This is the membership-layer analogue
//! of the replication fencing epoch (DESIGN.md §12): the replication
//! epoch fences *who may write a store*, the ring epoch fences *which
//! store a name maps to*.
//!
//! Membership changes (`POST /v1/cluster/{join,leave}`) bump the epoch,
//! broadcast the new ring to every member (`POST /v1/cluster/sync`,
//! adopted only if it supersedes under the `(epoch, member set)` total
//! order — see [`ShardRing::superseded_by`]), and trigger **live
//! rebalancing**: each node that
//! adopted the ring pulls the digest of every migration source
//! (`GET /v1/kbs`: name, seq, canonical content hash — the same digest
//! the PR 8 anti-entropy pass compares), fetches each KB it now owns
//! over the replication transport ([`PeerClient`]), lands it verbatim
//! with [`crate::kb::KbStore::force_put`], and then asks the old owner
//! to release its copy (`POST /v1/cluster/release`, guarded by the
//! pulled seq so a commit racing the handoff is never dropped).
//! Divergence discovered during the pull — both sides committed to the
//! same name under a partition — is handed to the PR 8 `Δ`-arbitration
//! reconciliation path ([`crate::replication::reconcile_with_peer`]),
//! not to last-writer-wins.
//!
//! # Deterministic fault plan
//!
//! [`ShardFaultPlan`] arms exactly one fire-once fault (`serve
//! --fault`): `shard_handoff_torn` (the k-th release request is refused
//! after the data transfer, as if the handoff connection tore — both
//! copies survive and a later pass converges them), `shard_ring_stale`
//! (the k-th routed KB request is answered 421 as if the client's ring
//! were stale), `shard_proxy_drop` (the k-th proxied read is dropped
//! with 502). Like the `net_*` plans they disarm after firing: what is
//! under test is the retry/convergence machinery, not a sticky outage.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, TryLockError};

use arbitrex_logic::parse as parse_formula;

use crate::json::{self, Json};
use crate::kb::StoredKb;
use crate::metrics;
use crate::replication::{PeerClient, PeerResponse};
use crate::ServiceState;

/// Virtual nodes per member unless `--shard-vnodes` says otherwise.
pub const DEFAULT_VNODES: u32 = 64;
/// Placeholder for "my own bound address" in `--shard-ring`: resolved
/// to the actual listen address once the listener is bound (so tests
/// and scripts can shard a server bound to port 0).
pub const SELF_AUTO: &str = "auto";
/// Request header marking cluster-internal traffic (handoff pulls and
/// owner-side proxy legs); it bypasses ownership routing so a node can
/// always read a peer's local copy during a migration.
pub const INTERNAL_HEADER: &str = "x-arbitrex-shard-internal";
/// Attempts the rebalancer makes to pull-and-release one KB when the
/// old owner reports a seq conflict (a commit raced the handoff).
pub const HANDOFF_RETRIES: u32 = 3;

/// FNV-1a, the ring's stable 64-bit hash (no dependency, stable across
/// builds — ring placement must agree between separately started
/// processes).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix(h)
}

/// SplitMix64 finalizer. Raw FNV-1a diffuses too little on the short,
/// near-identical strings rings are made of (`host:port#3` vs
/// `host:port#4`), which skews vnode arcs badly; the finalizer restores
/// avalanche while staying a pure, dependency-free function.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Rendezvous score of `(name, member)`, the tie-break when two virtual
/// nodes land on the same ring point.
fn rendezvous(name: &str, member: &str) -> u64 {
    let mut bytes = Vec::with_capacity(name.len() + member.len() + 1);
    bytes.extend_from_slice(name.as_bytes());
    bytes.push(0xFF); // unambiguous separator: 0xFF never appears in a KB name
    bytes.extend_from_slice(member.as_bytes());
    fnv1a(&bytes)
}

// --- replica chains ----------------------------------------------------------

/// Separator between the members of a chain spec (`head~r1~r2`).
pub const CHAIN_SEP: char = '~';

/// One ring entry: a replica **chain** — a head that accepts writes plus
/// ordered replicas pulling its WAL (PR 8's replication). The ring hashes
/// by the chain's `anchor`, a stable identity that survives head
/// rotation: when the head dies and the first replica self-promotes, the
/// chain's vnode points do not move, so failover reassigns *roles inside
/// the chain* without migrating a single KB.
///
/// Spec grammar (what `--cluster-peers`, join bodies and sync broadcasts
/// carry): `[anchor=]head[~replica...][@repl_epoch]`. A bare `host:port`
/// is a chain of one anchored at itself — exactly PR 9's member format,
/// so old rings parse unchanged. The `@repl_epoch` suffix records the
/// chain's replication fencing epoch; a rotation bumps it in lockstep
/// with the promotion's WAL epoch, which is how the ring *composes* the
/// two epoch spaces (a member listed behind a chain epoch above its own
/// WAL epoch knows it was deposed while away).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainEntry {
    anchor: String,
    /// Head first, then replicas in promotion order.
    members: Vec<String>,
    repl_epoch: u64,
}

impl ChainEntry {
    /// Parse a chain spec. `None` for a spec with no members (empty
    /// string, bare `@3`, ...).
    pub fn parse(spec: &str) -> Option<ChainEntry> {
        let spec = spec.trim();
        let (spec, repl_epoch) = match spec.rsplit_once('@') {
            Some((rest, tail)) => match tail.parse::<u64>() {
                Ok(epoch) => (rest, epoch),
                Err(_) => (spec, 0),
            },
            None => (spec, 0),
        };
        let (anchor, roster) = match spec.split_once('=') {
            Some((anchor, rest)) if !anchor.is_empty() => (Some(anchor.to_string()), rest),
            _ => (None, spec),
        };
        let mut members: Vec<String> = Vec::new();
        for member in roster.split(CHAIN_SEP) {
            let member = member.trim();
            if !member.is_empty() && !members.iter().any(|m| m == member) {
                members.push(member.to_string());
            }
        }
        let head = members.first()?.clone();
        Some(ChainEntry {
            anchor: anchor.unwrap_or(head),
            members,
            repl_epoch,
        })
    }

    /// The canonical spec string (`parse` of it round-trips).
    pub fn spec(&self) -> String {
        let mut out = String::new();
        if self.anchor != self.members[0] {
            out.push_str(&self.anchor);
            out.push('=');
        }
        out.push_str(&self.members.join(&CHAIN_SEP.to_string()));
        if self.repl_epoch > 0 {
            out.push('@');
            out.push_str(&self.repl_epoch.to_string());
        }
        out
    }

    /// The stable hash identity the ring places this chain by.
    pub fn anchor(&self) -> &str {
        &self.anchor
    }

    /// The chain head — the only member that accepts writes.
    pub fn head(&self) -> &str {
        &self.members[0]
    }

    /// Head first, then replicas in promotion order.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// The chain's replication fencing epoch (0 until a rotation
    /// records one).
    pub fn repl_epoch(&self) -> u64 {
        self.repl_epoch
    }

    /// Is `addr` a serving member of this chain?
    pub fn contains(&self, addr: &str) -> bool {
        self.members.iter().any(|m| m == addr)
    }

    /// The designated successor: the first replica behind the head.
    pub fn successor(&self) -> Option<&str> {
        self.members.get(1).map(String::as_str)
    }
}

// --- the ring ----------------------------------------------------------------

/// A consistent-hash ring over the cluster's replica chains: each chain
/// owns `vnodes` points keyed by its stable anchor; a KB name belongs to
/// the chain owning the first point clockwise of the name's hash, with a
/// rendezvous tie-break when several points collide on one hash value.
/// Placement is a pure function of `(members, vnodes)` — two nodes
/// holding equal rings route identically, which is what the ring epoch
/// certifies. Because points derive from anchors, rotating a chain's
/// head (failover) or growing its replica tail never moves a name.
#[derive(Debug, Clone)]
pub struct ShardRing {
    epoch: u64,
    vnodes: u32,
    /// Sorted, deduplicated canonical chain specs.
    members: Vec<String>,
    /// Parsed entries, index-aligned with `members`.
    chains: Vec<ChainEntry>,
    /// `(point hash, chain index)`, sorted by hash.
    points: Vec<(u64, u32)>,
}

impl ShardRing {
    /// A ring over `members` (chain specs or bare addresses) at `epoch`.
    /// Specs are canonicalized, sorted and deduplicated so the ring is a
    /// function of the *set*; a second chain colliding on an anchor is
    /// dropped (two chains must not claim one set of points).
    pub fn new(members: impl IntoIterator<Item = String>, vnodes: u32, epoch: u64) -> ShardRing {
        let mut chains: Vec<ChainEntry> = members
            .into_iter()
            .filter_map(|spec| ChainEntry::parse(&spec))
            .collect();
        chains.sort_by_key(|a| a.spec());
        chains.dedup();
        // Absorb bare singletons into the chains that list them: a node
        // advertising just itself (`--shard-ring auto` on a replica that
        // has not parsed peers yet) while another spec lists it inside a
        // multi-member chain is the same node wearing its chain role —
        // not a second ring member claiming its own points.
        let absorbed: Vec<bool> = chains
            .iter()
            .map(|c| {
                c.members().len() == 1
                    && chains
                        .iter()
                        .any(|other| other.members().len() > 1 && other.contains(&c.members()[0]))
            })
            .collect();
        let mut keep = absorbed.iter();
        chains.retain(|_| !*keep.next().unwrap());
        let mut seen_anchors: Vec<&str> = Vec::with_capacity(chains.len());
        let mut kept: Vec<ChainEntry> = Vec::with_capacity(chains.len());
        for chain in &chains {
            if !seen_anchors.contains(&chain.anchor()) {
                seen_anchors.push(chain.anchor());
                kept.push(chain.clone());
            }
        }
        let chains = kept;
        let members: Vec<String> = chains.iter().map(ChainEntry::spec).collect();
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(chains.len() * vnodes as usize);
        for (i, chain) in chains.iter().enumerate() {
            for v in 0..vnodes {
                points.push((
                    fnv1a(format!("{}#{v}", chain.anchor()).as_bytes()),
                    i as u32,
                ));
            }
        }
        points.sort();
        ShardRing {
            epoch,
            vnodes,
            members,
            chains,
            points,
        }
    }

    /// The ring's version: bumped by every membership change, stamped on
    /// every routed request.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Virtual nodes per member.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// The member set — canonical chain specs, sorted.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// The parsed chains, index-aligned with [`ShardRing::members`].
    pub fn chains(&self) -> &[ChainEntry] {
        &self.chains
    }

    /// Every serving **address** across all chains (heads and
    /// replicas), in chain order. This — not [`ShardRing::members`],
    /// which holds chain *specs* — is what membership broadcasts and
    /// rebalance pulls must connect to.
    pub fn serving_addrs(&self) -> Vec<String> {
        self.chains
            .iter()
            .flat_map(|c| c.members().iter().cloned())
            .collect()
    }

    /// Is `addr` a serving member of any chain (head or replica)?
    pub fn contains(&self, addr: &str) -> bool {
        self.chains.iter().any(|c| c.contains(addr))
    }

    /// The chain serving `addr`, if any.
    pub fn chain_containing(&self, addr: &str) -> Option<&ChainEntry> {
        self.chains.iter().find(|c| c.contains(addr))
    }

    /// The chain owning KB `name`: successor point on the ring,
    /// rendezvous tie-break among points sharing that hash value. Empty
    /// rings own nothing (`None`).
    pub fn chain_of(&self, name: &str) -> Option<&ChainEntry> {
        if self.points.is_empty() {
            return None;
        }
        let h = fnv1a(name.as_bytes());
        let start = self
            .points
            .partition_point(|&(point, _)| point < h)
            .checked_rem(self.points.len())
            .unwrap_or(0);
        let successor = self.points[start].0;
        // Collect every point colliding on the successor hash (sorted,
        // so they are adjacent) and break the tie by rendezvous score.
        let mut best: Option<(u32, u64)> = None;
        for &(point, chain) in self.points[start..]
            .iter()
            .take_while(|&&(point, _)| point == successor)
        {
            debug_assert_eq!(point, successor);
            let score = rendezvous(name, self.chains[chain as usize].anchor());
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((chain, score));
            }
        }
        best.map(|(chain, _)| &self.chains[chain as usize])
    }

    /// The head of the chain owning KB `name` — the address a write for
    /// `name` must land on.
    pub fn owner_of(&self, name: &str) -> Option<&str> {
        self.chain_of(name).map(ChainEntry::head)
    }

    /// The stable anchor of the chain owning `name` — the identity the
    /// handoff fence compares: a name is "moving" only when its *chain*
    /// changes, not when roles rotate inside one chain.
    pub fn anchor_of(&self, name: &str) -> Option<&str> {
        self.chain_of(name).map(ChainEntry::anchor)
    }

    /// Would a broadcast ring `(members, epoch)` supersede this one?
    /// Rings are **totally ordered** by `(epoch, member set)`: a higher
    /// epoch always wins, and two rings colliding on one epoch — two
    /// originators mutated membership concurrently, each bumping its
    /// own ring to the same number — are broken by lexicographic
    /// comparison of the sorted member lists. Every node applies the
    /// same rule, so the cluster converges on one winner instead of
    /// holding divergent rings at a single epoch (split-brain routing
    /// the epoch-pin 421 could never see). The losing membership change
    /// is dropped, not merged: its originator observes the winning ring
    /// and must re-issue the change against it (DESIGN.md §13.3).
    pub fn superseded_by(&self, members: &[String], epoch: u64) -> bool {
        if epoch != self.epoch {
            return epoch > self.epoch;
        }
        // Canonicalize through the chain parser so a broadcast spelling
        // a chain differently (`a~a` dups, whitespace) compares equal.
        let mut candidate: Vec<String> = members
            .iter()
            .filter_map(|m| ChainEntry::parse(m))
            .map(|c| c.spec())
            .collect();
        candidate.sort_unstable();
        candidate.dedup();
        candidate > self.members
    }

    /// Do two rings place every name identically — same anchors, same
    /// vnodes? True across pure chain-topology changes (rotation,
    /// replica enlist/drop), which is what lets the sync path adopt them
    /// without a handoff fence or a rebalance pull.
    pub fn same_placement(&self, other: &ShardRing) -> bool {
        // Chains sort by spec, not anchor, so compare anchor *sets*.
        let mut ours: Vec<&str> = self.chains.iter().map(ChainEntry::anchor).collect();
        let mut theirs: Vec<&str> = other.chains.iter().map(ChainEntry::anchor).collect();
        ours.sort_unstable();
        theirs.sort_unstable();
        self.vnodes == other.vnodes && ours == theirs
    }
}

// --- the router --------------------------------------------------------------

/// Where a KB request should be handled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// This node owns the KB: serve it.
    Local,
    /// The named peer owns it: proxy (reads) or redirect (writes).
    Remote(String),
}

/// One node's view of the cluster: the current ring plus its own
/// advertised address. Shared by the route handlers (placement checks)
/// and the membership endpoints (ring changes); the ring swaps whole
/// under a `RwLock` so placement reads never block each other.
pub struct ShardRouter {
    ring: RwLock<ShardRing>,
    self_addr: RwLock<String>,
    /// Serializes membership operations (`join`/`leave`/`sync`): held
    /// for the whole broadcast + rebalance, so at most one transition
    /// is ever active on this node. Without it, overlapping operations
    /// would clobber each other's [`ShardRouter::begin_transition`] and
    /// the first [`ShardRouter::end_transition`] would drop the write
    /// fence while the other rebalance was still pulling.
    membership: Mutex<()>,
    /// The *other* side of an in-flight membership transition (the
    /// candidate ring on a pulling node, the superseded ring on the
    /// originator). While set, writes for any KB whose owner differs
    /// between this ring and the current one are refused with a typed
    /// 503 — the fence that keeps a mid-handoff commit from landing on
    /// a copy the migration is about to overwrite.
    pending: RwLock<Option<ShardRing>>,
}

impl ShardRouter {
    /// A router for a node advertising `self_spec` — a bare address,
    /// [`SELF_AUTO`], or a chain spec whose head is this node (e.g.
    /// `auto~10.0.0.2:7313` declares a replica behind us) — seeded with
    /// `peers` (addresses or chain specs) at ring epoch 1.
    pub fn new(self_spec: String, peers: &[String], vnodes: u32) -> ShardRouter {
        let self_addr = ChainEntry::parse(&self_spec)
            .map(|c| c.head().to_string())
            .unwrap_or(self_spec.clone());
        let members = std::iter::once(self_spec).chain(peers.iter().cloned());
        ShardRouter {
            ring: RwLock::new(ShardRing::new(members, vnodes, 1)),
            self_addr: RwLock::new(self_addr),
            membership: Mutex::new(()),
            pending: RwLock::new(None),
        }
    }

    /// Claim this node's single membership slot, or `None` when another
    /// membership operation (join/leave/sync) is mid-flight — callers
    /// answer a typed 503 and the peer retries, rather than two
    /// transitions clobbering each other's write fence. The guard is
    /// held across the whole operation, including the rebalance pull.
    pub fn try_membership(&self) -> Option<MutexGuard<'_, ()>> {
        match self.membership.try_lock() {
            Ok(guard) => Some(guard),
            // A panicking membership handler must not wedge the slot
            // forever: the fence state it guards is reset by the next
            // begin_transition, so the poison carries no information.
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Arm the handoff write fence: until [`ShardRouter::end_transition`],
    /// [`ShardRouter::in_transition`] reports `true` for every KB whose
    /// owner differs between `other` and the current ring.
    pub fn begin_transition(&self, other: ShardRing) {
        *self.pending.write().unwrap() = Some(other);
    }

    /// Disarm the handoff write fence.
    pub fn end_transition(&self) {
        *self.pending.write().unwrap() = None;
    }

    /// Is KB `name` mid-handoff — owned by different nodes under the
    /// current ring and the pending transition ring? Writes for such
    /// KBs are fenced (503 + Retry-After) until the transition ends.
    pub fn in_transition(&self, name: &str) -> bool {
        // Lock order: pending, then ring (matches `place`'s ring-first
        // read path; `pending` is only ever taken first).
        let pending = self.pending.read().unwrap();
        let Some(other) = pending.as_ref() else {
            return false;
        };
        let ring = self.ring.read().unwrap();
        // Compare anchors, not heads: a rotation inside one chain moves
        // no data, so it must not fence anything.
        other.anchor_of(name) != ring.anchor_of(name)
    }

    /// Replace the [`SELF_AUTO`] placeholder with the actually bound
    /// address — inside chain specs too (a self chain declared as
    /// `auto~replica` becomes `addr~replica`). Called once, between
    /// bind and serve.
    pub fn resolve_self(&self, actual: &str) {
        let mut self_addr = self.self_addr.write().unwrap();
        if self_addr.as_str() != SELF_AUTO {
            return;
        }
        let mut ring = self.ring.write().unwrap();
        let resolve = |m: &str| {
            if m == SELF_AUTO {
                actual.to_string()
            } else {
                m.to_string()
            }
        };
        let members: Vec<String> = ring
            .chains
            .iter()
            .map(|chain| {
                let entry = ChainEntry {
                    anchor: resolve(chain.anchor()),
                    members: chain.members().iter().map(|m| resolve(m)).collect(),
                    repl_epoch: chain.repl_epoch(),
                };
                entry.spec()
            })
            .collect();
        *ring = ShardRing::new(members, ring.vnodes, ring.epoch);
        *self_addr = actual.to_string();
    }

    /// This node's advertised address (its identity on the ring).
    pub fn self_addr(&self) -> String {
        self.self_addr.read().unwrap().clone()
    }

    /// Current ring epoch.
    pub fn epoch(&self) -> u64 {
        self.ring.read().unwrap().epoch
    }

    /// A clone of the current ring (membership endpoints render it).
    pub fn ring(&self) -> ShardRing {
        self.ring.read().unwrap().clone()
    }

    /// Where a *write* for KB `name` belongs under the current ring:
    /// local only when this node is the owning chain's head. A node
    /// that has been removed from the ring (it processed its own
    /// `leave`) places everything remotely — it degrades to a pure
    /// redirector until re-joined.
    pub fn place(&self, name: &str) -> Placement {
        let ring = self.ring.read().unwrap();
        let self_addr = self.self_addr.read().unwrap();
        match ring.owner_of(name) {
            Some(owner) if owner == self_addr.as_str() => Placement::Local,
            Some(owner) => Placement::Remote(owner.to_string()),
            None => Placement::Local, // empty ring: serve locally
        }
    }

    /// May this node serve a *read* of KB `name` from its own store?
    /// True for every member of the owning chain — replicas hold the
    /// head's KBs through WAL replication, and the `X-Arbitrex-Min-Seq`
    /// gate turns any lag into a typed 412 instead of a stale answer.
    pub fn read_serves_locally(&self, name: &str) -> bool {
        let ring = self.ring.read().unwrap();
        let self_addr = self.self_addr.read().unwrap();
        match ring.chain_of(name) {
            Some(chain) => chain.contains(&self_addr),
            None => true, // empty ring: serve locally
        }
    }

    /// Proxy targets for a read of `name`: the owning chain's members in
    /// order (head freshest first), excluding this node. A proxied read
    /// that cannot reach the head falls down the chain — that is what
    /// keeps reads available through a failover blackout.
    pub fn read_targets(&self, name: &str) -> Vec<String> {
        let ring = self.ring.read().unwrap();
        let self_addr = self.self_addr.read().unwrap();
        match ring.chain_of(name) {
            Some(chain) => chain
                .members()
                .iter()
                .filter(|m| *m != self_addr.as_str())
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }

    /// The chain this node serves in, if any.
    pub fn self_chain(&self) -> Option<ChainEntry> {
        let ring = self.ring.read().unwrap();
        let self_addr = self.self_addr.read().unwrap();
        ring.chain_containing(&self_addr).cloned()
    }

    /// Add the chain spec `addr` to the ring, bumping the epoch. `None`
    /// when any of its members already serves in the ring (the ring is
    /// unchanged).
    pub fn add_member(&self, addr: &str) -> Option<ShardRing> {
        let mut ring = self.ring.write().unwrap();
        let entry = ChainEntry::parse(addr)?;
        if entry.members().iter().any(|m| ring.contains(m)) {
            return None;
        }
        let members = ring
            .members
            .iter()
            .cloned()
            .chain(std::iter::once(addr.to_string()));
        *ring = ShardRing::new(members, ring.vnodes, ring.epoch + 1);
        metrics::SHARD_RING_CHANGES.incr();
        Some(ring.clone())
    }

    /// Remove the node `addr` from the ring, bumping the epoch: dropped
    /// from its chain's roster, and the chain itself dissolves when it
    /// was the last member. `None` when `addr` serves nowhere.
    pub fn remove_member(&self, addr: &str) -> Option<ShardRing> {
        let mut ring = self.ring.write().unwrap();
        if !ring.contains(addr) {
            return None;
        }
        let members: Vec<String> = ring
            .chains
            .iter()
            .filter_map(|chain| {
                let roster: Vec<String> = chain
                    .members()
                    .iter()
                    .filter(|m| m.as_str() != addr)
                    .cloned()
                    .collect();
                let entry = ChainEntry {
                    anchor: chain.anchor().to_string(),
                    members: roster,
                    repl_epoch: chain.repl_epoch(),
                };
                if entry.members.is_empty() {
                    None
                } else {
                    Some(entry.spec())
                }
            })
            .collect();
        *ring = ShardRing::new(members, ring.vnodes, ring.epoch + 1);
        metrics::SHARD_RING_CHANGES.incr();
        Some(ring.clone())
    }

    /// Enlist `addr` at the tail of the chain serving `host` (an
    /// existing member, usually the head), bumping the epoch. Placement
    /// is untouched — the anchor does not change — so no rebalance
    /// follows, only the new replica's WAL pull. `None` when `host`
    /// serves nowhere or `addr` already serves somewhere.
    pub fn enlist_member(&self, host: &str, addr: &str) -> Option<ShardRing> {
        let mut ring = self.ring.write().unwrap();
        if ring.contains(addr) || addr.is_empty() {
            return None;
        }
        ring.chain_containing(host)?;
        let members: Vec<String> = ring
            .chains
            .iter()
            .map(|chain| {
                if chain.contains(host) {
                    let mut roster = chain.members().to_vec();
                    roster.push(addr.to_string());
                    ChainEntry {
                        anchor: chain.anchor().to_string(),
                        members: roster,
                        repl_epoch: chain.repl_epoch(),
                    }
                    .spec()
                } else {
                    chain.spec()
                }
            })
            .collect();
        *ring = ShardRing::new(members, ring.vnodes, ring.epoch + 1);
        metrics::SHARD_RING_CHANGES.incr();
        Some(ring.clone())
    }

    /// Rotate the chain headed by `dead_head`: drop the head, promote
    /// the first replica, and record `new_repl_epoch` (the promotion's
    /// WAL epoch) on the chain — the ring-level half of the epoch
    /// composition that fences the deposed head. Bumps the ring epoch.
    /// `None` when no chain is headed by `dead_head` or the chain has
    /// no replica to promote.
    pub fn rotate_chain(&self, dead_head: &str, new_repl_epoch: u64) -> Option<ShardRing> {
        let mut ring = self.ring.write().unwrap();
        let chain = ring.chains.iter().find(|c| c.head() == dead_head)?;
        chain.successor()?;
        let members: Vec<String> = ring
            .chains
            .iter()
            .map(|chain| {
                if chain.head() == dead_head {
                    ChainEntry {
                        anchor: chain.anchor().to_string(),
                        members: chain.members()[1..].to_vec(),
                        repl_epoch: new_repl_epoch.max(chain.repl_epoch()),
                    }
                    .spec()
                } else {
                    chain.spec()
                }
            })
            .collect();
        *ring = ShardRing::new(members, ring.vnodes, ring.epoch + 1);
        metrics::SHARD_RING_CHANGES.incr();
        metrics::FAILOVER_CHAIN_ROTATIONS.incr();
        Some(ring.clone())
    }

    /// The ring this node *would* hold after adopting a broadcast
    /// (`sync` endpoint), or `None` if the broadcast does not supersede
    /// the current ring under the `(epoch, member set)` total order
    /// ([`ShardRing::superseded_by`]). The sync handler rebalances
    /// against this candidate ring *before* calling
    /// [`ShardRouter::adopt`]: until the pull completes, the node keeps
    /// routing by its old ring, so a write redirected here bounces back
    /// to the old owner instead of landing on a copy the migration
    /// would overwrite.
    pub fn preview(&self, members: &[String], epoch: u64) -> Option<ShardRing> {
        let ring = self.ring.read().unwrap();
        if !ring.superseded_by(members, epoch) {
            return None;
        }
        Some(ShardRing::new(members.iter().cloned(), ring.vnodes, epoch))
    }

    /// Adopt a broadcast ring if it supersedes ours (`sync` endpoint)
    /// under the `(epoch, member set)` total order — higher epoch wins;
    /// an epoch collision (concurrent membership changes at two
    /// originators) is broken by the member-set tie-break so every node
    /// converges on the same ring ([`ShardRing::superseded_by`]).
    /// A ring that does not supersede is ignored, which makes sync
    /// redelivery safe.
    pub fn adopt(&self, members: &[String], epoch: u64) -> bool {
        let mut ring = self.ring.write().unwrap();
        if !ring.superseded_by(members, epoch) {
            return false;
        }
        *ring = ShardRing::new(members.iter().cloned(), ring.vnodes, epoch);
        metrics::SHARD_RING_CHANGES.incr();
        true
    }
}

// --- deterministic shard faults ----------------------------------------------

/// Where a shard fault plan fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFaultSite {
    /// Refuse the k-th `release` request (after the new owner already
    /// pulled the KB): a handoff torn between transfer and release.
    HandoffTorn,
    /// Answer the k-th routed KB request with 421 as if the client's
    /// ring were stale.
    RingStale,
    /// Drop the k-th proxied read with 502.
    ProxyDrop,
}

impl ShardFaultSite {
    /// Every site, for help text and validation.
    pub const ALL: [ShardFaultSite; 3] = [
        ShardFaultSite::HandoffTorn,
        ShardFaultSite::RingStale,
        ShardFaultSite::ProxyDrop,
    ];

    /// The `--fault` spelling of this site.
    pub fn name(self) -> &'static str {
        match self {
            ShardFaultSite::HandoffTorn => "shard_handoff_torn",
            ShardFaultSite::RingStale => "shard_ring_stale",
            ShardFaultSite::ProxyDrop => "shard_proxy_drop",
        }
    }

    /// Parse a `--fault` site name.
    pub fn parse(name: &str) -> Option<ShardFaultSite> {
        ShardFaultSite::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// A deterministic, fire-once shard fault: the k-th charge at `site`
/// trips it, then the plan disarms. Shared (`Arc`) so the plan travels
/// inside a cloned `ServerConfig` while all clones count against the
/// same trigger — the same shape as [`crate::replication::NetFaultPlan`].
#[derive(Debug, Clone)]
pub struct ShardFaultPlan {
    /// Which sharding behavior misfires.
    pub site: ShardFaultSite,
    /// Fire on the `at`-th charge (1-based).
    pub at: u64,
    counter: Arc<AtomicU64>,
}

impl ShardFaultPlan {
    /// A plan firing on the `at`-th charge at `site`.
    pub fn new(site: ShardFaultSite, at: u64) -> ShardFaultPlan {
        ShardFaultPlan {
            site,
            at,
            counter: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Charge one unit at `site`; `true` exactly once, on the `at`-th
    /// charge of the plan's own site.
    pub fn fire(&self, site: ShardFaultSite) -> bool {
        if site != self.site {
            return false;
        }
        let n = self.counter.fetch_add(1, Ordering::SeqCst) + 1;
        if n == self.at {
            metrics::SHARD_FAULTS.incr();
            true
        } else {
            false
        }
    }
}

// --- live rebalancing --------------------------------------------------------

/// What one rebalance pass did.
#[derive(Debug, Default, Clone, Copy)]
pub struct RebalanceSummary {
    /// Peer KB listings scanned.
    pub scanned: u64,
    /// KBs pulled to this node (now their owner).
    pub migrated: u64,
    /// Old-owner copies released after a verified pull.
    pub released: u64,
    /// Releases refused by an injected torn handoff (both copies
    /// survive; a later pass or reconcile converges them).
    pub torn: u64,
    /// Divergent KBs merged through the `Δ` reconciliation path.
    pub merged: u64,
    /// KBs or sources skipped on errors (unreachable peer, unparsable
    /// formula, exhausted handoff retries).
    pub skipped: u64,
}

impl RebalanceSummary {
    /// Render for a membership endpoint's response body.
    pub fn to_json(self) -> Json {
        json::obj([
            ("scanned", json::n(self.scanned)),
            ("migrated", json::n(self.migrated)),
            ("released", json::n(self.released)),
            ("torn", json::n(self.torn)),
            ("merged", json::n(self.merged)),
            ("skipped", json::n(self.skipped)),
        ])
    }
}

/// One listed KB of a migration source.
struct SourceKb {
    name: String,
    seq: u64,
    hash: u64,
}

fn parse_listing(response: &PeerResponse) -> Result<Vec<SourceKb>, String> {
    let text =
        std::str::from_utf8(&response.body).map_err(|_| "listing is not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| format!("listing does not parse: {e}"))?;
    let kbs = doc
        .get("kbs")
        .and_then(|v| v.as_array())
        .ok_or("listing has no `kbs` array")?;
    let mut out = Vec::with_capacity(kbs.len());
    for entry in kbs {
        let name = entry
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or("listing entry has no name")?
            .to_string();
        let seq = entry
            .get("seq")
            .and_then(|v| v.as_u64())
            .ok_or("listing entry has no seq")?;
        let hash = entry
            .get("hash")
            .and_then(|v| v.as_str())
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or("listing entry has no hash")?;
        out.push(SourceKb { name, seq, hash });
    }
    Ok(out)
}

/// Fetch one KB (formula text + seq) from a source, on the internal
/// bypass so the old owner serves its local copy even though the ring
/// no longer points at it.
fn fetch_source_kb(client: &mut PeerClient, name: &str) -> Result<(String, u64), String> {
    let response = client
        .request_with_headers(
            "GET",
            &format!("/v1/kb/{name}"),
            None,
            &[(INTERNAL_HEADER, "1")],
        )
        .map_err(|e| format!("source unreachable: {e}"))?;
    if response.status != 200 {
        return Err(format!("source answered {} for `{name}`", response.status));
    }
    let text = std::str::from_utf8(&response.body).map_err(|_| "KB body not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| format!("KB body does not parse: {e}"))?;
    let formula = doc
        .get("formula")
        .and_then(|v| v.as_str())
        .ok_or("KB body has no formula")?
        .to_string();
    let seq = doc
        .get("seq")
        .and_then(|v| v.as_u64())
        .ok_or("KB body has no seq")?;
    Ok((formula, seq))
}

/// Ask `client`'s peer to drop its copy of `name`, guarded by the seq
/// this node pulled. `Ok(true)` released, `Ok(false)` seq conflict (a
/// commit raced the handoff — re-pull), `Err` transport trouble or an
/// injected torn handoff.
fn release_at_source(client: &mut PeerClient, name: &str, seq: u64) -> Result<bool, String> {
    let body = json::obj([("name", json::s(name)), ("seq", json::n(seq))]).to_text();
    let response = client
        .request("POST", "/v1/cluster/release", Some(&body))
        .map_err(|e| format!("release failed: {e}"))?;
    match response.status {
        200 => Ok(true),
        409 => Ok(false),
        other => Err(format!("source answered {other} for release")),
    }
}

/// Pull every KB this node now owns from `sources` (peers that may hold
/// copies under the previous ring), release their copies, and hand
/// genuine divergence to the `Δ` reconciliation path. Runs on the node
/// that *gained* ownership, synchronously inside the membership request
/// that changed the ring — when `join`/`sync` answers, the migration it
/// implies is complete (or accounted for in the summary).
pub fn rebalance(state: &ServiceState, sources: &[String]) -> RebalanceSummary {
    match &state.shards {
        Some(router) => rebalance_onto(state, sources, &router.ring()),
        None => RebalanceSummary::default(),
    }
}

/// [`rebalance`] against an explicit target ring — the sync handler
/// passes the *candidate* ring from [`ShardRouter::preview`] so the pull
/// happens while this node still routes by its old ring (writes for the
/// migrating KBs bounce between owners as 307s instead of committing
/// onto a copy the pull would overwrite).
pub fn rebalance_onto(
    state: &ServiceState,
    sources: &[String],
    ring: &ShardRing,
) -> RebalanceSummary {
    let mut summary = RebalanceSummary::default();
    let router = match &state.shards {
        Some(router) => router,
        None => return summary,
    };
    let self_addr = router.self_addr();
    for source in sources {
        if *source == self_addr {
            continue;
        }
        let mut client = match PeerClient::connect(source) {
            Ok(c) => c,
            Err(_) => {
                summary.skipped += 1;
                continue;
            }
        };
        let listing =
            match client.request_with_headers("GET", "/v1/kbs", None, &[(INTERNAL_HEADER, "1")]) {
                Ok(r) if r.status == 200 => match parse_listing(&r) {
                    Ok(l) => l,
                    Err(_) => {
                        summary.skipped += 1;
                        continue;
                    }
                },
                _ => {
                    summary.skipped += 1;
                    continue;
                }
            };
        let local: HashMap<String, (u64, u64)> = state
            .kbs
            .digest()
            .into_iter()
            .map(|(name, seq, hash)| (name, (seq, hash)))
            .collect();
        let mut reconciled_source = false;
        for kb in listing {
            summary.scanned += 1;
            if ring.owner_of(&kb.name) != Some(self_addr.as_str()) {
                continue;
            }
            if let Some(&(_, local_hash)) = local.get(&kb.name) {
                if local_hash != kb.hash {
                    // The local committed copy disagrees with the
                    // source's content. A (seq, hash) pair cannot prove
                    // either side is a strict descendant of the other —
                    // two partitioned nodes that each committed once
                    // hold *equal* seqs with different theories — so a
                    // hash mismatch is always divergence: merge with
                    // the paper's Δ, once per source (the pass covers
                    // every divergent name), never last-writer-wins.
                    if !reconciled_source {
                        reconciled_source = true;
                        match crate::replication::reconcile_with_peer(state, source) {
                            Ok(s) => summary.merged += s.merged,
                            Err(_) => summary.skipped += 1,
                        }
                    }
                    continue;
                }
            }
            match migrate_one(state, &mut client, &kb, &local) {
                Ok(outcome) => {
                    if outcome.pulled {
                        summary.migrated += 1;
                        metrics::SHARD_KBS_MIGRATED.incr();
                    }
                    if outcome.released {
                        summary.released += 1;
                    } else {
                        summary.torn += 1;
                        metrics::SHARD_HANDOFFS_TORN.incr();
                    }
                }
                Err(_) => summary.skipped += 1,
            }
        }
    }
    summary
}

struct MigrateOutcome {
    pulled: bool,
    released: bool,
}

/// Pull one KB from the source (unless the local copy already matches)
/// and release the source's copy, retrying through seq conflicts when a
/// commit races the handoff. The pull lands *before* the release, so an
/// acked commit exists on the new owner before the old owner forgets it
/// — the zero-loss edge `shard_storm.sh` hammers.
fn migrate_one(
    state: &ServiceState,
    client: &mut PeerClient,
    kb: &SourceKb,
    local: &HashMap<String, (u64, u64)>,
) -> Result<MigrateOutcome, String> {
    let mut pulled = false;
    let mut seq = kb.seq;
    let already_current = local
        .get(&kb.name)
        .is_some_and(|&(local_seq, local_hash)| local_hash == kb.hash && local_seq >= kb.seq);
    if !already_current {
        seq = pull_one(state, client, &kb.name)?;
        pulled = true;
    }
    for _ in 0..HANDOFF_RETRIES {
        match release_at_source(client, &kb.name, seq) {
            Ok(true) => {
                return Ok(MigrateOutcome {
                    pulled,
                    released: true,
                });
            }
            Ok(false) => {
                // The source committed again mid-handoff: adopt the
                // newer state and retry the release against it.
                seq = pull_one(state, client, &kb.name)?;
                pulled = true;
            }
            Err(_) => {
                // Torn handoff (injected or real): both copies survive;
                // the caller counts it and a later pass converges.
                return Ok(MigrateOutcome {
                    pulled,
                    released: false,
                });
            }
        }
    }
    Err(format!(
        "handoff of `{}` lost {HANDOFF_RETRIES} races",
        kb.name
    ))
}

/// Fetch `name` from the source and land it verbatim (seq included) so
/// the digests agree afterwards. Returns the adopted seq.
fn pull_one(state: &ServiceState, client: &mut PeerClient, name: &str) -> Result<u64, String> {
    let (text, seq) = fetch_source_kb(client, name)?;
    let mut sig = arbitrex_logic::Sig::new();
    let formula =
        parse_formula(&mut sig, &text).map_err(|e| format!("source formula unparsable: {e}"))?;
    state
        .kbs
        .force_put(name, StoredKb { sig, formula, seq })
        .map_err(|e| e.to_string())?;
    Ok(seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7313")).collect()
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("kb-{i}")).collect()
    }

    #[test]
    fn placement_is_deterministic_and_total() {
        let ring = ShardRing::new(addrs(3), 64, 1);
        let again = ShardRing::new(addrs(3).into_iter().rev(), 64, 1);
        for name in names(500) {
            let owner = ring.owner_of(&name).unwrap();
            assert!(ring.contains(owner));
            // Member order must not matter: the ring is a set function.
            assert_eq!(again.owner_of(&name).unwrap(), owner);
        }
    }

    #[test]
    fn virtual_nodes_spread_the_namespace() {
        let ring = ShardRing::new(addrs(3), 64, 1);
        let mut counts: HashMap<&str, usize> = HashMap::new();
        let names = names(3000);
        for name in &names {
            *counts.entry(ring.owner_of(name).unwrap()).or_default() += 1;
        }
        assert_eq!(counts.len(), 3, "every member owns a slice");
        for (&member, &count) in &counts {
            // With 64 vnodes the split stays well inside 2x of fair.
            assert!(
                count > names.len() / 6 && count < names.len() / 2 + names.len() / 10,
                "member {member} owns {count} of {}",
                names.len()
            );
        }
    }

    #[test]
    fn membership_change_moves_only_the_new_members_slice() {
        let before = ShardRing::new(addrs(2), 64, 1);
        let after = ShardRing::new(addrs(3), 64, 2);
        let newcomer = &addrs(3)[2];
        let mut moved = 0usize;
        let names = names(1000);
        for name in &names {
            let old = before.owner_of(name).unwrap();
            let new = after.owner_of(name).unwrap();
            if old != new {
                // Consistency: growth only reassigns names *to* the
                // newcomer, never shuffles names between old members.
                assert_eq!(new, newcomer, "`{name}` moved {old} -> {new}");
                moved += 1;
            }
        }
        // ~1/3 of the namespace moves; anywhere inside a generous band
        // proves the ring is consistent, not rehash-everything.
        assert!(moved > names.len() / 6 && moved < names.len() / 2);
    }

    #[test]
    fn leave_is_the_inverse_of_join() {
        let ring = ShardRing::new(addrs(3), 64, 5);
        let shrunk = ShardRing::new(addrs(2), 64, 6);
        let gone = &addrs(3)[2];
        for name in names(500) {
            let owner = ring.owner_of(&name).unwrap();
            if owner != gone {
                assert_eq!(shrunk.owner_of(&name).unwrap(), owner);
            } else {
                assert_ne!(shrunk.owner_of(&name).unwrap(), gone);
            }
        }
    }

    #[test]
    fn router_resolves_auto_and_versions_membership() {
        let router = ShardRouter::new(SELF_AUTO.to_string(), &addrs(1), 8);
        router.resolve_self("127.0.0.1:9999");
        assert_eq!(router.self_addr(), "127.0.0.1:9999");
        assert_eq!(router.epoch(), 1);
        assert!(router.ring().contains("127.0.0.1:9999"));
        assert!(!router.ring().contains(SELF_AUTO));

        let ring = router.add_member("10.0.0.9:7313").unwrap();
        assert_eq!(ring.epoch(), 2);
        assert!(router.add_member("10.0.0.9:7313").is_none(), "idempotent");
        let ring = router.remove_member("10.0.0.9:7313").unwrap();
        assert_eq!(ring.epoch(), 3);
        assert!(router.remove_member("10.0.0.9:7313").is_none());

        // Adoption: only superseding rings land. At an equal epoch the
        // member-set tie-break decides; addrs(3) sorts below the
        // current ["127.0.0.1:9999"], so it loses.
        assert!(!router.adopt(&addrs(3), 3), "equal epoch, losing set");
        assert!(router.adopt(&addrs(3), 7));
        assert_eq!(router.epoch(), 7);
        assert_eq!(router.ring().members(), &addrs(3)[..]);
    }

    #[test]
    fn equal_epoch_ring_collisions_converge_on_one_winner() {
        // Two originators mutate membership concurrently: both bump to
        // the same epoch with different member sets. The `(epoch,
        // member set)` total order must pick the same winner on every
        // node, or the cluster holds divergent rings at one epoch that
        // no 421 can detect and no anti-entropy pass heals.
        let set_a = vec!["10.0.0.0:7313".to_string(), "10.0.0.1:7313".to_string()];
        let set_b = vec!["10.0.0.0:7313".to_string(), "10.0.0.2:7313".to_string()];
        let ring_a = ShardRing::new(set_a.clone(), 8, 4);
        let ring_b = ShardRing::new(set_b.clone(), 8, 4);
        assert!(ring_a.superseded_by(&set_b, 4), "b wins the tie-break");
        assert!(
            !ring_b.superseded_by(&set_a, 4),
            "the winner keeps its ring"
        );
        assert!(
            !ring_a.superseded_by(&set_a, 4),
            "identical ring is not newer"
        );
        assert!(
            ring_b.superseded_by(&set_a, 5),
            "a higher epoch beats any set"
        );
        // Member order and duplicates in the broadcast must not change
        // the outcome: the order is over the *set*.
        let shuffled = vec![set_b[1].clone(), set_b[0].clone(), set_b[1].clone()];
        assert!(ring_a.superseded_by(&shuffled, 4));

        // Routers holding the two rings converge after cross-delivery:
        // the loser adopts, the winner ignores, both end identical.
        let r1 = ShardRouter::new(set_a[0].clone(), &set_a[1..], 8);
        let r2 = ShardRouter::new(set_b[0].clone(), &set_b[1..], 8);
        assert!(r1.adopt(&set_a, 4));
        assert!(r2.adopt(&set_b, 4));
        assert!(r1.adopt(&set_b, 4), "loser adopts the winning ring");
        assert!(!r2.adopt(&set_a, 4), "winner ignores the losing ring");
        assert_eq!(r1.ring().members(), r2.ring().members());
        assert_eq!(r1.epoch(), r2.epoch());
    }

    #[test]
    fn membership_operations_serialize_through_one_slot() {
        let router = ShardRouter::new(addrs(1)[0].clone(), &[], 8);
        let guard = router.try_membership().expect("slot initially free");
        assert!(
            router.try_membership().is_none(),
            "a second concurrent membership operation must be refused"
        );
        drop(guard);
        assert!(router.try_membership().is_some(), "slot frees on drop");
    }

    #[test]
    fn transition_fence_covers_exactly_the_moving_names() {
        let router = ShardRouter::new(addrs(1)[0].clone(), &addrs(1), 64);
        assert!(!router.in_transition("anything"), "no pending ring");

        let candidate = router.preview(&addrs(2), 2).expect("newer epoch previews");
        assert!(
            router.preview(&addrs(1), 1).is_none(),
            "the current ring must not preview"
        );
        assert!(
            router.preview(&["0.0.0.0:1".to_string()], 1).is_none(),
            "an equal epoch with a losing member set must not preview"
        );
        router.begin_transition(candidate.clone());

        let mut moving = 0;
        for name in names(300) {
            let moves = candidate.owner_of(&name) != router.ring().owner_of(&name);
            assert_eq!(router.in_transition(&name), moves, "{name}");
            moving += usize::from(moves);
        }
        assert!(moving > 0, "a grown ring must move some names");

        router.end_transition();
        assert!(!router.in_transition("anything"), "fence lowered");
    }

    #[test]
    fn removed_node_places_everything_remotely() {
        let router = ShardRouter::new("10.0.0.0:7313".to_string(), &addrs(2)[1..], 16);
        let mut members = addrs(2);
        members.remove(0);
        assert!(router.adopt(&members, 2));
        for name in names(50) {
            match router.place(&name) {
                Placement::Remote(owner) => assert_ne!(owner, "10.0.0.0:7313"),
                Placement::Local => panic!("removed node still owns `{name}`"),
            }
        }
    }

    #[test]
    fn shard_fault_plans_fire_once_at_their_site_only() {
        let plan = ShardFaultPlan::new(ShardFaultSite::HandoffTorn, 2);
        assert!(!plan.fire(ShardFaultSite::RingStale));
        assert!(!plan.fire(ShardFaultSite::ProxyDrop));
        assert!(!plan.fire(ShardFaultSite::HandoffTorn)); // 1st
        assert!(plan.fire(ShardFaultSite::HandoffTorn)); // 2nd: fires
        assert!(!plan.fire(ShardFaultSite::HandoffTorn)); // disarmed
                                                          // A clone counts against the same trigger (the plan travels
                                                          // inside a cloned ServerConfig).
        let original = ShardFaultPlan::new(ShardFaultSite::ProxyDrop, 2);
        let clone = original.clone();
        assert!(!clone.fire(ShardFaultSite::ProxyDrop));
        assert!(original.fire(ShardFaultSite::ProxyDrop));
    }

    #[test]
    fn shard_fault_site_names_round_trip() {
        for site in ShardFaultSite::ALL {
            assert_eq!(ShardFaultSite::parse(site.name()), Some(site));
        }
        assert_eq!(ShardFaultSite::parse("shard_gremlins"), None);
        assert_eq!(ShardFaultSite::parse("net_drop"), None);
    }

    #[test]
    fn chain_specs_parse_and_round_trip() {
        // A bare address is a chain of one anchored at itself — PR 9's
        // member format, unchanged.
        let bare = ChainEntry::parse("10.0.0.1:7313").unwrap();
        assert_eq!(bare.anchor(), "10.0.0.1:7313");
        assert_eq!(bare.head(), "10.0.0.1:7313");
        assert_eq!(bare.successor(), None);
        assert_eq!(bare.repl_epoch(), 0);
        assert_eq!(bare.spec(), "10.0.0.1:7313");

        let chain = ChainEntry::parse("a:1~b:1~c:1@3").unwrap();
        assert_eq!(chain.anchor(), "a:1", "anchor defaults to the head");
        assert_eq!(chain.head(), "a:1");
        assert_eq!(chain.successor(), Some("b:1"));
        assert_eq!(chain.members(), ["a:1", "b:1", "c:1"]);
        assert_eq!(chain.repl_epoch(), 3);
        assert_eq!(chain.spec(), "a:1~b:1~c:1@3");

        // A rotated chain keeps its original anchor, rendered only when
        // it no longer equals the head.
        let rotated = ChainEntry::parse("a:1=b:1~c:1@4").unwrap();
        assert_eq!(rotated.anchor(), "a:1");
        assert_eq!(rotated.head(), "b:1");
        assert_eq!(rotated.spec(), "a:1=b:1~c:1@4");
        assert_eq!(
            ChainEntry::parse(&rotated.spec()).unwrap(),
            rotated,
            "canonical specs round-trip"
        );

        assert!(ChainEntry::parse("").is_none());
        assert!(ChainEntry::parse("@3").is_none());
    }

    #[test]
    fn singleton_specs_absorb_into_the_chain_that_lists_them() {
        // A replica advertising just itself while a peer's spec lists it
        // inside a chain is one node, not two ring members.
        let ring = ShardRing::new(
            ["b:1".to_string(), "a:1~b:1".to_string(), "c:1".to_string()],
            16,
            1,
        );
        assert_eq!(ring.chains().len(), 2);
        assert_eq!(ring.chain_containing("b:1").unwrap().head(), "a:1");
        assert!(ring.contains("c:1"), "unrelated singletons survive");
        assert_eq!(
            ring.serving_addrs(),
            ["a:1".to_string(), "b:1".to_string(), "c:1".to_string()],
            "serving addresses flatten every chain"
        );
    }

    #[test]
    fn rotation_and_enlistment_never_move_placement() {
        let before = ShardRing::new(
            ["a:1~b:1".to_string(), "c:1".to_string(), "d:1".to_string()],
            64,
            1,
        );
        // Head a:1 dies: b:1 promotes at WAL epoch 2.
        let rotated = ShardRing::new(
            [
                "a:1=b:1@2".to_string(),
                "c:1".to_string(),
                "d:1".to_string(),
            ],
            64,
            2,
        );
        // c:1 grows a replica tail.
        let enlisted = ShardRing::new(
            [
                "a:1~b:1".to_string(),
                "c:1~e:1".to_string(),
                "d:1".to_string(),
            ],
            64,
            2,
        );
        assert!(before.same_placement(&rotated));
        assert!(before.same_placement(&enlisted));
        for name in names(300) {
            // Every name stays on its chain; only the head role moved.
            assert_eq!(
                before.anchor_of(&name).unwrap(),
                rotated.anchor_of(&name).unwrap(),
                "{name}"
            );
            let owner_before = before.owner_of(&name).unwrap();
            let owner_after = rotated.owner_of(&name).unwrap();
            if owner_before == "a:1" {
                assert_eq!(owner_after, "b:1", "{name} follows the promotion");
            } else {
                assert_eq!(owner_before, owner_after, "{name}");
            }
            assert_eq!(owner_before, enlisted.owner_of(&name).unwrap(), "{name}");
        }
    }

    #[test]
    fn router_enlists_and_rotates_chains_in_place() {
        let router = ShardRouter::new(
            "a:1".to_string(),
            &["a:1".to_string(), "c:1".to_string()],
            64,
        );
        let grown = router.enlist_member("a:1", "b:1").expect("enlists");
        assert_eq!(grown.epoch(), 2);
        assert_eq!(
            grown.chain_containing("a:1").unwrap().members(),
            ["a:1", "b:1"]
        );
        assert!(
            router.enlist_member("a:1", "b:1").is_none(),
            "an already-serving member cannot enlist again"
        );
        assert!(
            router.enlist_member("nobody:1", "d:1").is_none(),
            "the host must serve somewhere"
        );

        let rotated = router.rotate_chain("a:1", 2).expect("rotates");
        assert_eq!(rotated.epoch(), 3);
        let chain = rotated.chain_containing("b:1").unwrap().clone();
        assert_eq!(chain.head(), "b:1");
        assert_eq!(chain.anchor(), "a:1", "the anchor survives the rotation");
        assert_eq!(chain.repl_epoch(), 2);
        assert!(!rotated.contains("a:1"), "the deposed head serves nowhere");
        assert!(
            router.rotate_chain("c:1", 2).is_none(),
            "a chain of one has no successor to promote"
        );
    }

    #[test]
    fn replicas_serve_reads_locally_but_route_writes_to_their_head() {
        let router = ShardRouter::new(
            "b:1".to_string(),
            &["a:1~b:1".to_string(), "c:1".to_string()],
            64,
        );
        let ring = router.ring();
        let mut chained = 0;
        for name in names(200) {
            let owner = ring.owner_of(&name).unwrap().to_string();
            if owner == "a:1" {
                chained += 1;
                assert!(router.read_serves_locally(&name), "{name}");
                assert_eq!(router.place(&name), Placement::Remote("a:1".to_string()));
                assert_eq!(router.read_targets(&name), ["a:1".to_string()], "{name}");
            } else {
                assert!(!router.read_serves_locally(&name), "{name}");
                assert_eq!(router.place(&name), Placement::Remote(owner));
            }
        }
        assert!(chained > 0, "the chain must own some names");
    }
}
