//! Consistent-hash sharding of named KBs across a cluster of primaries.
//!
//! PR 8 gave one KB namespace a single primary with epoch-fenced
//! replicas; this module spreads the namespace over *several* primaries.
//! A [`ShardRing`] — consistent hashing with virtual nodes and a
//! rendezvous tie-break — maps each KB name to exactly one owner. Every
//! node serves the KBs it owns locally, **proxies** reads for the rest
//! to the owner, and answers mutations for the rest with
//! `307 Temporary Redirect` plus `X-Arbitrex-Shard-Owner`, so a commit
//! always lands at (and is fenced by) its owner.
//!
//! The ring is versioned by a **ring epoch**. Every routed KB response
//! carries `X-Arbitrex-Ring-Epoch`; a client may pin the epoch it
//! routed against by sending the same header, and a mismatch is refused
//! with a typed `421 Misdirected Request` instead of a split-brain
//! commit against a stale ring. This is the membership-layer analogue
//! of the replication fencing epoch (DESIGN.md §12): the replication
//! epoch fences *who may write a store*, the ring epoch fences *which
//! store a name maps to*.
//!
//! Membership changes (`POST /v1/cluster/{join,leave}`) bump the epoch,
//! broadcast the new ring to every member (`POST /v1/cluster/sync`,
//! adopted only if it supersedes under the `(epoch, member set)` total
//! order — see [`ShardRing::superseded_by`]), and trigger **live
//! rebalancing**: each node that
//! adopted the ring pulls the digest of every migration source
//! (`GET /v1/kbs`: name, seq, canonical content hash — the same digest
//! the PR 8 anti-entropy pass compares), fetches each KB it now owns
//! over the replication transport ([`PeerClient`]), lands it verbatim
//! with [`crate::kb::KbStore::force_put`], and then asks the old owner
//! to release its copy (`POST /v1/cluster/release`, guarded by the
//! pulled seq so a commit racing the handoff is never dropped).
//! Divergence discovered during the pull — both sides committed to the
//! same name under a partition — is handed to the PR 8 `Δ`-arbitration
//! reconciliation path ([`crate::replication::reconcile_with_peer`]),
//! not to last-writer-wins.
//!
//! # Deterministic fault plan
//!
//! [`ShardFaultPlan`] arms exactly one fire-once fault (`serve
//! --fault`): `shard_handoff_torn` (the k-th release request is refused
//! after the data transfer, as if the handoff connection tore — both
//! copies survive and a later pass converges them), `shard_ring_stale`
//! (the k-th routed KB request is answered 421 as if the client's ring
//! were stale), `shard_proxy_drop` (the k-th proxied read is dropped
//! with 502). Like the `net_*` plans they disarm after firing: what is
//! under test is the retry/convergence machinery, not a sticky outage.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, TryLockError};

use arbitrex_logic::parse as parse_formula;

use crate::json::{self, Json};
use crate::kb::StoredKb;
use crate::metrics;
use crate::replication::{PeerClient, PeerResponse};
use crate::ServiceState;

/// Virtual nodes per member unless `--shard-vnodes` says otherwise.
pub const DEFAULT_VNODES: u32 = 64;
/// Placeholder for "my own bound address" in `--shard-ring`: resolved
/// to the actual listen address once the listener is bound (so tests
/// and scripts can shard a server bound to port 0).
pub const SELF_AUTO: &str = "auto";
/// Request header marking cluster-internal traffic (handoff pulls and
/// owner-side proxy legs); it bypasses ownership routing so a node can
/// always read a peer's local copy during a migration.
pub const INTERNAL_HEADER: &str = "x-arbitrex-shard-internal";
/// Attempts the rebalancer makes to pull-and-release one KB when the
/// old owner reports a seq conflict (a commit raced the handoff).
pub const HANDOFF_RETRIES: u32 = 3;

/// FNV-1a, the ring's stable 64-bit hash (no dependency, stable across
/// builds — ring placement must agree between separately started
/// processes).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix(h)
}

/// SplitMix64 finalizer. Raw FNV-1a diffuses too little on the short,
/// near-identical strings rings are made of (`host:port#3` vs
/// `host:port#4`), which skews vnode arcs badly; the finalizer restores
/// avalanche while staying a pure, dependency-free function.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Rendezvous score of `(name, member)`, the tie-break when two virtual
/// nodes land on the same ring point.
fn rendezvous(name: &str, member: &str) -> u64 {
    let mut bytes = Vec::with_capacity(name.len() + member.len() + 1);
    bytes.extend_from_slice(name.as_bytes());
    bytes.push(0xFF); // unambiguous separator: 0xFF never appears in a KB name
    bytes.extend_from_slice(member.as_bytes());
    fnv1a(&bytes)
}

// --- the ring ----------------------------------------------------------------

/// A consistent-hash ring over the cluster members: each member owns
/// `vnodes` points; a KB name belongs to the member owning the first
/// point clockwise of the name's hash, with a rendezvous tie-break when
/// several points collide on one hash value. Placement is a pure
/// function of `(members, vnodes)` — two nodes holding equal rings
/// route identically, which is what the ring epoch certifies.
#[derive(Debug, Clone)]
pub struct ShardRing {
    epoch: u64,
    vnodes: u32,
    /// Sorted, deduplicated member addresses.
    members: Vec<String>,
    /// `(point hash, member index)`, sorted by hash.
    points: Vec<(u64, u32)>,
}

impl ShardRing {
    /// A ring over `members` at `epoch`. Members are sorted and
    /// deduplicated so the ring is a function of the *set*.
    pub fn new(members: impl IntoIterator<Item = String>, vnodes: u32, epoch: u64) -> ShardRing {
        let mut members: Vec<String> = members.into_iter().filter(|m| !m.is_empty()).collect();
        members.sort();
        members.dedup();
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(members.len() * vnodes as usize);
        for (i, member) in members.iter().enumerate() {
            for v in 0..vnodes {
                points.push((fnv1a(format!("{member}#{v}").as_bytes()), i as u32));
            }
        }
        points.sort();
        ShardRing {
            epoch,
            vnodes,
            members,
            points,
        }
    }

    /// The ring's version: bumped by every membership change, stamped on
    /// every routed request.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Virtual nodes per member.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// The member set, sorted.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// Is `addr` a member?
    pub fn contains(&self, addr: &str) -> bool {
        self.members.iter().any(|m| m == addr)
    }

    /// The owner of KB `name`: successor point on the ring, rendezvous
    /// tie-break among points sharing that hash value. Empty rings own
    /// nothing (`None`).
    pub fn owner_of(&self, name: &str) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let h = fnv1a(name.as_bytes());
        let start = self
            .points
            .partition_point(|&(point, _)| point < h)
            .checked_rem(self.points.len())
            .unwrap_or(0);
        let successor = self.points[start].0;
        // Collect every point colliding on the successor hash (sorted,
        // so they are adjacent) and break the tie by rendezvous score.
        let mut best: Option<(&str, u64)> = None;
        for &(point, member) in self.points[start..]
            .iter()
            .take_while(|&&(point, _)| point == successor)
        {
            debug_assert_eq!(point, successor);
            let candidate = self.members[member as usize].as_str();
            let score = rendezvous(name, candidate);
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((candidate, score));
            }
        }
        best.map(|(m, _)| m)
    }

    /// Would a broadcast ring `(members, epoch)` supersede this one?
    /// Rings are **totally ordered** by `(epoch, member set)`: a higher
    /// epoch always wins, and two rings colliding on one epoch — two
    /// originators mutated membership concurrently, each bumping its
    /// own ring to the same number — are broken by lexicographic
    /// comparison of the sorted member lists. Every node applies the
    /// same rule, so the cluster converges on one winner instead of
    /// holding divergent rings at a single epoch (split-brain routing
    /// the epoch-pin 421 could never see). The losing membership change
    /// is dropped, not merged: its originator observes the winning ring
    /// and must re-issue the change against it (DESIGN.md §13.3).
    pub fn superseded_by(&self, members: &[String], epoch: u64) -> bool {
        if epoch != self.epoch {
            return epoch > self.epoch;
        }
        let mut candidate: Vec<&str> = members
            .iter()
            .filter(|m| !m.is_empty())
            .map(String::as_str)
            .collect();
        candidate.sort_unstable();
        candidate.dedup();
        let current: Vec<&str> = self.members.iter().map(String::as_str).collect();
        candidate > current
    }
}

// --- the router --------------------------------------------------------------

/// Where a KB request should be handled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// This node owns the KB: serve it.
    Local,
    /// The named peer owns it: proxy (reads) or redirect (writes).
    Remote(String),
}

/// One node's view of the cluster: the current ring plus its own
/// advertised address. Shared by the route handlers (placement checks)
/// and the membership endpoints (ring changes); the ring swaps whole
/// under a `RwLock` so placement reads never block each other.
pub struct ShardRouter {
    ring: RwLock<ShardRing>,
    self_addr: RwLock<String>,
    /// Serializes membership operations (`join`/`leave`/`sync`): held
    /// for the whole broadcast + rebalance, so at most one transition
    /// is ever active on this node. Without it, overlapping operations
    /// would clobber each other's [`ShardRouter::begin_transition`] and
    /// the first [`ShardRouter::end_transition`] would drop the write
    /// fence while the other rebalance was still pulling.
    membership: Mutex<()>,
    /// The *other* side of an in-flight membership transition (the
    /// candidate ring on a pulling node, the superseded ring on the
    /// originator). While set, writes for any KB whose owner differs
    /// between this ring and the current one are refused with a typed
    /// 503 — the fence that keeps a mid-handoff commit from landing on
    /// a copy the migration is about to overwrite.
    pending: RwLock<Option<ShardRing>>,
}

impl ShardRouter {
    /// A router for a node advertising `self_spec` (or [`SELF_AUTO`]),
    /// seeded with `peers` at ring epoch 1.
    pub fn new(self_spec: String, peers: &[String], vnodes: u32) -> ShardRouter {
        let members = std::iter::once(self_spec.clone()).chain(peers.iter().cloned());
        ShardRouter {
            ring: RwLock::new(ShardRing::new(members, vnodes, 1)),
            self_addr: RwLock::new(self_spec),
            membership: Mutex::new(()),
            pending: RwLock::new(None),
        }
    }

    /// Claim this node's single membership slot, or `None` when another
    /// membership operation (join/leave/sync) is mid-flight — callers
    /// answer a typed 503 and the peer retries, rather than two
    /// transitions clobbering each other's write fence. The guard is
    /// held across the whole operation, including the rebalance pull.
    pub fn try_membership(&self) -> Option<MutexGuard<'_, ()>> {
        match self.membership.try_lock() {
            Ok(guard) => Some(guard),
            // A panicking membership handler must not wedge the slot
            // forever: the fence state it guards is reset by the next
            // begin_transition, so the poison carries no information.
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Arm the handoff write fence: until [`ShardRouter::end_transition`],
    /// [`ShardRouter::in_transition`] reports `true` for every KB whose
    /// owner differs between `other` and the current ring.
    pub fn begin_transition(&self, other: ShardRing) {
        *self.pending.write().unwrap() = Some(other);
    }

    /// Disarm the handoff write fence.
    pub fn end_transition(&self) {
        *self.pending.write().unwrap() = None;
    }

    /// Is KB `name` mid-handoff — owned by different nodes under the
    /// current ring and the pending transition ring? Writes for such
    /// KBs are fenced (503 + Retry-After) until the transition ends.
    pub fn in_transition(&self, name: &str) -> bool {
        // Lock order: pending, then ring (matches `place`'s ring-first
        // read path; `pending` is only ever taken first).
        let pending = self.pending.read().unwrap();
        let Some(other) = pending.as_ref() else {
            return false;
        };
        let ring = self.ring.read().unwrap();
        other.owner_of(name) != ring.owner_of(name)
    }

    /// Replace the [`SELF_AUTO`] placeholder with the actually bound
    /// address. Called once, between bind and serve.
    pub fn resolve_self(&self, actual: &str) {
        let mut self_addr = self.self_addr.write().unwrap();
        if self_addr.as_str() != SELF_AUTO {
            return;
        }
        let mut ring = self.ring.write().unwrap();
        let members: Vec<String> = ring
            .members
            .iter()
            .map(|m| {
                if m == SELF_AUTO {
                    actual.to_string()
                } else {
                    m.clone()
                }
            })
            .collect();
        *ring = ShardRing::new(members, ring.vnodes, ring.epoch);
        *self_addr = actual.to_string();
    }

    /// This node's advertised address (its identity on the ring).
    pub fn self_addr(&self) -> String {
        self.self_addr.read().unwrap().clone()
    }

    /// Current ring epoch.
    pub fn epoch(&self) -> u64 {
        self.ring.read().unwrap().epoch
    }

    /// A clone of the current ring (membership endpoints render it).
    pub fn ring(&self) -> ShardRing {
        self.ring.read().unwrap().clone()
    }

    /// Where a request for KB `name` belongs under the current ring. A
    /// node that has been removed from the ring (it processed its own
    /// `leave`) places everything remotely — it degrades to a pure
    /// redirector until re-joined.
    pub fn place(&self, name: &str) -> Placement {
        let ring = self.ring.read().unwrap();
        let self_addr = self.self_addr.read().unwrap();
        match ring.owner_of(name) {
            Some(owner) if owner == self_addr.as_str() => Placement::Local,
            Some(owner) => Placement::Remote(owner.to_string()),
            None => Placement::Local, // empty ring: serve locally
        }
    }

    /// Add `addr` to the ring, bumping the epoch. `None` when it is
    /// already a member (the ring is unchanged).
    pub fn add_member(&self, addr: &str) -> Option<ShardRing> {
        let mut ring = self.ring.write().unwrap();
        if ring.contains(addr) {
            return None;
        }
        let members = ring
            .members
            .iter()
            .cloned()
            .chain(std::iter::once(addr.to_string()));
        *ring = ShardRing::new(members, ring.vnodes, ring.epoch + 1);
        metrics::SHARD_RING_CHANGES.incr();
        Some(ring.clone())
    }

    /// Remove `addr` from the ring, bumping the epoch. `None` when it
    /// was not a member.
    pub fn remove_member(&self, addr: &str) -> Option<ShardRing> {
        let mut ring = self.ring.write().unwrap();
        if !ring.contains(addr) {
            return None;
        }
        let members = ring.members.iter().filter(|m| m.as_str() != addr).cloned();
        *ring = ShardRing::new(members, ring.vnodes, ring.epoch + 1);
        metrics::SHARD_RING_CHANGES.incr();
        Some(ring.clone())
    }

    /// The ring this node *would* hold after adopting a broadcast
    /// (`sync` endpoint), or `None` if the broadcast does not supersede
    /// the current ring under the `(epoch, member set)` total order
    /// ([`ShardRing::superseded_by`]). The sync handler rebalances
    /// against this candidate ring *before* calling
    /// [`ShardRouter::adopt`]: until the pull completes, the node keeps
    /// routing by its old ring, so a write redirected here bounces back
    /// to the old owner instead of landing on a copy the migration
    /// would overwrite.
    pub fn preview(&self, members: &[String], epoch: u64) -> Option<ShardRing> {
        let ring = self.ring.read().unwrap();
        if !ring.superseded_by(members, epoch) {
            return None;
        }
        Some(ShardRing::new(members.iter().cloned(), ring.vnodes, epoch))
    }

    /// Adopt a broadcast ring if it supersedes ours (`sync` endpoint)
    /// under the `(epoch, member set)` total order — higher epoch wins;
    /// an epoch collision (concurrent membership changes at two
    /// originators) is broken by the member-set tie-break so every node
    /// converges on the same ring ([`ShardRing::superseded_by`]).
    /// A ring that does not supersede is ignored, which makes sync
    /// redelivery safe.
    pub fn adopt(&self, members: &[String], epoch: u64) -> bool {
        let mut ring = self.ring.write().unwrap();
        if !ring.superseded_by(members, epoch) {
            return false;
        }
        *ring = ShardRing::new(members.iter().cloned(), ring.vnodes, epoch);
        metrics::SHARD_RING_CHANGES.incr();
        true
    }
}

// --- deterministic shard faults ----------------------------------------------

/// Where a shard fault plan fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFaultSite {
    /// Refuse the k-th `release` request (after the new owner already
    /// pulled the KB): a handoff torn between transfer and release.
    HandoffTorn,
    /// Answer the k-th routed KB request with 421 as if the client's
    /// ring were stale.
    RingStale,
    /// Drop the k-th proxied read with 502.
    ProxyDrop,
}

impl ShardFaultSite {
    /// Every site, for help text and validation.
    pub const ALL: [ShardFaultSite; 3] = [
        ShardFaultSite::HandoffTorn,
        ShardFaultSite::RingStale,
        ShardFaultSite::ProxyDrop,
    ];

    /// The `--fault` spelling of this site.
    pub fn name(self) -> &'static str {
        match self {
            ShardFaultSite::HandoffTorn => "shard_handoff_torn",
            ShardFaultSite::RingStale => "shard_ring_stale",
            ShardFaultSite::ProxyDrop => "shard_proxy_drop",
        }
    }

    /// Parse a `--fault` site name.
    pub fn parse(name: &str) -> Option<ShardFaultSite> {
        ShardFaultSite::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// A deterministic, fire-once shard fault: the k-th charge at `site`
/// trips it, then the plan disarms. Shared (`Arc`) so the plan travels
/// inside a cloned `ServerConfig` while all clones count against the
/// same trigger — the same shape as [`crate::replication::NetFaultPlan`].
#[derive(Debug, Clone)]
pub struct ShardFaultPlan {
    /// Which sharding behavior misfires.
    pub site: ShardFaultSite,
    /// Fire on the `at`-th charge (1-based).
    pub at: u64,
    counter: Arc<AtomicU64>,
}

impl ShardFaultPlan {
    /// A plan firing on the `at`-th charge at `site`.
    pub fn new(site: ShardFaultSite, at: u64) -> ShardFaultPlan {
        ShardFaultPlan {
            site,
            at,
            counter: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Charge one unit at `site`; `true` exactly once, on the `at`-th
    /// charge of the plan's own site.
    pub fn fire(&self, site: ShardFaultSite) -> bool {
        if site != self.site {
            return false;
        }
        let n = self.counter.fetch_add(1, Ordering::SeqCst) + 1;
        if n == self.at {
            metrics::SHARD_FAULTS.incr();
            true
        } else {
            false
        }
    }
}

// --- live rebalancing --------------------------------------------------------

/// What one rebalance pass did.
#[derive(Debug, Default, Clone, Copy)]
pub struct RebalanceSummary {
    /// Peer KB listings scanned.
    pub scanned: u64,
    /// KBs pulled to this node (now their owner).
    pub migrated: u64,
    /// Old-owner copies released after a verified pull.
    pub released: u64,
    /// Releases refused by an injected torn handoff (both copies
    /// survive; a later pass or reconcile converges them).
    pub torn: u64,
    /// Divergent KBs merged through the `Δ` reconciliation path.
    pub merged: u64,
    /// KBs or sources skipped on errors (unreachable peer, unparsable
    /// formula, exhausted handoff retries).
    pub skipped: u64,
}

impl RebalanceSummary {
    /// Render for a membership endpoint's response body.
    pub fn to_json(self) -> Json {
        json::obj([
            ("scanned", json::n(self.scanned)),
            ("migrated", json::n(self.migrated)),
            ("released", json::n(self.released)),
            ("torn", json::n(self.torn)),
            ("merged", json::n(self.merged)),
            ("skipped", json::n(self.skipped)),
        ])
    }
}

/// One listed KB of a migration source.
struct SourceKb {
    name: String,
    seq: u64,
    hash: u64,
}

fn parse_listing(response: &PeerResponse) -> Result<Vec<SourceKb>, String> {
    let text =
        std::str::from_utf8(&response.body).map_err(|_| "listing is not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| format!("listing does not parse: {e}"))?;
    let kbs = doc
        .get("kbs")
        .and_then(|v| v.as_array())
        .ok_or("listing has no `kbs` array")?;
    let mut out = Vec::with_capacity(kbs.len());
    for entry in kbs {
        let name = entry
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or("listing entry has no name")?
            .to_string();
        let seq = entry
            .get("seq")
            .and_then(|v| v.as_u64())
            .ok_or("listing entry has no seq")?;
        let hash = entry
            .get("hash")
            .and_then(|v| v.as_str())
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or("listing entry has no hash")?;
        out.push(SourceKb { name, seq, hash });
    }
    Ok(out)
}

/// Fetch one KB (formula text + seq) from a source, on the internal
/// bypass so the old owner serves its local copy even though the ring
/// no longer points at it.
fn fetch_source_kb(client: &mut PeerClient, name: &str) -> Result<(String, u64), String> {
    let response = client
        .request_with_headers(
            "GET",
            &format!("/v1/kb/{name}"),
            None,
            &[(INTERNAL_HEADER, "1")],
        )
        .map_err(|e| format!("source unreachable: {e}"))?;
    if response.status != 200 {
        return Err(format!("source answered {} for `{name}`", response.status));
    }
    let text = std::str::from_utf8(&response.body).map_err(|_| "KB body not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| format!("KB body does not parse: {e}"))?;
    let formula = doc
        .get("formula")
        .and_then(|v| v.as_str())
        .ok_or("KB body has no formula")?
        .to_string();
    let seq = doc
        .get("seq")
        .and_then(|v| v.as_u64())
        .ok_or("KB body has no seq")?;
    Ok((formula, seq))
}

/// Ask `client`'s peer to drop its copy of `name`, guarded by the seq
/// this node pulled. `Ok(true)` released, `Ok(false)` seq conflict (a
/// commit raced the handoff — re-pull), `Err` transport trouble or an
/// injected torn handoff.
fn release_at_source(client: &mut PeerClient, name: &str, seq: u64) -> Result<bool, String> {
    let body = json::obj([("name", json::s(name)), ("seq", json::n(seq))]).to_text();
    let response = client
        .request("POST", "/v1/cluster/release", Some(&body))
        .map_err(|e| format!("release failed: {e}"))?;
    match response.status {
        200 => Ok(true),
        409 => Ok(false),
        other => Err(format!("source answered {other} for release")),
    }
}

/// Pull every KB this node now owns from `sources` (peers that may hold
/// copies under the previous ring), release their copies, and hand
/// genuine divergence to the `Δ` reconciliation path. Runs on the node
/// that *gained* ownership, synchronously inside the membership request
/// that changed the ring — when `join`/`sync` answers, the migration it
/// implies is complete (or accounted for in the summary).
pub fn rebalance(state: &ServiceState, sources: &[String]) -> RebalanceSummary {
    match &state.shards {
        Some(router) => rebalance_onto(state, sources, &router.ring()),
        None => RebalanceSummary::default(),
    }
}

/// [`rebalance`] against an explicit target ring — the sync handler
/// passes the *candidate* ring from [`ShardRouter::preview`] so the pull
/// happens while this node still routes by its old ring (writes for the
/// migrating KBs bounce between owners as 307s instead of committing
/// onto a copy the pull would overwrite).
pub fn rebalance_onto(
    state: &ServiceState,
    sources: &[String],
    ring: &ShardRing,
) -> RebalanceSummary {
    let mut summary = RebalanceSummary::default();
    let router = match &state.shards {
        Some(router) => router,
        None => return summary,
    };
    let self_addr = router.self_addr();
    for source in sources {
        if *source == self_addr {
            continue;
        }
        let mut client = match PeerClient::connect(source) {
            Ok(c) => c,
            Err(_) => {
                summary.skipped += 1;
                continue;
            }
        };
        let listing =
            match client.request_with_headers("GET", "/v1/kbs", None, &[(INTERNAL_HEADER, "1")]) {
                Ok(r) if r.status == 200 => match parse_listing(&r) {
                    Ok(l) => l,
                    Err(_) => {
                        summary.skipped += 1;
                        continue;
                    }
                },
                _ => {
                    summary.skipped += 1;
                    continue;
                }
            };
        let local: HashMap<String, (u64, u64)> = state
            .kbs
            .digest()
            .into_iter()
            .map(|(name, seq, hash)| (name, (seq, hash)))
            .collect();
        let mut reconciled_source = false;
        for kb in listing {
            summary.scanned += 1;
            if ring.owner_of(&kb.name) != Some(self_addr.as_str()) {
                continue;
            }
            if let Some(&(_, local_hash)) = local.get(&kb.name) {
                if local_hash != kb.hash {
                    // The local committed copy disagrees with the
                    // source's content. A (seq, hash) pair cannot prove
                    // either side is a strict descendant of the other —
                    // two partitioned nodes that each committed once
                    // hold *equal* seqs with different theories — so a
                    // hash mismatch is always divergence: merge with
                    // the paper's Δ, once per source (the pass covers
                    // every divergent name), never last-writer-wins.
                    if !reconciled_source {
                        reconciled_source = true;
                        match crate::replication::reconcile_with_peer(state, source) {
                            Ok(s) => summary.merged += s.merged,
                            Err(_) => summary.skipped += 1,
                        }
                    }
                    continue;
                }
            }
            match migrate_one(state, &mut client, &kb, &local) {
                Ok(outcome) => {
                    if outcome.pulled {
                        summary.migrated += 1;
                        metrics::SHARD_KBS_MIGRATED.incr();
                    }
                    if outcome.released {
                        summary.released += 1;
                    } else {
                        summary.torn += 1;
                        metrics::SHARD_HANDOFFS_TORN.incr();
                    }
                }
                Err(_) => summary.skipped += 1,
            }
        }
    }
    summary
}

struct MigrateOutcome {
    pulled: bool,
    released: bool,
}

/// Pull one KB from the source (unless the local copy already matches)
/// and release the source's copy, retrying through seq conflicts when a
/// commit races the handoff. The pull lands *before* the release, so an
/// acked commit exists on the new owner before the old owner forgets it
/// — the zero-loss edge `shard_storm.sh` hammers.
fn migrate_one(
    state: &ServiceState,
    client: &mut PeerClient,
    kb: &SourceKb,
    local: &HashMap<String, (u64, u64)>,
) -> Result<MigrateOutcome, String> {
    let mut pulled = false;
    let mut seq = kb.seq;
    let already_current = local
        .get(&kb.name)
        .is_some_and(|&(local_seq, local_hash)| local_hash == kb.hash && local_seq >= kb.seq);
    if !already_current {
        seq = pull_one(state, client, &kb.name)?;
        pulled = true;
    }
    for _ in 0..HANDOFF_RETRIES {
        match release_at_source(client, &kb.name, seq) {
            Ok(true) => {
                return Ok(MigrateOutcome {
                    pulled,
                    released: true,
                });
            }
            Ok(false) => {
                // The source committed again mid-handoff: adopt the
                // newer state and retry the release against it.
                seq = pull_one(state, client, &kb.name)?;
                pulled = true;
            }
            Err(_) => {
                // Torn handoff (injected or real): both copies survive;
                // the caller counts it and a later pass converges.
                return Ok(MigrateOutcome {
                    pulled,
                    released: false,
                });
            }
        }
    }
    Err(format!(
        "handoff of `{}` lost {HANDOFF_RETRIES} races",
        kb.name
    ))
}

/// Fetch `name` from the source and land it verbatim (seq included) so
/// the digests agree afterwards. Returns the adopted seq.
fn pull_one(state: &ServiceState, client: &mut PeerClient, name: &str) -> Result<u64, String> {
    let (text, seq) = fetch_source_kb(client, name)?;
    let mut sig = arbitrex_logic::Sig::new();
    let formula =
        parse_formula(&mut sig, &text).map_err(|e| format!("source formula unparsable: {e}"))?;
    state
        .kbs
        .force_put(name, StoredKb { sig, formula, seq })
        .map_err(|e| e.to_string())?;
    Ok(seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7313")).collect()
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("kb-{i}")).collect()
    }

    #[test]
    fn placement_is_deterministic_and_total() {
        let ring = ShardRing::new(addrs(3), 64, 1);
        let again = ShardRing::new(addrs(3).into_iter().rev(), 64, 1);
        for name in names(500) {
            let owner = ring.owner_of(&name).unwrap();
            assert!(ring.contains(owner));
            // Member order must not matter: the ring is a set function.
            assert_eq!(again.owner_of(&name).unwrap(), owner);
        }
    }

    #[test]
    fn virtual_nodes_spread_the_namespace() {
        let ring = ShardRing::new(addrs(3), 64, 1);
        let mut counts: HashMap<&str, usize> = HashMap::new();
        let names = names(3000);
        for name in &names {
            *counts.entry(ring.owner_of(name).unwrap()).or_default() += 1;
        }
        assert_eq!(counts.len(), 3, "every member owns a slice");
        for (&member, &count) in &counts {
            // With 64 vnodes the split stays well inside 2x of fair.
            assert!(
                count > names.len() / 6 && count < names.len() / 2 + names.len() / 10,
                "member {member} owns {count} of {}",
                names.len()
            );
        }
    }

    #[test]
    fn membership_change_moves_only_the_new_members_slice() {
        let before = ShardRing::new(addrs(2), 64, 1);
        let after = ShardRing::new(addrs(3), 64, 2);
        let newcomer = &addrs(3)[2];
        let mut moved = 0usize;
        let names = names(1000);
        for name in &names {
            let old = before.owner_of(name).unwrap();
            let new = after.owner_of(name).unwrap();
            if old != new {
                // Consistency: growth only reassigns names *to* the
                // newcomer, never shuffles names between old members.
                assert_eq!(new, newcomer, "`{name}` moved {old} -> {new}");
                moved += 1;
            }
        }
        // ~1/3 of the namespace moves; anywhere inside a generous band
        // proves the ring is consistent, not rehash-everything.
        assert!(moved > names.len() / 6 && moved < names.len() / 2);
    }

    #[test]
    fn leave_is_the_inverse_of_join() {
        let ring = ShardRing::new(addrs(3), 64, 5);
        let shrunk = ShardRing::new(addrs(2), 64, 6);
        let gone = &addrs(3)[2];
        for name in names(500) {
            let owner = ring.owner_of(&name).unwrap();
            if owner != gone {
                assert_eq!(shrunk.owner_of(&name).unwrap(), owner);
            } else {
                assert_ne!(shrunk.owner_of(&name).unwrap(), gone);
            }
        }
    }

    #[test]
    fn router_resolves_auto_and_versions_membership() {
        let router = ShardRouter::new(SELF_AUTO.to_string(), &addrs(1), 8);
        router.resolve_self("127.0.0.1:9999");
        assert_eq!(router.self_addr(), "127.0.0.1:9999");
        assert_eq!(router.epoch(), 1);
        assert!(router.ring().contains("127.0.0.1:9999"));
        assert!(!router.ring().contains(SELF_AUTO));

        let ring = router.add_member("10.0.0.9:7313").unwrap();
        assert_eq!(ring.epoch(), 2);
        assert!(router.add_member("10.0.0.9:7313").is_none(), "idempotent");
        let ring = router.remove_member("10.0.0.9:7313").unwrap();
        assert_eq!(ring.epoch(), 3);
        assert!(router.remove_member("10.0.0.9:7313").is_none());

        // Adoption: only superseding rings land. At an equal epoch the
        // member-set tie-break decides; addrs(3) sorts below the
        // current ["127.0.0.1:9999"], so it loses.
        assert!(!router.adopt(&addrs(3), 3), "equal epoch, losing set");
        assert!(router.adopt(&addrs(3), 7));
        assert_eq!(router.epoch(), 7);
        assert_eq!(router.ring().members(), &addrs(3)[..]);
    }

    #[test]
    fn equal_epoch_ring_collisions_converge_on_one_winner() {
        // Two originators mutate membership concurrently: both bump to
        // the same epoch with different member sets. The `(epoch,
        // member set)` total order must pick the same winner on every
        // node, or the cluster holds divergent rings at one epoch that
        // no 421 can detect and no anti-entropy pass heals.
        let set_a = vec!["10.0.0.0:7313".to_string(), "10.0.0.1:7313".to_string()];
        let set_b = vec!["10.0.0.0:7313".to_string(), "10.0.0.2:7313".to_string()];
        let ring_a = ShardRing::new(set_a.clone(), 8, 4);
        let ring_b = ShardRing::new(set_b.clone(), 8, 4);
        assert!(ring_a.superseded_by(&set_b, 4), "b wins the tie-break");
        assert!(!ring_b.superseded_by(&set_a, 4), "the winner keeps its ring");
        assert!(!ring_a.superseded_by(&set_a, 4), "identical ring is not newer");
        assert!(ring_b.superseded_by(&set_a, 5), "a higher epoch beats any set");
        // Member order and duplicates in the broadcast must not change
        // the outcome: the order is over the *set*.
        let shuffled = vec![set_b[1].clone(), set_b[0].clone(), set_b[1].clone()];
        assert!(ring_a.superseded_by(&shuffled, 4));

        // Routers holding the two rings converge after cross-delivery:
        // the loser adopts, the winner ignores, both end identical.
        let r1 = ShardRouter::new(set_a[0].clone(), &set_a[1..], 8);
        let r2 = ShardRouter::new(set_b[0].clone(), &set_b[1..], 8);
        assert!(r1.adopt(&set_a, 4));
        assert!(r2.adopt(&set_b, 4));
        assert!(r1.adopt(&set_b, 4), "loser adopts the winning ring");
        assert!(!r2.adopt(&set_a, 4), "winner ignores the losing ring");
        assert_eq!(r1.ring().members(), r2.ring().members());
        assert_eq!(r1.epoch(), r2.epoch());
    }

    #[test]
    fn membership_operations_serialize_through_one_slot() {
        let router = ShardRouter::new(addrs(1)[0].clone(), &[], 8);
        let guard = router.try_membership().expect("slot initially free");
        assert!(
            router.try_membership().is_none(),
            "a second concurrent membership operation must be refused"
        );
        drop(guard);
        assert!(router.try_membership().is_some(), "slot frees on drop");
    }

    #[test]
    fn transition_fence_covers_exactly_the_moving_names() {
        let router = ShardRouter::new(addrs(1)[0].clone(), &addrs(1), 64);
        assert!(!router.in_transition("anything"), "no pending ring");

        let candidate = router.preview(&addrs(2), 2).expect("newer epoch previews");
        assert!(
            router.preview(&addrs(1), 1).is_none(),
            "the current ring must not preview"
        );
        assert!(
            router.preview(&["0.0.0.0:1".to_string()], 1).is_none(),
            "an equal epoch with a losing member set must not preview"
        );
        router.begin_transition(candidate.clone());

        let mut moving = 0;
        for name in names(300) {
            let moves = candidate.owner_of(&name) != router.ring().owner_of(&name);
            assert_eq!(router.in_transition(&name), moves, "{name}");
            moving += usize::from(moves);
        }
        assert!(moving > 0, "a grown ring must move some names");

        router.end_transition();
        assert!(!router.in_transition("anything"), "fence lowered");
    }

    #[test]
    fn removed_node_places_everything_remotely() {
        let router = ShardRouter::new("10.0.0.0:7313".to_string(), &addrs(2)[1..], 16);
        let mut members = addrs(2);
        members.remove(0);
        assert!(router.adopt(&members, 2));
        for name in names(50) {
            match router.place(&name) {
                Placement::Remote(owner) => assert_ne!(owner, "10.0.0.0:7313"),
                Placement::Local => panic!("removed node still owns `{name}`"),
            }
        }
    }

    #[test]
    fn shard_fault_plans_fire_once_at_their_site_only() {
        let plan = ShardFaultPlan::new(ShardFaultSite::HandoffTorn, 2);
        assert!(!plan.fire(ShardFaultSite::RingStale));
        assert!(!plan.fire(ShardFaultSite::ProxyDrop));
        assert!(!plan.fire(ShardFaultSite::HandoffTorn)); // 1st
        assert!(plan.fire(ShardFaultSite::HandoffTorn)); // 2nd: fires
        assert!(!plan.fire(ShardFaultSite::HandoffTorn)); // disarmed
                                                          // A clone counts against the same trigger (the plan travels
                                                          // inside a cloned ServerConfig).
        let original = ShardFaultPlan::new(ShardFaultSite::ProxyDrop, 2);
        let clone = original.clone();
        assert!(!clone.fire(ShardFaultSite::ProxyDrop));
        assert!(original.fire(ShardFaultSite::ProxyDrop));
    }

    #[test]
    fn shard_fault_site_names_round_trip() {
        for site in ShardFaultSite::ALL {
            assert_eq!(ShardFaultSite::parse(site.name()), Some(site));
        }
        assert_eq!(ShardFaultSite::parse("shard_gremlins"), None);
        assert_eq!(ShardFaultSite::parse("net_drop"), None);
    }
}
