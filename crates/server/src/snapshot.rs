//! Atomic snapshots of the whole KB store.
//!
//! A snapshot is the materialized fold of the write-ahead log: every
//! stored KB serialized as a plain framed commit record (`len || crc ||
//! payload`, [`crate::wal::frame_plain`]) behind a magic, a replication
//! watermark, and a count. The watermark `(epoch, rseq)` records the
//! fencing epoch and the highest global replication sequence number the
//! snapshot covers — recovery resumes stamping from there, and a replica
//! installing a shipped snapshot resumes pulling from there.
//! Snapshots are written with the classic atomic-replace protocol —
//! write `snapshot.tmp`, fsync it, rename over `snapshot.bin`, fsync the
//! directory — so a crash at any point leaves either the old snapshot or
//! the new one, never a half-written file under the live name. Only
//! after the rename is durable does the caller truncate the WAL.
//!
//! A `snapshot_rename` fault plan makes the k-th rename fail with the
//! temp file left behind, the exact debris a crash between fsync and
//! rename leaves; recovery ignores and removes stray temp files.

use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::Path;

use arbitrex_core::{Budget, BudgetSite};

use crate::kb::StoredKb;
use crate::metrics;
use crate::wal::{self, WalRecord};

/// File name of the live snapshot inside a state directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// File name snapshots are staged under before the atomic rename.
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";
/// Magic bytes opening every snapshot file (format version 2: an
/// `(epoch, rseq)` replication watermark follows the magic).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"ARBXSNP2";

/// A snapshot file whose content failed verification (bad magic, bad
/// CRC, truncation, or an undecodable entry).
#[derive(Debug)]
pub struct SnapshotCorrupt(pub String);

impl std::fmt::Display for SnapshotCorrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt snapshot: {}", self.0)
    }
}

/// The verified content of a snapshot: the stored KBs and the
/// replication watermark they are current through.
#[derive(Debug)]
pub struct SnapshotContents {
    /// The stored KBs.
    pub entries: HashMap<String, StoredKb>,
    /// Fencing epoch at snapshot time.
    pub epoch: u64,
    /// Highest global replication sequence number the snapshot covers.
    pub rseq: u64,
}

/// Serialize `entries` with their replication watermark into snapshot
/// bytes. Deterministic: a snapshot of the same state is the same bytes,
/// which is also what lets `GET /v1/replication/snapshot` build a
/// resync image in memory without touching the disk file.
pub fn encode_snapshot(entries: &HashMap<String, StoredKb>, epoch: u64, rseq: u64) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(1024);
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&epoch.to_le_bytes());
    bytes.extend_from_slice(&rseq.to_le_bytes());
    bytes.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    // Deterministic order: a snapshot of the same state is the same file.
    let mut names: Vec<&String> = entries.keys().collect();
    names.sort();
    for name in names {
        let rec = WalRecord::Commit {
            name: name.clone(),
            kb: entries[name].clone(),
        };
        bytes.extend_from_slice(&wal::frame_plain(&wal::encode_record(&rec)));
    }
    bytes
}

/// Write `entries` as a new durable snapshot of `dir`, atomically
/// replacing any previous one. On success the snapshot alone carries the
/// full state and the caller may truncate the WAL.
pub fn write_snapshot(
    dir: &Path,
    entries: &HashMap<String, StoredKb>,
    epoch: u64,
    rseq: u64,
    fault: &Budget,
) -> io::Result<()> {
    let bytes = encode_snapshot(entries, epoch, rseq);
    let tmp = dir.join(SNAPSHOT_TMP);
    let live = dir.join(SNAPSHOT_FILE);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_data()?;
    }
    if fault.charge(BudgetSite::SnapshotRename, 1).is_err() {
        // Injected failed rename: the fsync'd temp file stays behind,
        // exactly the debris of a crash between fsync and rename.
        return Err(io::Error::other("injected fault: snapshot rename failed"));
    }
    fs::rename(&tmp, &live)?;
    sync_dir(dir)?;
    metrics::WAL_SNAPSHOTS_WRITTEN.incr();
    Ok(())
}

/// fsync a directory so a rename inside it is durable. Directories open
/// read-only on every Unix this builds on; off Unix this is a no-op.
fn sync_dir(dir: &Path) -> io::Result<()> {
    if cfg!(unix) {
        File::open(dir)?.sync_all()
    } else {
        Ok(())
    }
}

/// Read and verify the snapshot of `dir`. `Ok(None)` when no snapshot
/// exists (a fresh state directory); `Err(SnapshotCorrupt)` when one
/// exists but fails verification — the recovery layer decides whether
/// that refuses startup or is salvaged by starting from the WAL alone.
pub fn read_snapshot(dir: &Path) -> io::Result<Result<Option<SnapshotContents>, SnapshotCorrupt>> {
    let mut file = match File::open(dir.join(SNAPSHOT_FILE)) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Ok(None)),
        Err(e) => return Err(e),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    Ok(parse_snapshot(&bytes).map(Some))
}

/// Verify and decode snapshot `bytes`. Public because a replica falling
/// behind the primary's frame retention installs a shipped snapshot
/// through exactly this verifier.
pub fn parse_snapshot(bytes: &[u8]) -> Result<SnapshotContents, SnapshotCorrupt> {
    let corrupt = |what: &str| SnapshotCorrupt(what.to_string());
    const HEADER: usize = 8 + 8 + 8 + 4; // magic, epoch, rseq, count
    if bytes.len() < HEADER {
        return Err(corrupt("truncated header"));
    }
    if &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let epoch = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let rseq = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let count = u32::from_le_bytes(bytes[24..28].try_into().unwrap()) as usize;
    let mut entries = HashMap::with_capacity(count.min(1024));
    let mut pos = HEADER;
    for i in 0..count {
        let remaining = bytes.len() - pos;
        if remaining < 8 {
            return Err(SnapshotCorrupt(format!("truncated at entry {i}")));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > wal::MAX_RECORD_BYTES || (len as usize) > remaining - 8 {
            return Err(SnapshotCorrupt(format!("truncated at entry {i}")));
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        if wal::crc32(payload) != crc {
            return Err(SnapshotCorrupt(format!("CRC mismatch at entry {i}")));
        }
        match wal::decode_record(payload) {
            Ok(WalRecord::Commit { name, kb }) => {
                if entries.insert(name, kb).is_some() {
                    return Err(SnapshotCorrupt(format!("duplicate entry at {i}")));
                }
            }
            Ok(WalRecord::Delete { .. }) => {
                return Err(SnapshotCorrupt(format!("delete record at entry {i}")));
            }
            Err(what) => return Err(SnapshotCorrupt(format!("entry {i}: {what}"))),
        }
        pos += 8 + len as usize;
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(SnapshotContents {
        entries,
        epoch,
        rseq,
    })
}

/// Remove a stray `snapshot.tmp` (debris of a crash or injected rename
/// fault). Safe: the temp name is never read as state.
pub fn remove_stale_tmp(dir: &Path) -> io::Result<()> {
    match fs::remove_file(dir.join(SNAPSHOT_TMP)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbitrex_logic::{parse, Sig};

    fn entries() -> HashMap<String, StoredKb> {
        let mut out = HashMap::new();
        for (name, text, seq) in [("a", "A & B", 3u64), ("b", "!C | D", 11)] {
            let mut sig = Sig::new();
            let formula = parse(&mut sig, text).unwrap();
            out.insert(name.to_string(), StoredKb { sig, formula, seq });
        }
        out
    }

    #[test]
    fn snapshot_round_trips_and_detects_corruption() {
        let dir = std::env::temp_dir().join(format!("arbx-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let _ = std::fs::remove_file(dir.join(SNAPSHOT_FILE));

        assert!(read_snapshot(&dir).unwrap().unwrap().is_none());
        let state = entries();
        write_snapshot(&dir, &state, 4, 97, &Budget::unlimited()).unwrap();
        let loaded = read_snapshot(&dir).unwrap().unwrap().unwrap();
        assert_eq!(loaded.entries, state);
        assert_eq!(loaded.epoch, 4);
        assert_eq!(loaded.rseq, 97);
        assert!(!dir.join(SNAPSHOT_TMP).exists());

        // Flip a byte mid-file: verification must fail, not mis-load.
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_snapshot(&dir).unwrap().is_err());

        // Truncation fails too.
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(read_snapshot(&dir).unwrap().is_err());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_memory_encode_matches_disk_write() {
        let dir = std::env::temp_dir().join(format!("arbx-snap-mem-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let state = entries();
        write_snapshot(&dir, &state, 2, 31, &Budget::unlimited()).unwrap();
        let on_disk = std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap();
        assert_eq!(on_disk, encode_snapshot(&state, 2, 31));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
