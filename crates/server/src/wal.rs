//! The write-ahead log: the durable record of every KB commit.
//!
//! One append-only file per state directory (`wal.log`), holding an
//! 8-byte magic followed by length-prefixed, replication-stamped
//! records:
//!
//! ```text
//! ┌───────────┬───────────┬────────────┬───────────┬─────────────────┐
//! │ len: u32  │ crc: u32  │ epoch: u64 │ rseq: u64 │ payload (len b) │
//! │ LE        │ LE, IEEE  │ LE         │ LE        │                 │
//! └───────────┴───────────┴────────────┴───────────┴─────────────────┘
//! ```
//!
//! The CRC32 covers `epoch || rseq || payload`, so a frame shipped to a
//! replica is end-to-end verifiable — stamp included — from the exact
//! bytes on the primary's disk. `epoch` is the fencing term (bumped by
//! replica promotion; a deposed primary's frames carry a stale epoch and
//! are rejected on apply) and `rseq` is the global replication sequence
//! number, one per logged record across all KBs, the cursor replicas
//! pull from (`GET /v1/replication/wal?from_seq=N`).
//!
//! The payload serializes `{name, seq, sig,
//! formula}` — the formula in the canonical prefix byte encoding from
//! `arbitrex_logic::canonical` ([`arbitrex_logic::encode_formula`]), so a
//! replayed theory is byte-identical to the acknowledged one. No commit
//! is acknowledged before an fsync covering its append has succeeded —
//! either its own ([`Wal::append`], the fsync-per-commit path) or a
//! shared group-commit flush ([`Wal::append_unsynced`] + [`sync_file`],
//! where one fsync acknowledges every append that preceded it).
//! [`crate::recovery`] replays the log on startup and decides, from the
//! position and shape of the first bad frame, whether the log has a torn
//! tail (safe to truncate) or mid-log corruption (refuse unless
//! salvaging).
//!
//! Fault injection: a [`Budget`] armed with a `wal_write` or `wal_fsync`
//! [`arbitrex_core::FaultPlan`] makes the k-th append write a genuinely
//! torn frame prefix (then fail), or skip the k-th fsync (then fail), so
//! the recovery matrix in `tests/durability.rs` exercises real on-disk
//! torn states deterministically.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use arbitrex_core::{Budget, BudgetSite};
use arbitrex_logic::{decode_formula, encode_formula, Sig};

use crate::kb::StoredKb;
use crate::metrics;

/// File name of the write-ahead log inside a state directory.
pub const WAL_FILE: &str = "wal.log";
/// Magic bytes opening every WAL file (format version 2: frames carry a
/// replication stamp — epoch + rseq — between the CRC and the payload).
pub const WAL_MAGIC: &[u8; 8] = b"ARBXWAL2";
/// Bytes of frame header before the payload: `len || crc || epoch || rseq`.
pub const FRAME_HEADER_BYTES: usize = 24;
/// Hard cap on one record's payload; a declared length beyond this is
/// corruption, not a large record (formulas are bounded far below it).
pub const MAX_RECORD_BYTES: u32 = 16 * 1024 * 1024;

/// One logged mutation. `Commit` carries the full post-state of the KB —
/// records are self-contained, never deltas — so replay is a plain fold.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A committed put/arbitrate/fit/iterate: the KB's complete new state.
    Commit {
        /// KB name.
        name: String,
        /// The committed state (sig, formula, seq).
        kb: StoredKb,
    },
    /// A committed delete.
    Delete {
        /// KB name.
        name: String,
    },
}

impl WalRecord {
    /// The KB name this record is about.
    pub fn name(&self) -> &str {
        match self {
            WalRecord::Commit { name, .. } | WalRecord::Delete { name } => name,
        }
    }
}

// --- CRC32 (IEEE 802.3, reflected) ------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// CRC32 (IEEE, as in zlib/Ethernet) over a byte string.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(0xFFFF_FFFF, bytes)
}

/// The CRC a stamped frame carries: over `epoch || rseq || payload`.
fn frame_crc(epoch: u64, rseq: u64, payload: &[u8]) -> u32 {
    let mut crc = crc32_update(0xFFFF_FFFF, &epoch.to_le_bytes());
    crc = crc32_update(crc, &rseq.to_le_bytes());
    !crc32_update(crc, payload)
}

// --- record payload codec ----------------------------------------------------

const TAG_COMMIT: u8 = 1;
const TAG_DELETE: u8 = 2;

fn push_str(out: &mut Vec<u8>, s: &str) {
    // invariant: names are validated to MAX_NAME_LEN ≪ u16::MAX before
    // they reach the log, and sig names are parser identifiers.
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Serialize one record's payload (the CRC-covered bytes).
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match rec {
        WalRecord::Commit { name, kb } => {
            out.push(TAG_COMMIT);
            push_str(&mut out, name);
            out.extend_from_slice(&kb.seq.to_le_bytes());
            out.extend_from_slice(&kb.sig.width().to_le_bytes());
            for (_, var_name) in kb.sig.iter() {
                push_str(&mut out, var_name);
            }
            let formula = encode_formula(&kb.formula);
            out.extend_from_slice(&(formula.len() as u32).to_le_bytes());
            out.extend_from_slice(&formula);
        }
        WalRecord::Delete { name } => {
            out.push(TAG_DELETE);
            push_str(&mut out, name);
        }
    }
    out
}

/// Frame a payload for the log with its replication stamp:
/// `len || crc || epoch || rseq || payload`, CRC over the stamp and the
/// payload. These exact bytes are what replication ships: a replica
/// appends the frame verbatim, so primary and replica logs are
/// byte-identical over the shared history.
pub fn frame(epoch: u64, rseq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_HEADER_BYTES);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_crc(epoch, rseq, payload).to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&rseq.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Frame a payload *without* a stamp: `len || crc32(payload) || payload`.
/// The snapshot format uses this for its entries (snapshots carry one
/// watermark stamp in their header instead of one per record).
pub fn frame_plain(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One verified WAL frame: the record plus its replication stamp.
#[derive(Debug, Clone, PartialEq)]
pub struct StampedRecord {
    /// The fencing epoch the frame was written under.
    pub epoch: u64,
    /// The global replication sequence number of this record.
    pub rseq: u64,
    /// The decoded record.
    pub record: WalRecord,
}

/// Decode one complete stamped frame (exactly `bytes`, no trailing
/// data), verifying length and CRC. This is the replica-side check on a
/// shipped frame: any torn or corrupted delivery fails here before
/// anything touches the local log.
pub fn decode_frame(bytes: &[u8]) -> Result<StampedRecord, String> {
    if bytes.len() < FRAME_HEADER_BYTES {
        return Err("frame shorter than its header".to_string());
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let epoch = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let rseq = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    if len > MAX_RECORD_BYTES {
        return Err(format!("frame length {len} exceeds the record cap"));
    }
    if bytes.len() != FRAME_HEADER_BYTES + len as usize {
        return Err(format!(
            "frame length {len} does not match {} delivered payload bytes",
            bytes.len() - FRAME_HEADER_BYTES
        ));
    }
    let payload = &bytes[FRAME_HEADER_BYTES..];
    if frame_crc(epoch, rseq, payload) != crc {
        return Err("frame CRC mismatch".to_string());
    }
    let record = decode_record(payload)?;
    Ok(StampedRecord {
        epoch,
        rseq,
        record,
    })
}

struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or("record payload truncated")?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<&'a str, String> {
        let len = self.u16()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| "non-UTF-8 string".to_string())
    }
}

/// Decode one record payload (CRC already verified by the caller).
pub fn decode_record(payload: &[u8]) -> Result<WalRecord, String> {
    let mut r = PayloadReader {
        bytes: payload,
        pos: 0,
    };
    let tag = r.u8()?;
    let name = r.str()?.to_string();
    let rec = match tag {
        TAG_COMMIT => {
            let seq = r.u64()?;
            if seq == 0 {
                return Err("commit record with seq 0".to_string());
            }
            let n_vars = r.u32()?;
            if n_vars as usize > arbitrex_logic::MAX_VARS {
                return Err(format!("signature of {n_vars} variables out of range"));
            }
            let mut sig = Sig::new();
            for _ in 0..n_vars {
                sig.var(r.str()?);
            }
            if sig.width() != n_vars {
                return Err("duplicate signature names".to_string());
            }
            let formula_len = r.u32()? as usize;
            let formula =
                decode_formula(r.take(formula_len)?).map_err(|e| format!("bad formula: {e}"))?;
            if let Some(v) = formula.max_var() {
                if v.0 >= n_vars {
                    return Err("formula mentions a variable outside its signature".to_string());
                }
            }
            WalRecord::Commit {
                name,
                kb: StoredKb { sig, formula, seq },
            }
        }
        TAG_DELETE => WalRecord::Delete { name },
        other => return Err(format!("unknown record tag {other}")),
    };
    if r.pos != payload.len() {
        return Err("trailing bytes in record payload".to_string());
    }
    Ok(rec)
}

// --- scanning (replay) -------------------------------------------------------

/// How a scan of the log ended.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanTail {
    /// Every frame parsed and verified; the log is clean.
    Clean,
    /// The final frame is incomplete or fails its CRC with nothing after
    /// it — the signature of a write torn by a crash. Recovery truncates
    /// the file at `offset` and proceeds.
    Torn {
        /// Byte offset of the first bad frame (= new file length).
        offset: u64,
    },
    /// A frame fails its CRC (or decodes to garbage) with more log after
    /// it — not a torn tail but damage inside the committed history.
    /// Recovery refuses to start unless salvaging.
    Corrupt {
        /// Byte offset of the first bad frame.
        offset: u64,
        /// What was wrong with it.
        what: String,
    },
}

/// The result of scanning a WAL file: the verified records in append
/// order, how the scan ended, and the file's byte length.
#[derive(Debug)]
pub struct WalScan {
    /// Verified, decoded records in append order, with their stamps.
    pub records: Vec<StampedRecord>,
    /// How the scan ended.
    pub tail: ScanTail,
    /// Total bytes in the file as scanned.
    pub file_len: u64,
}

/// Scan `path`, verifying every frame. Returns `None` if the file does
/// not exist. Never fails on corrupt *content* — that is reported in the
/// [`ScanTail`] — only on I/O errors reading the file.
pub fn scan(path: &Path) -> io::Result<Option<WalScan>> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let file_len = bytes.len() as u64;

    // The magic itself can be torn by a crash between create and the
    // first durable write; a *wrong* magic is a different format — corrupt.
    if bytes.len() < WAL_MAGIC.len() {
        let tail = if WAL_MAGIC.starts_with(&bytes[..]) {
            ScanTail::Torn { offset: 0 }
        } else {
            ScanTail::Corrupt {
                offset: 0,
                what: "bad magic".to_string(),
            }
        };
        return Ok(Some(WalScan {
            records: Vec::new(),
            tail,
            file_len,
        }));
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Ok(Some(WalScan {
            records: Vec::new(),
            tail: ScanTail::Corrupt {
                offset: 0,
                what: "bad magic".to_string(),
            },
            file_len,
        }));
    }

    let mut records: Vec<StampedRecord> = Vec::new();
    let mut pos = WAL_MAGIC.len();
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok(Some(WalScan {
                records,
                tail: ScanTail::Clean,
                file_len,
            }));
        }
        let offset = pos as u64;
        if remaining < FRAME_HEADER_BYTES {
            // Not even a full header: can only be a torn final write.
            return Ok(Some(WalScan {
                records,
                tail: ScanTail::Torn { offset },
                file_len,
            }));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let epoch = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().unwrap());
        let rseq = u64::from_le_bytes(bytes[pos + 16..pos + 24].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            // An absurd length that still "fits" is corruption; one that
            // runs past EOF is indistinguishable from a torn header.
            let tail = if (len as u64) > (remaining - FRAME_HEADER_BYTES) as u64 {
                ScanTail::Torn { offset }
            } else {
                ScanTail::Corrupt {
                    offset,
                    what: format!("record length {len} exceeds the {MAX_RECORD_BYTES} cap"),
                }
            };
            return Ok(Some(WalScan {
                records,
                tail,
                file_len,
            }));
        }
        let len = len as usize;
        if remaining - FRAME_HEADER_BYTES < len {
            // Frame extends past EOF: torn final write.
            return Ok(Some(WalScan {
                records,
                tail: ScanTail::Torn { offset },
                file_len,
            }));
        }
        let payload = &bytes[pos + FRAME_HEADER_BYTES..pos + FRAME_HEADER_BYTES + len];
        let at_tail = pos + FRAME_HEADER_BYTES + len == bytes.len();
        if frame_crc(epoch, rseq, payload) != crc {
            // A bad CRC on the *final* frame is a torn write (the crash
            // landed mid-payload); anywhere else it is mid-log damage.
            let tail = if at_tail {
                ScanTail::Torn { offset }
            } else {
                ScanTail::Corrupt {
                    offset,
                    what: "CRC mismatch".to_string(),
                }
            };
            return Ok(Some(WalScan {
                records,
                tail,
                file_len,
            }));
        }
        // Stamps are monotone by construction (appends assign them in
        // order under the WAL lock); a regression that passes its CRC is
        // damage to acknowledged history, never a torn write.
        let regression = records.last().and_then(|prev| {
            (epoch < prev.epoch || rseq <= prev.rseq).then(|| {
                format!(
                    "replication stamp regressed (epoch {} rseq {} after epoch {} rseq {})",
                    epoch, rseq, prev.epoch, prev.rseq
                )
            })
        });
        if let Some(what) = regression {
            return Ok(Some(WalScan {
                records,
                tail: ScanTail::Corrupt { offset, what },
                file_len,
            }));
        }
        match decode_record(payload) {
            Ok(record) => records.push(StampedRecord {
                epoch,
                rseq,
                record,
            }),
            Err(what) => {
                // CRC passed but the payload is semantically invalid:
                // that is never a torn write — refuse (or salvage).
                return Ok(Some(WalScan {
                    records,
                    tail: ScanTail::Corrupt { offset, what },
                    file_len,
                }));
            }
        }
        pos += FRAME_HEADER_BYTES + len;
    }
}

// --- the appender ------------------------------------------------------------

/// Fsync `file`, charging the `wal_fsync` fault site and recording the
/// fsync metrics. Free-standing so the group-commit flusher can sync a
/// shared handle to the log without holding the WAL mutex (the appender
/// and the flusher share the [`File`] via [`Wal::shared_file`]).
pub fn sync_file(file: &File, fault: &Budget) -> io::Result<()> {
    if fault.charge(BudgetSite::WalFsync, 1).is_err() {
        return Err(io::Error::other("injected fault: WAL fsync failed"));
    }
    let start = Instant::now();
    file.sync_data()?;
    metrics::WAL_FSYNCS.incr();
    metrics::LATENCY_WAL_FSYNC
        .record_nanos(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    Ok(())
}

/// An open, append-positioned write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: Arc<File>,
    path: PathBuf,
    fault: Budget,
}

impl Wal {
    /// Open (creating if absent) the log at `path` for appending. A fresh
    /// file gets the magic written and fsync'd immediately, so an empty
    /// log is distinguishable from a missing one. Recovery must have run
    /// first: this seeks to the end of whatever the file holds.
    pub fn open(path: &Path, fault: Budget) -> io::Result<Wal> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            file.write_all(WAL_MAGIC)?;
            file.sync_data()?;
        } else {
            file.seek(SeekFrom::End(0))?;
        }
        Ok(Wal {
            file: Arc::new(file),
            path: path.to_path_buf(),
            fault,
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A shared handle to the underlying file, for a flusher thread that
    /// fsyncs outside the WAL mutex (see [`sync_file`]).
    pub fn shared_file(&self) -> Arc<File> {
        Arc::clone(&self.file)
    }

    /// The fault budget this log was opened with (shared counters, so a
    /// flusher charging through a clone trips the same plan).
    pub fn fault(&self) -> Budget {
        self.fault.clone()
    }

    /// Append one record *without* syncing it. The record is on its way
    /// to the kernel but not durable; callers must not acknowledge the
    /// commit until a [`Wal::sync`] (or a shared [`sync_file`]) covering
    /// this append succeeds. This is the group-commit append half.
    pub fn append_unsynced(&mut self, epoch: u64, rseq: u64, rec: &WalRecord) -> io::Result<()> {
        let framed = frame(epoch, rseq, &encode_record(rec));
        self.append_frame_unsynced(&framed)
    }

    /// Append an already-framed record *without* syncing it. This is the
    /// replica's apply half: the frame arrives verified from the primary
    /// and lands on disk byte-for-byte, so the two logs stay identical
    /// over the shared history.
    ///
    /// With a fault plan armed, the k-th `wal_write` writes a torn frame
    /// prefix to disk (flushed, so it is really there for recovery to
    /// find) and fails.
    pub fn append_frame_unsynced(&mut self, framed: &[u8]) -> io::Result<()> {
        if self.fault.charge(BudgetSite::WalWrite, 1).is_err() {
            // Injected torn write: half the frame (always a strict,
            // nonempty prefix) lands on disk, exactly like a crash
            // mid-`write`.
            let torn = (framed.len() / 2).max(1);
            (&*self.file).write_all(&framed[..torn])?;
            self.file.sync_data()?;
            return Err(io::Error::other("injected fault: torn WAL write"));
        }
        (&*self.file).write_all(framed)?;
        metrics::WAL_RECORDS_APPENDED.incr();
        metrics::WAL_BYTES_APPENDED.add(framed.len() as u64);
        Ok(())
    }

    /// Fsync everything appended so far.
    pub fn sync(&self) -> io::Result<()> {
        sync_file(&self.file, &self.fault)
    }

    /// Append one record and fsync it. On success the record is durable:
    /// this is the commit point the route handlers acknowledge after
    /// (the fsync-per-commit path; group commit splits the two halves).
    ///
    /// With a fault plan armed, the k-th `wal_write` writes a torn frame
    /// prefix to disk (flushed, so it is really there for recovery to
    /// find) and fails; the k-th `wal_fsync` skips the sync and fails.
    pub fn append(&mut self, epoch: u64, rseq: u64, rec: &WalRecord) -> io::Result<()> {
        self.append_unsynced(epoch, rseq, rec)?;
        self.sync()
    }

    /// Drop every record: truncate back to the magic and fsync. Called
    /// after a snapshot has been made durable — the snapshot now carries
    /// the state the records encoded.
    pub fn truncate_to_empty(&mut self) -> io::Result<()> {
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        (&*self.file).seek(SeekFrom::Start(WAL_MAGIC.len() as u64))?;
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbitrex_logic::parse;

    fn sample_commit(name: &str, text: &str, seq: u64) -> WalRecord {
        let mut sig = Sig::new();
        let formula = parse(&mut sig, text).unwrap();
        WalRecord::Commit {
            name: name.to_string(),
            kb: StoredKb { sig, formula, seq },
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 test vectors (zlib's crc32()).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn record_payloads_round_trip() {
        for rec in [
            sample_commit("fleet", "(A & !B) | (C ^ D)", 7),
            sample_commit("x", "true", 1),
            WalRecord::Delete {
                name: "fleet".to_string(),
            },
        ] {
            let payload = encode_record(&rec);
            assert_eq!(decode_record(&payload).unwrap(), rec);
        }
    }

    #[test]
    fn decode_rejects_corruption_totally() {
        let payload = encode_record(&sample_commit("kb", "A & B", 3));
        for cut in 0..payload.len() {
            assert!(decode_record(&payload[..cut]).is_err(), "cut at {cut}");
        }
        let mut bad_tag = payload.clone();
        bad_tag[0] = 99;
        assert!(decode_record(&bad_tag).is_err());
        let mut trailing = payload.clone();
        trailing.push(0);
        assert!(decode_record(&trailing).is_err());
    }

    #[test]
    fn append_scan_round_trip_and_torn_tail() {
        let dir = std::env::temp_dir().join(format!("arbx-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(WAL_FILE);
        let _ = std::fs::remove_file(&path);

        let recs = [
            sample_commit("a", "A | B", 1),
            sample_commit("a", "A & B", 2),
            WalRecord::Delete {
                name: "a".to_string(),
            },
        ];
        {
            let mut wal = Wal::open(&path, Budget::unlimited()).unwrap();
            for (i, rec) in recs.iter().enumerate() {
                wal.append(3, 10 + i as u64, rec).unwrap();
            }
        }
        let scanned = scan(&path).unwrap().unwrap();
        assert_eq!(scanned.tail, ScanTail::Clean);
        assert_eq!(scanned.records.len(), recs.len());
        for (i, stamped) in scanned.records.iter().enumerate() {
            assert_eq!(stamped.epoch, 3);
            assert_eq!(stamped.rseq, 10 + i as u64);
            assert_eq!(stamped.record, recs[i]);
        }

        // Tear the final record: drop its last 3 bytes.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let scanned = scan(&path).unwrap().unwrap();
        assert_eq!(scanned.records.len(), 2);
        assert!(matches!(scanned.tail, ScanTail::Torn { .. }));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn decode_frame_round_trips_and_rejects_tampering() {
        let rec = sample_commit("ship", "(A & B) | C", 9);
        let framed = frame(7, 42, &encode_record(&rec));
        let stamped = decode_frame(&framed).unwrap();
        assert_eq!(stamped.epoch, 7);
        assert_eq!(stamped.rseq, 42);
        assert_eq!(stamped.record, rec);

        // Any single-byte flip anywhere in the frame must be caught:
        // in the stamp it breaks the CRC, in the header it breaks the
        // length or the CRC itself.
        for i in 0..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0xFF;
            assert!(decode_frame(&bad).is_err(), "flip at byte {i} accepted");
        }
        // Truncated and extended deliveries are rejected too.
        assert!(decode_frame(&framed[..framed.len() - 1]).is_err());
        let mut long = framed.clone();
        long.push(0);
        assert!(decode_frame(&long).is_err());
    }

    #[test]
    fn scan_rejects_stamp_regressions_as_corruption() {
        let dir = std::env::temp_dir().join(format!(
            "arbx-wal-stamp-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(WAL_FILE);
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path, Budget::unlimited()).unwrap();
            wal.append(2, 5, &sample_commit("a", "A", 1)).unwrap();
            // A frame from a *lower* epoch after a higher one can only
            // mean a deposed primary's bytes were spliced in.
            wal.append(1, 6, &sample_commit("a", "B", 2)).unwrap();
        }
        let scanned = scan(&path).unwrap().unwrap();
        assert_eq!(scanned.records.len(), 1);
        assert!(matches!(scanned.tail, ScanTail::Corrupt { .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
