//! Shared loopback HTTP client for the integration suites.
//!
//! One minimal keep-alive HTTP/1.1 client over a real socket, used by
//! every test binary in this directory instead of four hand-rolled
//! copies. Connects with a bounded retry window (child-process servers
//! in the kill-9 and replication harnesses print their address before
//! the listener is reliably accepting under load), surfaces transport
//! errors as `Err` for harnesses that expect the server to die
//! mid-exchange, and parses `Content-Length`-framed JSON responses.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use arbitrex_server::json::{self, Json};
use arbitrex_server::RunningServer;

/// How long [`Client::connect`] keeps retrying a refused connection.
pub const CONNECT_RETRY: Duration = Duration::from_secs(5);
/// Per-response read timeout on the client socket.
pub const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// A keep-alive client connection.
pub struct Client {
    pub stream: TcpStream,
}

impl Client {
    /// Connect to `addr`, retrying refused attempts for up to
    /// [`CONNECT_RETRY`] — bounded, so a server that never comes up
    /// still fails the test promptly.
    pub fn connect(addr: SocketAddr) -> Client {
        Client {
            stream: raw_connect(addr),
        }
    }

    /// Connect to an in-process [`RunningServer`].
    pub fn connect_server(server: &RunningServer) -> Client {
        Client::connect(server.addr)
    }

    /// Send one request and read one response; transport errors surface
    /// as `Err` (the kill-9 harnesses need to survive the server dying
    /// mid-exchange).
    pub fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, Json)> {
        self.try_request_with_headers(method, path, &[], body)
    }

    /// [`Client::try_request`] with extra request headers (e.g. the
    /// read-your-writes `X-Arbitrex-Min-Seq`).
    pub fn try_request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> std::io::Result<(u16, Json)> {
        self.try_send_with_headers(method, path, headers, body)?;
        let (status, _headers, text) = self.read_response()?;
        let value = json::parse(&text)
            .map_err(|e| std::io::Error::other(format!("bad JSON `{text}`: {e}")))?;
        Ok((status, value))
    }

    /// Write one request without reading the response (pipelining and
    /// queue-overflow tests park requests in flight).
    pub fn send(&mut self, method: &str, path: &str, body: &str) {
        self.try_send_with_headers(method, path, &[], body)
            .expect("send")
    }

    fn try_send_with_headers(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> std::io::Result<()> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: loopback\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())
    }

    /// Read one parked response as raw text (status, body).
    pub fn read_response_text(&mut self) -> (u16, String) {
        let (status, _headers, text) = self.read_response().expect("read response");
        (status, text)
    }

    /// Read one parked response as JSON.
    pub fn read_response_parsed(&mut self) -> (u16, Json) {
        let (status, text) = self.read_response_text();
        let value = json::parse(&text).unwrap_or_else(|e| panic!("bad JSON `{text}`: {e}"));
        (status, value)
    }

    /// Send one request and panic on any transport or framing error.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, Json) {
        self.try_request(method, path, body).expect("request")
    }

    /// [`Client::request`], also returning the raw response head (for
    /// asserting headers like `X-Arbitrex-Seq` and `Retry-After`).
    pub fn request_full(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> (u16, String, Json) {
        self.try_send_with_headers(method, path, headers, body)
            .expect("send");
        let (status, head, text) = self.read_response().expect("read response");
        let value = json::parse(&text).unwrap_or_else(|e| panic!("bad JSON `{text}`: {e}"));
        (status, head, value)
    }

    /// [`Client::request`] with extra request headers.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> (u16, Json) {
        self.try_request_with_headers(method, path, headers, body)
            .expect("request")
    }

    /// Read one `Content-Length`-framed response: status, raw head,
    /// body text.
    fn read_response(&mut self) -> std::io::Result<(u16, String, String)> {
        read_stream_response(&mut self.stream)
    }
}

/// Read one `Content-Length`-framed response off a raw stream: status,
/// raw head, body text. The frame reader behind [`Client`], exported
/// for suites (pipelining) that write their own wire bytes.
pub fn read_stream_response(stream: &mut TcpStream) -> std::io::Result<(u16, String, String)> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte)? {
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!(
                        "closed before response head (got {:?})",
                        String::from_utf8_lossy(&head)
                    ),
                ))
            }
            _ => {
                head.push(byte[0]);
                if head.ends_with(b"\r\n\r\n") {
                    break;
                }
            }
        }
    }
    let head = String::from_utf8_lossy(&head).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other("bad status line"))?;
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| std::io::Error::other("missing content-length"))?;
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body)?;
    Ok((status, head, String::from_utf8_lossy(&body).to_string()))
}

/// Connect a raw socket with the same bounded retry as [`Client`];
/// the pipelining suite writes its own wire bytes.
pub fn raw_connect(addr: SocketAddr) -> TcpStream {
    let deadline = Instant::now() + CONNECT_RETRY;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
                return stream;
            }
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("connect {addr}: {e}"),
        }
    }
}

/// One-shot request on a fresh connection.
pub fn request(server: &RunningServer, method: &str, path: &str, body: &str) -> (u16, Json) {
    Client::connect_server(server).request(method, path, body)
}

/// One-shot request against a bare address (child-process servers).
pub fn request_addr(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    Client::connect(addr).request(method, path, body)
}

/// `v[key]` as a string, with a panic message naming the key.
pub fn str_of<'a>(v: &'a Json, key: &str) -> &'a str {
    v.get(key)
        .unwrap_or_else(|| panic!("missing `{key}` in {v:?}"))
        .as_str()
        .unwrap_or_else(|| panic!("`{key}` not a string in {v:?}"))
}

/// `v[key]` as an integer, with a panic message naming the key.
pub fn num_of(v: &Json, key: &str) -> u64 {
    v.get(key)
        .unwrap_or_else(|| panic!("missing `{key}` in {v:?}"))
        .as_u64()
        .unwrap_or_else(|| panic!("`{key}` not an integer in {v:?}"))
}
