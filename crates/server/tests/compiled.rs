//! Loopback tests for the compiled-KB (ROBDD) serving tier.
//!
//! The invariant under test: a KB that has been compiled hot can be
//! committed over (guarded by `if_seq`), and the **stale BDD is never
//! served** — every response after the commit reflects the new `ψ`. The
//! tier keys compiled entries by the canonical bytes of `ψ`, so this holds
//! structurally; these tests drive it end-to-end over real sockets,
//! including a kill-9 crash landing between a compile and the commit that
//! publishes the new theory (reusing the harness from `durability.rs`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use arbitrex_logic::{parse, Interp, ModelSet, Sig};
use arbitrex_server::json::Json;
use arbitrex_server::recovery::{self, RecoverMode};
use arbitrex_server::{spawn, RunningServer, ServerConfig};

static DIR_ID: AtomicU64 = AtomicU64::new(0);

fn temp_state_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "arbx-compiled-{}-{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A server with the compiled tier fully eager (hotness 1) and the result
/// cache off, so every query's `backend` field shows the real path.
fn bdd_server(configure: impl FnOnce(&mut ServerConfig)) -> RunningServer {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        queue_depth: 16,
        cache_entries: 0,
        bdd_hotness: 1,
        ..ServerConfig::default()
    };
    configure(&mut config);
    spawn(config).expect("spawn server")
}

mod common;
use common::{num_of, request, str_of, Client};

/// The models the server reported, as interpretations over `sig_names`
/// (order fixes bit positions).
fn reported_models(v: &Json, sig_names: &[&str]) -> Vec<u64> {
    let Some(Json::Arr(models)) = v.get("models") else {
        panic!("missing `models` in {v:?}");
    };
    let mut out: Vec<u64> = models
        .iter()
        .map(|m| {
            let Json::Arr(names) = m else {
                panic!("model not an array in {v:?}")
            };
            names
                .iter()
                .map(|n| {
                    let name = n.as_str().expect("model entry");
                    1u64 << sig_names
                        .iter()
                        .position(|s| *s == name)
                        .expect("known var")
                })
                .sum()
        })
        .collect();
    out.sort_unstable();
    out
}

/// Models of `text` parsed over the fixed variable order `sig_names`.
fn expect_models(text: &str, sig_names: &[&str]) -> Vec<u64> {
    let mut sig = Sig::new();
    for name in sig_names {
        parse(&mut sig, name).unwrap();
    }
    let f = parse(&mut sig, text).unwrap();
    let mut out: Vec<u64> = ModelSet::of_formula(&f, sig.width())
        .iter()
        .map(|i| i.0)
        .collect();
    out.sort_unstable();
    out
}

fn compiled_kbs(server: &RunningServer) -> u64 {
    let (status, m) = request(server, "GET", "/metrics", "");
    assert_eq!(status, 200);
    num_of(m.get("gauges").expect("gauges"), "compiled_kbs")
}

#[test]
fn hot_kb_committed_under_if_seq_never_serves_the_stale_bdd() {
    let server = bdd_server(|_| {});
    let vars = ["A", "B"];

    // Seed ψ₀ = A & B and make it hot: with hotness 1 the first fit
    // compiles it, and μ = A leaves the theory canonically unchanged
    // (the fit's minimum is ψ₀'s own model), so it stays hot over commits.
    let (status, v) = request(
        &server,
        "POST",
        "/v1/kb/wx",
        r#"{"action": "put", "formula": "A & B"}"#,
    );
    assert_eq!(status, 200, "{v:?}");
    let (status, v) = request(
        &server,
        "POST",
        "/v1/kb/wx",
        r#"{"action": "fit", "formula": "A"}"#,
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(str_of(&v, "backend"), "bdd");
    assert_eq!(reported_models(&v, &vars), expect_models("A & B", &vars));
    assert!(compiled_kbs(&server) >= 1, "ψ₀ should be compiled");
    let seq = num_of(&v, "seq");

    // Commit over the hot theory, guarded by if_seq: ψ ← ψ Δ (!A & !B).
    // The arbitration of opposite corners keeps the fair compromises
    // {A}, {B} — a theory *disjoint in models* from ψ₀, so any stale
    // answer is detectable.
    let body = format!(r#"{{"action": "arbitrate", "formula": "!A & !B", "if_seq": {seq}}}"#);
    let (status, v) = request(&server, "POST", "/v1/kb/wx", &body);
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(
        str_of(&v, "backend"),
        "bdd",
        "hot ψ₀ answers its last query compiled"
    );
    assert!(matches!(v.get("committed"), Some(Json::Bool(true))));
    let expect_psi1 = expect_models("(A & !B) | (!A & B)", &vars);
    assert_eq!(reported_models(&v, &vars), expect_psi1);
    let seq2 = num_of(&v, "seq");
    assert_eq!(seq2, seq + 1);

    // Every query after the commit must see ψ₁, never ψ₀. The invalidation
    // hook eagerly recompiled ψ₁ (hotness transfer), so these are served
    // from the BDD — the exact path a stale entry would poison.
    for _ in 0..3 {
        let (status, v) = request(
            &server,
            "POST",
            "/v1/kb/wx",
            r#"{"action": "fit", "formula": "A | B", "op": "dalal"}"#,
        );
        assert_eq!(status, 200, "{v:?}");
        assert_eq!(str_of(&v, "backend"), "bdd");
        // dalal(ψ₁, A|B): ψ₁ ⊆ Mod(A|B), so the fit returns ψ₁ itself —
        // and recommits it. ψ₀'s answer would be {A&B} alone.
        assert_eq!(reported_models(&v, &vars), expect_psi1);
    }

    // A stale if_seq is refused with 409 and commits nothing.
    let body = format!(r#"{{"action": "arbitrate", "formula": "A", "if_seq": {seq}}}"#);
    let (status, v) = request(&server, "POST", "/v1/kb/wx", &body);
    assert_eq!(status, 409, "{v:?}");

    server.stop().unwrap();
}

#[test]
fn stateless_endpoints_promote_and_report_the_bdd_backend() {
    let server = bdd_server(|c| c.bdd_hotness = 3);
    let vars = ["S", "D", "Q"];
    let body = r#"{"psi": "(S & !D & !Q) | (!S & D & !Q) | (S & D & Q)", "mu": "D & !Q"}"#;
    // Below the threshold the kernel serves; at it, the tier compiles.
    let expect = expect_models("S & D & !Q", &vars); // Example 3.1's fit: {S, D}
    for want in ["kernel", "kernel", "bdd", "bdd"] {
        let (status, v) = request(&server, "POST", "/v1/fit", body);
        assert_eq!(status, 200, "{v:?}");
        assert_eq!(str_of(&v, "backend"), want);
        assert_eq!(reported_models(&v, &vars), expect);
    }
    assert_eq!(compiled_kbs(&server), 1);
    server.stop().unwrap();
}

#[test]
fn disabled_tier_always_reports_the_kernel_backend() {
    let server = bdd_server(|c| c.bdd_hotness = 0);
    for _ in 0..3 {
        let (status, v) = request(
            &server,
            "POST",
            "/v1/arbitrate",
            r#"{"psi": "A & B", "phi": "!A & !B"}"#,
        );
        assert_eq!(status, 200, "{v:?}");
        assert_eq!(str_of(&v, "backend"), "kernel");
    }
    assert_eq!(compiled_kbs(&server), 0);
    server.stop().unwrap();
}

// --- kill-9: crash between a compile and the commit that publishes ψ' --------

/// The i-th storm theory: a complete conjunction over six variables whose
/// single model is the bit pattern `i`. Every fit against it compiles
/// (hotness 1) and every ack commits the next one, so a SIGKILL lands
/// between some compile and its publishing commit with high probability.
fn oracle(i: u64) -> String {
    let mut parts = Vec::with_capacity(6);
    for (bit, name) in ["VA", "VB", "VC", "VD", "VE", "VF"].iter().enumerate() {
        if (i >> bit) & 1 == 1 {
            parts.push(name.to_string());
        } else {
            parts.push(format!("!{name}"));
        }
    }
    parts.join(" & ")
}

/// Child mode: a durable server with the compiled tier fully eager. A
/// no-op under a normal test run (the env var is absent).
#[test]
fn child_compiled_server_main() {
    let Ok(dir) = std::env::var("ARBX_COMPILED_CHILD_DIR") else {
        return;
    };
    let dir = PathBuf::from(dir);
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_entries: 0,
        bdd_hotness: 1,
        state_dir: Some(dir.clone()),
        snapshot_every: 16,
        ..ServerConfig::default()
    })
    .expect("spawn child server");
    let tmp = dir.join("addr.tmp");
    std::fs::write(&tmp, server.addr.to_string()).unwrap();
    std::fs::rename(&tmp, dir.join("addr.txt")).unwrap();
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

#[test]
fn kill9_between_compile_and_publish_loses_no_acknowledged_theory() {
    let dir = temp_state_dir();
    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(&exe)
        .args([
            "child_compiled_server_main",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .env("ARBX_COMPILED_CHILD_DIR", &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child server");

    let addr_file = dir.join("addr.txt");
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let addr: std::net::SocketAddr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if let Ok(addr) = text.trim().parse() {
                break addr;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "child never published an address"
        );
        std::thread::sleep(Duration::from_millis(20));
    };

    let killer = {
        let pid = child.id();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(250));
            #[cfg(unix)]
            {
                extern "C" {
                    fn kill(pid: i32, sig: i32) -> i32;
                }
                unsafe { kill(pid as i32, 9) };
            }
            #[cfg(not(unix))]
            let _ = pid;
        })
    };

    // Seed ψ = oracle(0), then storm Dalal fits: step i proposes the
    // complete conjunction oracle(i); its single model is always the
    // unique minimum, so the acked theory after seq s is exactly
    // oracle(s - 1). With hotness 1 every new ψ compiles before its
    // successor commits — the kill lands inside that window somewhere.
    let mut client = Client::connect(addr);
    #[allow(unused_assignments)]
    let mut last_acked_seq = 0u64;
    match client.try_request(
        "POST",
        "/v1/kb/storm",
        &format!(r#"{{"action": "put", "formula": "{}"}}"#, oracle(0)),
    ) {
        Ok((200, v)) => last_acked_seq = num_of(&v, "seq"),
        Ok((status, v)) => panic!("seed put failed: {status} {v:?}"),
        Err(e) => panic!("server died before the seed put: {e}"),
    }
    for i in 1..=100_000u64 {
        let body = format!(
            r#"{{"action": "fit", "op": "dalal", "formula": "{}"}}"#,
            oracle(i)
        );
        match client.try_request("POST", "/v1/kb/storm", &body) {
            Ok((200, v)) => {
                assert_eq!(num_of(&v, "seq"), i + 1, "acks must be sequential");
                assert_eq!(str_of(&v, "backend"), "bdd", "storm must ride the tier");
                last_acked_seq = i + 1;
            }
            Ok((status, v)) => panic!("unexpected status {status}: {v:?}"),
            Err(_) => break, // the kill landed
        }
    }
    killer.join().unwrap();
    let _ = child.kill();
    let _ = child.wait();
    assert!(last_acked_seq > 0, "nothing was ever acknowledged");

    // Crash-consistency: the recovered theory corresponds to its seq —
    // seq s stores oracle(s-1)'s single model (s may exceed last_acked_seq
    // by the one in-flight, unacknowledged commit). The compiled tier is
    // memory-only, so no stale BDD state can survive into recovery.
    let (map, _report) = recovery::recover(&dir, RecoverMode::Strict).expect("recover");
    let kb = map.get("storm").expect("storm KB survived");
    assert!(
        kb.seq == last_acked_seq || kb.seq == last_acked_seq + 1,
        "seq {} vs last acked {}",
        kb.seq,
        last_acked_seq
    );
    let models: Vec<Interp> = ModelSet::of_formula(&kb.formula, kb.sig.width())
        .iter()
        .collect();
    assert_eq!(models, vec![Interp(kb.seq - 1)], "theory matches its seq");

    // A fresh server over the same directory serves the recovered ψ
    // correctly through a fresh (empty) compiled tier.
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_entries: 0,
        bdd_hotness: 1,
        state_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("respawn");
    let (status, v) = request(&server, "GET", "/v1/kb/storm", "");
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(num_of(&v, "seq"), kb.seq);
    let vars = ["VA", "VB", "VC", "VD", "VE", "VF"];
    let (status, v) = request(
        &server,
        "POST",
        "/v1/kb/storm",
        r#"{"action": "fit", "formula": "VA | !VA"}"#,
    );
    assert_eq!(status, 200, "{v:?}");
    // odist fit against a tautology returns ψ itself.
    assert_eq!(
        reported_models(&v, &vars),
        expect_models(&oracle(kb.seq - 1), &vars)
    );
    server.stop().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
