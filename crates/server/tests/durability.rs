//! Crash-consistency suite for the durable KB store.
//!
//! Covers the acceptance criteria of the durability layer end to end,
//! over real sockets and a real state directory:
//!
//! * clean restart — every committed KB comes back with a byte-identical
//!   canonical formula and the same sequence number;
//! * the corruption matrix — torn tail (truncate and start), flipped CRC
//!   byte mid-log (strict refuses, salvage keeps the verified prefix),
//!   truncated snapshot (strict refuses, salvage replays the WAL alone),
//!   missing WAL with a stale snapshot (snapshot wins);
//! * injected durability faults (`wal_write`, `wal_fsync`,
//!   `snapshot_rename`) — a failed commit is a 500 and the KB is
//!   unchanged, both in memory and after a restart;
//! * `if_seq` optimistic concurrency (409 with the current seq) and the
//!   request-body cap (413 before buffering);
//! * a kill-9 harness — a child server process is SIGKILLed mid
//!   commit-storm; recovery must retain every acknowledged seq and at
//!   most one unacknowledged trailing commit.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use arbitrex_core::{BudgetSite, FaultPlan};
use arbitrex_logic::{encode_formula, parse, Sig};
use arbitrex_server::kb::{DurabilityOptions, KbStore, StoredKb};
use arbitrex_server::recovery::{self, RecoverMode};
use arbitrex_server::snapshot;
use arbitrex_server::wal::{self, Wal, WalRecord, WAL_FILE};
use arbitrex_server::{spawn, RunningServer, ServerConfig};

static DIR_ID: AtomicU64 = AtomicU64::new(0);

fn temp_state_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "arbx-durability-{}-{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_server(dir: &Path, configure: impl FnOnce(&mut ServerConfig)) -> RunningServer {
    spawn(durable_config(dir, configure)).expect("spawn durable server")
}

fn durable_config(dir: &Path, configure: impl FnOnce(&mut ServerConfig)) -> ServerConfig {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        queue_depth: 16,
        cache_entries: 64,
        state_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    };
    configure(&mut config);
    config
}

// --- shared HTTP client -------------------------------------------------------

mod common;
use common::{num_of, request, str_of, Client};

fn put_body(formula: &str) -> String {
    format!(r#"{{"action": "put", "formula": "{formula}"}}"#)
}

/// Open the state directory directly (no server) and return its KBs.
fn recover_map(dir: &Path, mode: RecoverMode) -> HashMap<String, StoredKb> {
    let (state, _report) = recovery::recover(dir, mode).expect("recover");
    state
}

/// The canonical bytes of `text` parsed in a fresh signature — what a
/// `put` of `text` stores and what replay must reproduce exactly.
fn canonical_of(text: &str) -> Vec<u8> {
    let mut sig = Sig::new();
    encode_formula(&parse(&mut sig, text).unwrap())
}

fn wal_commit(name: &str, text: &str, seq: u64) -> WalRecord {
    let mut sig = Sig::new();
    let formula = parse(&mut sig, text).unwrap();
    WalRecord::Commit {
        name: name.to_string(),
        kb: StoredKb { sig, formula, seq },
    }
}

// --- clean restart ------------------------------------------------------------

#[test]
fn restart_restores_formulas_byte_identically_with_seqs() {
    let dir = temp_state_dir();
    let server = durable_server(&dir, |_| {});

    let (status, v) = request(&server, "POST", "/v1/kb/alpha", &put_body("A & (B | !C)"));
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(num_of(&v, "seq"), 1);
    let (status, _) = request(&server, "POST", "/v1/kb/beta", &put_body("X ^ Y"));
    assert_eq!(status, 200);
    // Arbitrate new information into alpha: seq 2, exact commit.
    let (status, v) = request(
        &server,
        "POST",
        "/v1/kb/alpha",
        r#"{"action": "arbitrate", "formula": "!A & !B"}"#,
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(str_of(&v, "quality"), "exact");
    assert_eq!(num_of(&v, "seq"), 2);
    let committed_formula = str_of(&v, "formula").to_string();
    // And a KB that gets deleted: it must stay deleted after replay.
    let (status, _) = request(&server, "POST", "/v1/kb/doomed", &put_body("D"));
    assert_eq!(status, 200);
    let (status, _) = request(&server, "DELETE", "/v1/kb/doomed", "");
    assert_eq!(status, 200);
    server.stop().unwrap();

    // Clean shutdown wrote a snapshot and truncated the WAL.
    assert!(dir.join(snapshot::SNAPSHOT_FILE).exists());
    assert_eq!(
        std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(),
        wal::WAL_MAGIC.len() as u64,
        "clean shutdown should leave an empty (magic-only) WAL"
    );

    let server = durable_server(&dir, |_| {});
    let report = server.state().recovery.expect("recovery report");
    assert!(report.snapshot_loaded);
    assert_eq!(report.kbs, 2);
    assert_eq!(report.max_seq, 2);

    let (status, v) = request(&server, "GET", "/v1/kb/alpha", "");
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(num_of(&v, "seq"), 2);
    assert_eq!(str_of(&v, "formula"), committed_formula);
    let (status, v) = request(&server, "GET", "/v1/kb/beta", "");
    assert_eq!(status, 200);
    assert_eq!(num_of(&v, "seq"), 1);
    let (status, _) = request(&server, "GET", "/v1/kb/doomed", "");
    assert_eq!(status, 404);
    server.stop().unwrap();

    // Byte-level check: the recovered canonical encoding of beta equals
    // a fresh parse of what was put.
    let state = recover_map(&dir, RecoverMode::Strict);
    assert_eq!(
        encode_formula(&state["beta"].formula),
        canonical_of("X ^ Y")
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

// --- the corruption matrix ----------------------------------------------------

#[test]
fn torn_tail_is_truncated_and_the_server_starts() {
    let dir = temp_state_dir();
    {
        let mut wal = Wal::open(&dir.join(WAL_FILE), arbitrex_core::Budget::unlimited()).unwrap();
        wal.append(1, 1, &wal_commit("kept", "A | B", 1)).unwrap();
        wal.append(1, 2, &wal_commit("kept", "A & B", 2)).unwrap();
    }
    // Tear the final record: chop its last 5 bytes, as a crash mid-write
    // would.
    let wal_path = dir.join(WAL_FILE);
    let len = std::fs::metadata(&wal_path).unwrap().len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)
        .unwrap();
    f.set_len(len - 5).unwrap();
    drop(f);

    let server = durable_server(&dir, |_| {});
    let report = server.state().recovery.expect("report");
    assert!(report.torn_tail_truncated);
    assert_eq!(report.wal_records_replayed, 1);
    let (status, v) = request(&server, "GET", "/v1/kb/kept", "");
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(num_of(&v, "seq"), 1);
    // The truncated (never-acknowledged) second commit is gone.
    assert_eq!(str_of(&v, "formula"), "A | B");
    server.stop().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mid_log_corruption_refuses_strict_and_salvages_the_prefix() {
    let dir = temp_state_dir();
    {
        let mut wal = Wal::open(&dir.join(WAL_FILE), arbitrex_core::Budget::unlimited()).unwrap();
        wal.append(1, 1, &wal_commit("first", "A", 1)).unwrap();
        wal.append(1, 2, &wal_commit("second", "B", 1)).unwrap();
        wal.append(1, 3, &wal_commit("third", "C", 1)).unwrap();
    }
    // Flip one byte inside the second record's payload: mid-log damage.
    let wal_path = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let first_frame_len = {
        let pos = wal::WAL_MAGIC.len();
        wal::FRAME_HEADER_BYTES
            + u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize
    };
    let target = wal::WAL_MAGIC.len() + first_frame_len + wal::FRAME_HEADER_BYTES + 2;
    bytes[target] ^= 0xFF;
    std::fs::write(&wal_path, &bytes).unwrap();

    // Strict: the server refuses to start.
    let err = spawn(durable_config(&dir, |_| {}))
        .err()
        .expect("strict must refuse");
    assert!(err.to_string().contains("salvage"), "{err}");

    // Salvage: the verified prefix (record 1) survives, the rest is
    // dropped and counted.
    let server = durable_server(&dir, |c| c.recover = RecoverMode::Salvage);
    let report = server.state().recovery.expect("report");
    assert!(report.salvaged_bytes_dropped > 0);
    assert_eq!(report.wal_records_replayed, 1);
    let (status, _) = request(&server, "GET", "/v1/kb/first", "");
    assert_eq!(status, 200);
    let (status, _) = request(&server, "GET", "/v1/kb/second", "");
    assert_eq!(status, 404);
    server.stop().unwrap();

    // Salvage physically repaired the log: strict now starts.
    let server = durable_server(&dir, |_| {});
    server.stop().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_snapshot_refuses_strict_and_salvage_replays_the_wal() {
    let dir = temp_state_dir();
    // A snapshot holding `snap`, then a WAL commit of `walkb`.
    let mut entries = HashMap::new();
    let mut sig = Sig::new();
    let formula = parse(&mut sig, "S1 & S2").unwrap();
    entries.insert(
        "snap".to_string(),
        StoredKb {
            sig,
            formula,
            seq: 4,
        },
    );
    snapshot::write_snapshot(&dir, &entries, 1, 4, &arbitrex_core::Budget::unlimited()).unwrap();
    {
        let mut wal = Wal::open(&dir.join(WAL_FILE), arbitrex_core::Budget::unlimited()).unwrap();
        wal.append(1, 5, &wal_commit("walkb", "W", 1)).unwrap();
    }
    // Truncate the snapshot mid-file.
    let snap_path = dir.join(snapshot::SNAPSHOT_FILE);
    let bytes = std::fs::read(&snap_path).unwrap();
    std::fs::write(&snap_path, &bytes[..bytes.len() - 6]).unwrap();

    let err = spawn(durable_config(&dir, |_| {}))
        .err()
        .expect("strict must refuse");
    assert!(err.to_string().contains("salvage"), "{err}");

    let server = durable_server(&dir, |c| c.recover = RecoverMode::Salvage);
    let report = server.state().recovery.expect("report");
    assert!(report.snapshot_dropped);
    // The snapshot-only KB is lost (that is what salvage means); the WAL
    // commit survives.
    let (status, _) = request(&server, "GET", "/v1/kb/snap", "");
    assert_eq!(status, 404);
    let (status, v) = request(&server, "GET", "/v1/kb/walkb", "");
    assert_eq!(status, 200, "{v:?}");
    server.stop().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_wal_with_stale_snapshot_recovers_the_snapshot() {
    let dir = temp_state_dir();
    let mut entries = HashMap::new();
    let mut sig = Sig::new();
    let formula = parse(&mut sig, "P | Q").unwrap();
    entries.insert(
        "only".to_string(),
        StoredKb {
            sig,
            formula,
            seq: 9,
        },
    );
    snapshot::write_snapshot(&dir, &entries, 1, 9, &arbitrex_core::Budget::unlimited()).unwrap();
    // A stray snapshot.tmp (crash debris) must be ignored and removed.
    std::fs::write(dir.join(snapshot::SNAPSHOT_TMP), b"garbage").unwrap();
    assert!(!dir.join(WAL_FILE).exists());

    let server = durable_server(&dir, |_| {});
    let report = server.state().recovery.expect("report");
    assert!(report.snapshot_loaded);
    assert_eq!(report.wal_records_replayed, 0);
    assert_eq!(report.max_seq, 9);
    assert!(!dir.join(snapshot::SNAPSHOT_TMP).exists());
    let (status, v) = request(&server, "GET", "/v1/kb/only", "");
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(num_of(&v, "seq"), 9);
    server.stop().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

// --- injected durability faults ----------------------------------------------

#[test]
fn wal_write_fault_fails_the_commit_and_leaves_the_kb_unchanged() {
    let dir = temp_state_dir();
    let server = durable_server(&dir, |c| {
        c.durability_fault = Some(FaultPlan::new(BudgetSite::WalWrite, 2));
    });
    let (status, _) = request(&server, "POST", "/v1/kb/kb", &put_body("A & B"));
    assert_eq!(status, 200);
    // The second append trips: a genuinely torn frame lands on disk and
    // the commit fails with a 500.
    let (status, v) = request(&server, "POST", "/v1/kb/kb", &put_body("A | B"));
    assert_eq!(status, 500, "{v:?}");
    assert!(
        str_of(&v, "error").contains("durable commit failed"),
        "{v:?}"
    );
    // In memory: unchanged.
    let (status, v) = request(&server, "GET", "/v1/kb/kb", "");
    assert_eq!(status, 200);
    assert_eq!(num_of(&v, "seq"), 1);
    assert_eq!(str_of(&v, "formula"), "A & B");
    server.stop().unwrap();

    // After restart the torn frame is truncated away and the acked state
    // is intact.
    let server = durable_server(&dir, |_| {});
    let (status, v) = request(&server, "GET", "/v1/kb/kb", "");
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(num_of(&v, "seq"), 1);
    assert_eq!(str_of(&v, "formula"), "A & B");
    server.stop().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wal_fsync_fault_fails_the_commit() {
    let dir = temp_state_dir();
    let server = durable_server(&dir, |c| {
        c.durability_fault = Some(FaultPlan::new(BudgetSite::WalFsync, 1));
    });
    let (status, v) = request(&server, "POST", "/v1/kb/kb", &put_body("A"));
    assert_eq!(status, 500, "{v:?}");
    // Never acknowledged, never created.
    let (status, _) = request(&server, "GET", "/v1/kb/kb", "");
    assert_eq!(status, 404);
    server.stop().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_rename_fault_leaves_every_commit_safe_in_the_wal() {
    let dir = temp_state_dir();
    let server = durable_server(&dir, |c| {
        c.snapshot_every = 1;
        c.durability_fault = Some(FaultPlan::new(BudgetSite::SnapshotRename, 1));
    });
    // The commit acks 200 even though the due snapshot then fails — the
    // record is already durable in the log.
    let (status, v) = request(&server, "POST", "/v1/kb/kb", &put_body("A & !B"));
    assert_eq!(status, 200, "{v:?}");
    // The failed rename leaves the fsync'd temp file behind.
    assert!(dir.join(snapshot::SNAPSHOT_TMP).exists());
    assert!(!dir.join(snapshot::SNAPSHOT_FILE).exists());
    drop(server); // SIGKILL-like: no clean shutdown snapshot.

    let server = durable_server(&dir, |_| {});
    let report = server.state().recovery.expect("report");
    assert!(!report.snapshot_loaded);
    assert_eq!(report.wal_records_replayed, 1);
    let (status, v) = request(&server, "GET", "/v1/kb/kb", "");
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(str_of(&v, "formula"), "A & !B");
    server.stop().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

// --- satellites: if_seq and the body cap -------------------------------------

#[test]
fn if_seq_guards_mutations_with_a_typed_409() {
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let (status, _) = request(&server, "POST", "/v1/kb/kb", &put_body("A"));
    assert_eq!(status, 200);

    // Stale guard: 409 carrying both seqs.
    let (status, v) = request(
        &server,
        "POST",
        "/v1/kb/kb",
        r#"{"action": "put", "formula": "B", "if_seq": 7}"#,
    );
    assert_eq!(status, 409, "{v:?}");
    assert_eq!(num_of(&v, "code"), 409);
    assert_eq!(num_of(&v, "seq"), 1);
    assert_eq!(num_of(&v, "if_seq"), 7);

    // Matching guard: commits.
    let (status, v) = request(
        &server,
        "POST",
        "/v1/kb/kb",
        r#"{"action": "put", "formula": "B", "if_seq": 1}"#,
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(num_of(&v, "seq"), 2);

    // The guard also covers arbitrate, iterate, and delete.
    let (status, v) = request(
        &server,
        "POST",
        "/v1/kb/kb",
        r#"{"action": "arbitrate", "formula": "!B", "if_seq": 1}"#,
    );
    assert_eq!(status, 409, "{v:?}");
    let (status, _) = request(
        &server,
        "POST",
        "/v1/kb/kb",
        r#"{"action": "iterate", "formula": "B", "if_seq": 9}"#,
    );
    assert_eq!(status, 409);
    let (status, _) = request(
        &server,
        "POST",
        "/v1/kb/kb",
        r#"{"action": "delete", "if_seq": 9}"#,
    );
    assert_eq!(status, 409);
    let (status, _) = request(
        &server,
        "POST",
        "/v1/kb/kb",
        r#"{"action": "delete", "if_seq": 2}"#,
    );
    assert_eq!(status, 200);
    // Creating a KB guarded on "does not exist yet": if_seq 0.
    let (status, v) = request(
        &server,
        "POST",
        "/v1/kb/fresh",
        r#"{"action": "put", "formula": "C", "if_seq": 0}"#,
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(num_of(&v, "seq"), 1);
    server.stop().unwrap();
}

#[test]
fn oversized_bodies_are_refused_413_before_buffering() {
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        max_body_bytes: 256,
        ..ServerConfig::default()
    })
    .unwrap();
    let big = format!(
        r#"{{"action": "put", "formula": "{}"}}"#,
        "A & ".repeat(200) + "A"
    );
    assert!(big.len() > 256);
    let (status, v) = Client::connect(server.addr)
        .try_request("POST", "/v1/kb/kb", &big)
        .expect("413 exchange");
    assert_eq!(status, 413, "{v:?}");
    assert!(str_of(&v, "error").contains("exceeds"), "{v:?}");
    // A small request still works.
    let (status, _) = request(&server, "POST", "/v1/kb/kb", &put_body("A"));
    assert_eq!(status, 200);
    server.stop().unwrap();
}

// --- group commit ------------------------------------------------------------

fn durable_store(dir: &Path, group_commit: bool, flush_interval: Duration) -> KbStore {
    let (store, _report) = KbStore::open_durable(DurabilityOptions {
        dir: dir.to_path_buf(),
        snapshot_every: 0,
        recover: RecoverMode::Strict,
        fault: None,
        group_commit,
        flush_interval,
        initial_epoch: None,
        replica: false,
    })
    .expect("open durable store");
    store
}

/// N committer threads, each driving its own KB through `commits`
/// sequential puts. Every put must be acknowledged.
fn commit_storm(store: &KbStore, threads: u64, commits: u64) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            let store = &store;
            scope.spawn(move || {
                let name = format!("kb-{t}");
                for i in 1..=commits {
                    let mut sig = Sig::new();
                    let formula = parse(&mut sig, &oracle(i)).unwrap();
                    let (seq, _, _) = store
                        .put(&name, sig, formula, None)
                        .unwrap_or_else(|e| panic!("commit {i} on {name}: {e:?}"));
                    assert_eq!(seq, i);
                }
            });
        }
    });
}

/// Every KB from [`commit_storm`] recovered at its final seq with the
/// oracle's exact canonical bytes.
fn assert_storm_recovered(dir: &Path, threads: u64, commits: u64) {
    let recovered = recover_map(dir, RecoverMode::Strict);
    assert_eq!(recovered.len(), threads as usize);
    for t in 0..threads {
        let kb = &recovered[&format!("kb-{t}")];
        assert_eq!(kb.seq, commits);
        assert_eq!(encode_formula(&kb.formula), canonical_of(&oracle(commits)));
    }
}

#[test]
fn group_commit_acks_every_concurrent_commit_durably() {
    let dir = temp_state_dir();
    {
        let store = durable_store(&dir, true, Duration::ZERO);
        commit_storm(&store, 8, 32);
        // The store drops here: the flusher drains and joins.
    }
    assert_storm_recovered(&dir, 8, 32);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn group_commit_off_restores_fsync_per_commit() {
    let dir = temp_state_dir();
    {
        let store = durable_store(&dir, false, Duration::ZERO);
        commit_storm(&store, 4, 16);
    }
    assert_storm_recovered(&dir, 4, 16);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn flush_interval_lingers_without_losing_acks() {
    let dir = temp_state_dir();
    {
        // A 2ms linger forces the deadline-accumulation path: the
        // flusher waits for batch-mates, then must still ack everyone.
        let store = durable_store(&dir, true, Duration::from_millis(2));
        commit_storm(&store, 4, 16);
    }
    assert_storm_recovered(&dir, 4, 16);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn group_commit_snapshot_acks_pending_commits() {
    let dir = temp_state_dir();
    {
        let (store, _report) = KbStore::open_durable(DurabilityOptions {
            dir: dir.clone(),
            snapshot_every: 4, // snapshots race the flusher mid-storm
            recover: RecoverMode::Strict,
            fault: None,
            group_commit: true,
            flush_interval: Duration::from_millis(1),
            initial_epoch: None,
            replica: false,
        })
        .expect("open durable store");
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let store = &store;
                scope.spawn(move || {
                    let name = format!("kb-{t}");
                    for i in 1..=16u64 {
                        let mut sig = Sig::new();
                        let formula = parse(&mut sig, &oracle(i)).unwrap();
                        let (_, _, snapshot_due) = store.put(&name, sig, formula, None).unwrap();
                        if snapshot_due {
                            // Route handlers do exactly this after
                            // releasing their entry lock.
                            let _ = store.maybe_snapshot();
                        }
                    }
                });
            }
        });
    }
    assert_storm_recovered(&dir, 4, 16);
    std::fs::remove_dir_all(&dir).unwrap();
}

// --- the kill-9 harness -------------------------------------------------------

/// Deterministic oracle: the formula the i-th put writes. Always the
/// same six variables in the same order, so a fresh parse reproduces the
/// stored encoding bit for bit.
fn oracle(i: u64) -> String {
    let mut parts = Vec::with_capacity(6);
    for (bit, name) in ["VA", "VB", "VC", "VD", "VE", "VF"].iter().enumerate() {
        if (i >> bit) & 1 == 1 {
            parts.push(name.to_string());
        } else {
            parts.push(format!("!{name}"));
        }
    }
    parts.join(" & ")
}

/// Child mode for the kill-9 harness: runs a durable server and blocks
/// until killed. A no-op under a normal test run (the env var is absent).
#[test]
fn child_server_main() {
    let Ok(dir) = std::env::var("ARBX_DURABILITY_CHILD_DIR") else {
        return;
    };
    let dir = PathBuf::from(dir);
    let server = durable_server(&dir, |c| {
        c.threads = 2;
        c.snapshot_every = 16; // exercise snapshot + truncate mid-storm
    });
    // Publish the bound address atomically (write + rename).
    let tmp = dir.join("addr.tmp");
    std::fs::write(&tmp, server.addr.to_string()).unwrap();
    std::fs::rename(&tmp, dir.join("addr.txt")).unwrap();
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

#[test]
fn kill9_mid_commit_storm_loses_no_acknowledged_commit() {
    let dir = temp_state_dir();
    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(&exe)
        .args([
            "child_server_main",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .env("ARBX_DURABILITY_CHILD_DIR", &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child server");

    // Wait for the child to publish its address.
    let addr_file = dir.join("addr.txt");
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let addr: std::net::SocketAddr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if let Ok(addr) = text.trim().parse() {
                break addr;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "child never published an address"
        );
        std::thread::sleep(Duration::from_millis(20));
    };

    // SIGKILL lands mid-storm, from another thread, while commits are in
    // flight. Child::kill is SIGKILL on Unix: no drain, no snapshot.
    let killer = {
        let pid = child.id();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(250));
            #[cfg(unix)]
            {
                extern "C" {
                    fn kill(pid: i32, sig: i32) -> i32;
                }
                unsafe { kill(pid as i32, 9) };
            }
            #[cfg(not(unix))]
            let _ = pid;
        })
    };

    // The commit storm: sequential puts on one keep-alive connection.
    // Every 200 response is an acknowledged, fsync'd commit.
    let mut client = Client::connect(addr);
    let mut last_acked = 0u64;
    for i in 1..=100_000u64 {
        match client.try_request("POST", "/v1/kb/storm", &put_body(&oracle(i))) {
            Ok((200, v)) => {
                assert_eq!(num_of(&v, "seq"), i, "acks must be sequential");
                last_acked = i;
            }
            Ok((status, v)) => panic!("unexpected status {status}: {v:?}"),
            Err(_) => break, // the kill landed
        }
    }
    killer.join().unwrap();
    let _ = child.kill();
    let _ = child.wait();
    assert!(last_acked > 0, "no commit was ever acknowledged");

    // Recover the directory in-process and check the crash-consistency
    // contract: every acknowledged commit is present (seq can only have
    // advanced past last_acked by the one in-flight, unacknowledged put),
    // and the surviving formula is byte-identical to the oracle's.
    let (store, report) = KbStore::open_durable(DurabilityOptions {
        dir: dir.clone(),
        snapshot_every: 0,
        recover: RecoverMode::Strict,
        fault: None,
        group_commit: false,
        flush_interval: Duration::ZERO,
        initial_epoch: None,
        replica: false,
    })
    .expect("strict recovery after SIGKILL");
    let entry = store.entry("storm").expect("storm KB survived");
    let kb = entry.lock().unwrap();
    assert!(
        kb.seq == last_acked || kb.seq == last_acked + 1,
        "recovered seq {} vs last acked {last_acked}",
        kb.seq
    );
    assert_eq!(
        encode_formula(&kb.formula),
        canonical_of(&oracle(kb.seq)),
        "recovered formula must match the oracle for seq {}",
        kb.seq
    );
    assert_eq!(report.max_seq, kb.seq);
    drop(kb);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Child mode for the group-commit kill-9 harness: a durable server with
/// group commit on and a nonzero flush interval, so the SIGKILL lands
/// while batched, not-yet-fsynced appends are in flight. A no-op under a
/// normal test run (the env var is absent).
#[test]
fn child_group_commit_server_main() {
    let Ok(dir) = std::env::var("ARBX_GC_CHILD_DIR") else {
        return;
    };
    let dir = PathBuf::from(dir);
    let server = durable_server(&dir, |c| {
        c.threads = 4;
        c.snapshot_every = 16;
        c.group_commit = true;
        c.flush_interval_us = 200; // widen the append→fsync window
    });
    let tmp = dir.join("addr.tmp");
    std::fs::write(&tmp, server.addr.to_string()).unwrap();
    std::fs::rename(&tmp, dir.join("addr.txt")).unwrap();
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

#[test]
fn kill9_group_commit_storm_loses_no_acknowledged_commit() {
    const CLIENTS: u64 = 4;
    let dir = temp_state_dir();
    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(&exe)
        .args([
            "child_group_commit_server_main",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .env("ARBX_GC_CHILD_DIR", &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child server");

    let addr_file = dir.join("addr.txt");
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let addr: std::net::SocketAddr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if let Ok(addr) = text.trim().parse() {
                break addr;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "child never published an address"
        );
        std::thread::sleep(Duration::from_millis(20));
    };

    let killer = {
        let pid = child.id();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(400));
            #[cfg(unix)]
            {
                extern "C" {
                    fn kill(pid: i32, sig: i32) -> i32;
                }
                unsafe { kill(pid as i32, 9) };
            }
            #[cfg(not(unix))]
            let _ = pid;
        })
    };

    // Concurrent commit storms: one sequential client per KB, so the
    // per-KB in-flight window is exactly one put, while across KBs the
    // flusher sees genuinely concurrent appends to batch.
    let clients: Vec<std::thread::JoinHandle<u64>> = (0..CLIENTS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let path = format!("/v1/kb/storm-{t}");
                let mut last_acked = 0u64;
                for i in 1..=100_000u64 {
                    match client.try_request("POST", &path, &put_body(&oracle(i))) {
                        Ok((200, v)) => {
                            assert_eq!(num_of(&v, "seq"), i, "acks must be sequential");
                            last_acked = i;
                        }
                        Ok((status, v)) => panic!("unexpected status {status}: {v:?}"),
                        Err(_) => break, // the kill landed
                    }
                }
                last_acked
            })
        })
        .collect();
    let acked: Vec<u64> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    killer.join().unwrap();
    let _ = child.kill();
    let _ = child.wait();

    // The crash-consistency contract, per KB: every acknowledged commit
    // survives; at most the one in-flight (possibly batched-but-unacked)
    // put may additionally have reached the log.
    let (store, _report) = KbStore::open_durable(DurabilityOptions {
        dir: dir.clone(),
        snapshot_every: 0,
        recover: RecoverMode::Strict,
        fault: None,
        group_commit: false,
        flush_interval: Duration::ZERO,
        initial_epoch: None,
        replica: false,
    })
    .expect("strict recovery after SIGKILL");
    for (t, last_acked) in acked.iter().enumerate() {
        assert!(
            *last_acked > 0,
            "client {t} never got a single acknowledgement"
        );
        let entry = store
            .entry(&format!("storm-{t}"))
            .unwrap_or_else(|| panic!("storm-{t} KB survived"));
        let kb = entry.lock().unwrap();
        assert!(
            kb.seq == *last_acked || kb.seq == *last_acked + 1,
            "storm-{t}: recovered seq {} vs last acked {last_acked}",
            kb.seq
        );
        assert_eq!(
            encode_formula(&kb.formula),
            canonical_of(&oracle(kb.seq)),
            "storm-{t}: recovered formula must match the oracle for seq {}",
            kb.seq
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
