//! HTTP/1.1 pipelining suite for the event-loop server.
//!
//! Drives the readiness-driven acceptor over real sockets with traffic
//! shapes the blocking reader never saw: several requests in one
//! `write(2)`, one request split across TCP segments, malformed bytes
//! in the middle of a pipeline, deep bursts against the per-connection
//! depth cap, overload 503s answered mid-pipeline with `Retry-After`,
//! and idle keep-alive connections reaped by `--keep-alive-timeout-ms`.
//! Responses must always come back complete, in request order.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use arbitrex_server::{spawn, RunningServer, ServerConfig};

mod common;

fn server_with(configure: impl FnOnce(&mut ServerConfig)) -> RunningServer {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        queue_depth: 256,
        cache_entries: 256,
        timeout_ms: 0,
        ..ServerConfig::default()
    };
    configure(&mut config);
    spawn(config).expect("spawn server")
}

fn connect(server: &RunningServer) -> TcpStream {
    common::raw_connect(server.addr)
}

/// Raw request bytes, keep-alive unless `close`.
fn raw_request(method: &str, path: &str, body: &str, close: bool) -> String {
    let connection = if close { "Connection: close\r\n" } else { "" };
    format!(
        "{method} {path} HTTP/1.1\r\nHost: loopback\r\n{connection}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// One full response off the stream: status, the raw head, the body.
/// Framing lives in the shared client (`common::read_stream_response`);
/// this suite only keeps the panic-on-error calling convention.
fn read_response(stream: &mut TcpStream) -> (u16, String, String) {
    common::read_stream_response(stream).unwrap_or_else(|e| panic!("read response: {e}"))
}

/// Has the peer closed? Distinguishes clean EOF from a timeout.
fn reaches_eof(stream: &mut TcpStream, within: Duration) -> bool {
    stream.set_read_timeout(Some(within)).unwrap();
    let mut byte = [0u8; 1];
    match stream.read(&mut byte) {
        Ok(0) => true,
        Ok(_) => panic!("unexpected byte {byte:?} instead of EOF"),
        Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => false,
        Err(e) if e.kind() == ErrorKind::ConnectionReset => true,
        Err(e) => panic!("read error waiting for EOF: {e}"),
    }
}

fn seq_of(body: &str) -> u64 {
    // Responses are flat JSON objects; the seq field is an integer.
    let tail = body.split("\"seq\":").nth(1).unwrap_or_else(|| {
        panic!("no seq in {body}");
    });
    tail.trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("numeric seq")
}

// --- pipelining --------------------------------------------------------------

#[test]
fn pipelined_requests_in_one_write_answer_in_order() {
    let server = server_with(|_| {});
    let mut stream = connect(&server);

    // Three puts to the same KB in a single write(2): the responses must
    // come back complete and strictly in request order — the seqs they
    // report (1, 2, 3) are the order the server really applied them in.
    let mut batch = String::new();
    for formula in ["A", "A & B", "A & B & C"] {
        batch.push_str(&raw_request(
            "POST",
            "/v1/kb/pipelined",
            &format!(r#"{{"action": "put", "formula": "{formula}"}}"#),
            false,
        ));
    }
    stream.write_all(batch.as_bytes()).unwrap();

    for expected_seq in 1..=3u64 {
        let (status, _head, body) = read_response(&mut stream);
        assert_eq!(status, 200, "{body}");
        assert_eq!(seq_of(&body), expected_seq, "{body}");
    }

    server.stop().unwrap();
}

#[test]
fn request_split_across_tcp_segments_is_reassembled() {
    let server = server_with(|_| {});
    let mut stream = connect(&server);

    let request = raw_request(
        "POST",
        "/v1/arbitrate",
        r#"{"psi": "A & B", "phi": "!A & !B"}"#,
        false,
    );
    let bytes = request.as_bytes();
    // Dribble the request out in three segments with pauses between, so
    // the head and the body each arrive incomplete at least once.
    let cuts = [bytes.len() / 3, 2 * bytes.len() / 3, bytes.len()];
    let mut sent = 0;
    for cut in cuts {
        stream.write_all(&bytes[sent..cut]).unwrap();
        stream.flush().unwrap();
        sent = cut;
        std::thread::sleep(Duration::from_millis(60));
    }

    let (status, _head, body) = read_response(&mut stream);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"n_models\""), "{body}");

    server.stop().unwrap();
}

#[test]
fn malformed_request_mid_pipeline_gets_400_without_corrupting_earlier_responses() {
    let server = server_with(|_| {});
    let mut stream = connect(&server);

    // A valid request, then garbage, then another valid request — all in
    // one write. The first must succeed untouched, the garbage draws a
    // 400, and the connection closes without answering the third (its
    // bytes are indistinguishable from more garbage).
    let mut batch = raw_request("GET", "/metrics", "", false);
    batch.push_str("THIS IS NOT HTTP\r\n\r\n");
    batch.push_str(&raw_request("GET", "/metrics", "", false));
    stream.write_all(batch.as_bytes()).unwrap();

    let (status, _head, body) = read_response(&mut stream);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"telemetry\""), "{body}");

    let (status, head, _body) = read_response(&mut stream);
    assert_eq!(status, 400);
    assert!(head.contains("Connection: close"), "{head}");

    assert!(
        reaches_eof(&mut stream, Duration::from_secs(5)),
        "connection must close after the 400"
    );

    server.stop().unwrap();
}

#[test]
fn deep_pipeline_burst_completes_in_order() {
    let server = server_with(|c| c.threads = 4);
    let mut stream = connect(&server);

    // 32 pipelined puts in one write — deep enough to exercise slot
    // bookkeeping and out-of-order completion reordering across several
    // workers, while staying under MAX_PIPELINE_DEPTH.
    let mut batch = String::new();
    for i in 0..32 {
        let formula = if i % 2 == 0 { "A | B" } else { "A & B" };
        batch.push_str(&raw_request(
            "POST",
            "/v1/kb/burst",
            &format!(r#"{{"action": "put", "formula": "{formula}"}}"#),
            false,
        ));
    }
    stream.write_all(batch.as_bytes()).unwrap();

    for expected_seq in 1..=32u64 {
        let (status, _head, body) = read_response(&mut stream);
        assert_eq!(status, 200, "{body}");
        assert_eq!(seq_of(&body), expected_seq, "{body}");
    }

    server.stop().unwrap();
}

// --- connection lifecycle ----------------------------------------------------

#[test]
fn connection_close_is_honored_after_the_response() {
    let server = server_with(|_| {});
    let mut stream = connect(&server);

    stream
        .write_all(raw_request("GET", "/metrics", "", true).as_bytes())
        .unwrap();
    let (status, head, _body) = read_response(&mut stream);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "{head}");
    assert!(
        reaches_eof(&mut stream, Duration::from_secs(5)),
        "server must close after Connection: close"
    );

    server.stop().unwrap();
}

#[test]
fn idle_keep_alive_connections_are_reaped() {
    let server = server_with(|c| c.keep_alive_timeout_ms = 200);
    let mut stream = connect(&server);

    // The connection works while active...
    stream
        .write_all(raw_request("GET", "/metrics", "", false).as_bytes())
        .unwrap();
    let (status, _head, _body) = read_response(&mut stream);
    assert_eq!(status, 200);

    // ...then, left idle past the timeout, the server closes it.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut reaped = false;
    while Instant::now() < deadline {
        if reaches_eof(&mut stream, Duration::from_millis(250)) {
            reaped = true;
            break;
        }
    }
    assert!(reaped, "idle connection was never reaped");

    // A fresh connection still serves: reaping is per-connection.
    let mut fresh = connect(&server);
    fresh
        .write_all(raw_request("GET", "/metrics", "", false).as_bytes())
        .unwrap();
    let (status, _head, _body) = read_response(&mut fresh);
    assert_eq!(status, 200);

    server.stop().unwrap();
}

// --- backpressure ------------------------------------------------------------

#[test]
fn overload_503_carries_retry_after() {
    // One worker, queue depth one: a held request pins the worker, a
    // second fills the queue, and the third is refused straight from the
    // I/O thread — with a Retry-After hint.
    let server = server_with(|c| {
        c.threads = 1;
        c.queue_depth = 1;
    });

    let mut held = connect(&server);
    held.write_all(
        raw_request(
            "POST",
            "/v1/arbitrate",
            r#"{"psi": "A", "phi": "!A", "hold_ms": 1500}"#,
            false,
        )
        .as_bytes(),
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(400)); // worker now sleeping in hold_ms

    let mut queued = connect(&server);
    queued
        .write_all(
            raw_request(
                "POST",
                "/v1/arbitrate",
                r#"{"psi": "B", "phi": "!B"}"#,
                false,
            )
            .as_bytes(),
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(200)); // event loop has queued it

    let mut refused = connect(&server);
    refused
        .write_all(raw_request("GET", "/metrics", "", false).as_bytes())
        .unwrap();
    let (status, head, body) = read_response(&mut refused);
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("overloaded"), "{body}");
    assert!(head.contains("Retry-After: 1"), "{head}");

    // Refusal never corrupts accepted work.
    let (status, _head, _body) = read_response(&mut held);
    assert_eq!(status, 200);
    let (status, _head, _body) = read_response(&mut queued);
    assert_eq!(status, 200);

    server.stop().unwrap();
}
