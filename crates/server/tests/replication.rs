//! Replication integration suite: primary/replica pairs over real
//! sockets, the deterministic network fault matrix, failover, and
//! `Δ`-arbitration anti-entropy.
//!
//! Covers the acceptance criteria of the replication layer: a replica
//! streams the primary's WAL and converges to byte-identical canonical
//! state under every `net_*` fault site (connection drop, torn frame,
//! duplicated delivery, delayed delivery, partition); read-your-writes
//! via `X-Arbitrex-Min-Seq` answers 412 on a lagging replica and 200
//! once caught up; explicit promotion continues the rseq space without
//! reuse; frames stamped with a deposed epoch are refused; a rejected
//! `if_seq` commit never ships a frame; and post-partition divergence
//! reconciles with the paper's `Δ` operator, differentially checked
//! against an in-test oracle computing `Δ` directly on model sets.

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use arbitrex_core::arbitrate;
use arbitrex_logic::{canonical_key, parse, ModelSet, Sig};
use arbitrex_server::kb::{ApplyOutcome, DurabilityOptions, KbStore, StoredKb};
use arbitrex_server::recovery::RecoverMode;
use arbitrex_server::replication::{NetFaultPlan, NetFaultSite};
use arbitrex_server::wal::{self, StampedRecord, WalRecord};
use arbitrex_server::{spawn, RunningServer, ServerConfig};

mod common;
use common::{num_of, request, str_of, Client};

static DIR_ID: AtomicU64 = AtomicU64::new(0);

fn temp_state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "arbx-replication-{tag}-{}-{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create state dir");
    dir
}

fn durable_server(dir: &Path, configure: impl FnOnce(&mut ServerConfig)) -> RunningServer {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        queue_depth: 64,
        cache_entries: 64,
        timeout_ms: 0,
        state_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    };
    configure(&mut config);
    spawn(config).expect("spawn durable server")
}

fn replica_of(
    primary: &RunningServer,
    dir: &Path,
    configure: impl FnOnce(&mut ServerConfig),
) -> RunningServer {
    let from = primary.addr.to_string();
    durable_server(dir, move |c| {
        c.replicate_from = Some(from);
        configure(c);
    })
}

/// Commit `formula` into KB `name`, asserting success; returns the
/// committed seq reported in the body.
fn put(server: &RunningServer, name: &str, formula: &str) -> u64 {
    let body = format!(r#"{{"action": "put", "formula": "{formula}"}}"#);
    let (status, v) = request(server, "POST", &format!("/v1/kb/{name}"), &body);
    assert_eq!(status, 200, "{v:?}");
    num_of(&v, "seq")
}

/// Wait until the replica has applied everything the primary shipped
/// (primary head == `expected` == replica visible), then assert the two
/// stores converged: equal anti-entropy digests AND byte-identical
/// canonical snapshot images.
fn assert_converged(primary: &RunningServer, replica: &RunningServer, expected: u64, tag: &str) {
    let p_state = primary.state();
    let r_state = replica.state();
    let p_log = p_state.kbs.replication().expect("primary repl log");
    let r_log = r_state.kbs.replication().expect("replica repl log");
    let deadline = Instant::now() + Duration::from_secs(30);
    while p_log.head() < expected || r_log.visible() < expected {
        assert!(
            Instant::now() < deadline,
            "[{tag}] replica never converged: primary head {}, replica visible {}, want {expected}",
            p_log.head(),
            r_log.visible(),
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(p_log.head(), expected, "[{tag}] primary overshot");
    assert_eq!(
        p_state.kbs.digest(),
        r_state.kbs.digest(),
        "[{tag}] digests diverge after convergence"
    );
    let p_image = p_state
        .kbs
        .snapshot_image()
        .expect("primary snapshot image");
    let r_image = r_state
        .kbs
        .snapshot_image()
        .expect("replica snapshot image");
    assert_eq!(
        p_image, r_image,
        "[{tag}] canonical snapshot images are not byte-identical"
    );
}

/// An address nothing listens on (bind an ephemeral port, then drop the
/// listener) — for replicas whose primary must stay unreachable.
fn dead_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    drop(listener);
    addr
}

// --- happy path --------------------------------------------------------------

#[test]
fn replica_streams_the_primary_wal_and_serves_reads() {
    let p_dir = temp_state_dir("basic-p");
    let r_dir = temp_state_dir("basic-r");
    let primary = durable_server(&p_dir, |_| {});
    let replica = replica_of(&primary, &r_dir, |_| {});

    for (name, formula) in [("alpha", "A & B"), ("beta", "A | !B"), ("gamma", "!A & !B")] {
        put(&primary, name, formula);
    }
    let (status, v) = request(&primary, "POST", "/v1/kb/beta", r#"{"action": "delete"}"#);
    assert_eq!(status, 200, "{v:?}");

    // 3 commits + 1 delete = 4 frames.
    assert_converged(&primary, &replica, 4, "basic");

    // Follower reads serve the replicated theory...
    let (status, v) = request(&replica, "GET", "/v1/kb/alpha", "");
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(num_of(&v, "seq"), 1);
    // ...and the replicated delete.
    let (status, _) = request(&replica, "GET", "/v1/kb/beta", "");
    assert_eq!(status, 404);

    // Mutations are refused on a replica.
    let (status, v) = request(
        &replica,
        "POST",
        "/v1/kb/alpha",
        r#"{"action": "put", "formula": "A"}"#,
    );
    assert_eq!(status, 503, "{v:?}");
    assert!(str_of(&v, "error").contains("read-only replica"), "{v:?}");

    // Roles as reported by the status endpoint.
    let (_, v) = request(&primary, "GET", "/v1/replication/status", "");
    assert_eq!(str_of(&v, "role"), "primary");
    assert_eq!(num_of(&v, "epoch"), 1);
    let (_, v) = request(&replica, "GET", "/v1/replication/status", "");
    assert_eq!(str_of(&v, "role"), "replica");
    assert_eq!(num_of(&v, "head"), 4);

    replica.stop().unwrap();
    primary.stop().unwrap();
}

// --- the network fault matrix ------------------------------------------------

/// Frame-level faults (`net_drop`, `net_torn`, `net_dup`): commits land
/// before the replica connects, so the first batch carries all frames
/// and the k-th is deterministically cut / corrupted / duplicated. The
/// replica's reconnect, CRC, and idempotent-apply machinery must still
/// converge it to byte-identical state.
#[test]
fn frame_level_faults_still_converge() {
    for site in [NetFaultSite::Drop, NetFaultSite::Torn, NetFaultSite::Dup] {
        let tag = site.name();
        let p_dir = temp_state_dir(tag);
        let r_dir = temp_state_dir(&format!("{tag}-r"));
        let primary = durable_server(&p_dir, |c| {
            c.net_fault = Some(NetFaultPlan::new(site, 3));
        });
        for i in 0..8u32 {
            let formula = if i % 2 == 0 { "A & B" } else { "A | B | !C" };
            put(&primary, &format!("kb{i}"), formula);
        }
        let replica = replica_of(&primary, &r_dir, |_| {});
        assert_converged(&primary, &replica, 8, tag);
        replica.stop().unwrap();
        primary.stop().unwrap();
    }
}

/// Request-level faults (`net_delay`, `net_partition`): the replica
/// connects first and commits trickle in, so delayed and refused batch
/// requests land while frames are genuinely in flight. The partition
/// refuses a whole window of requests, then heals; backoff must carry
/// the replica across it.
#[test]
fn request_level_faults_still_converge() {
    for site in [NetFaultSite::Delay, NetFaultSite::Partition] {
        let tag = site.name();
        let p_dir = temp_state_dir(tag);
        let r_dir = temp_state_dir(&format!("{tag}-r"));
        let primary = durable_server(&p_dir, |c| {
            c.net_fault = Some(NetFaultPlan::new(site, 2));
        });
        let replica = replica_of(&primary, &r_dir, |_| {});
        for i in 0..8u32 {
            put(&primary, &format!("kb{i}"), "A & (B | C)");
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_converged(&primary, &replica, 8, tag);
        replica.stop().unwrap();
        primary.stop().unwrap();
    }
}

/// The puller's reconnect backoff, observed end-to-end. A `net_drop`
/// cuts the established stream *after* a successfully applied frame, so
/// the ladder was reset to `BACKOFF_MIN` by the successful connect; the
/// puller must come back at the jittered floor delay and converge
/// promptly. A puller that failed to reset (or jittered past its
/// documented band) would need ladder-of-seconds time here.
#[test]
fn reconnect_backoff_recovers_from_a_drop_at_the_floor_delay() {
    let p_dir = temp_state_dir("backoff");
    let r_dir = temp_state_dir("backoff-r");
    let primary = durable_server(&p_dir, |c| {
        // Second shipped frame trips the drop: one good frame first.
        c.net_fault = Some(NetFaultPlan::new(NetFaultSite::Drop, 2));
    });
    let replica = replica_of(&primary, &r_dir, |_| {});
    put(&primary, "warm", "A");
    assert_converged(&primary, &replica, 1, "backoff-warm");

    // The next frame is cut mid-stream; the one after must arrive over
    // the reconnected stream.
    let start = Instant::now();
    put(&primary, "cut", "A & B");
    put(&primary, "after", "A | B");
    assert_converged(&primary, &replica, 3, "backoff-cut");
    let recovery = start.elapsed();
    assert!(
        recovery < Duration::from_secs(5),
        "post-drop catch-up took {recovery:?}; the backoff ladder did not reset to its floor"
    );
    replica.stop().unwrap();
    primary.stop().unwrap();
}

// --- read-your-writes --------------------------------------------------------

#[test]
fn min_seq_reads_answer_412_until_the_replica_catches_up() {
    // A replica whose primary is unreachable never advances: the gate
    // must answer 412 + Retry-After, not a stale 404/200.
    let stuck_dir = temp_state_dir("minseq-stuck");
    let dead = dead_addr();
    let stuck = durable_server(&stuck_dir, |c| {
        c.replicate_from = Some(dead);
    });
    let mut client = Client::connect_server(&stuck);
    let (status, head, v) =
        client.request_full("GET", "/v1/kb/anything", &[("X-Arbitrex-Min-Seq", "1")], "");
    assert_eq!(status, 412, "{v:?}");
    assert_eq!(num_of(&v, "min_seq"), 1);
    assert_eq!(num_of(&v, "visible"), 0);
    assert!(head.contains("Retry-After:"), "{head}");
    stuck.stop().unwrap();

    // Against a live pair: a commit's X-Arbitrex-Seq token, passed back
    // as X-Arbitrex-Min-Seq, eventually reads its own write on the
    // replica — and any interim answer is a 412, never stale data.
    let p_dir = temp_state_dir("minseq-p");
    let r_dir = temp_state_dir("minseq-r");
    let primary = durable_server(&p_dir, |_| {});
    let replica = replica_of(&primary, &r_dir, |_| {});

    let mut writer = Client::connect_server(&primary);
    let (status, head, _) = writer.request_full(
        "POST",
        "/v1/kb/ryw",
        &[],
        r#"{"action": "put", "formula": "A & !B"}"#,
    );
    assert_eq!(status, 200);
    assert!(head.contains("X-Arbitrex-Seq: 1"), "{head}");

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut reader = Client::connect_server(&replica);
        let (status, v) =
            reader.request_with_headers("GET", "/v1/kb/ryw", &[("X-Arbitrex-Min-Seq", "1")], "");
        match status {
            200 => {
                assert_eq!(num_of(&v, "seq"), 1, "{v:?}");
                break;
            }
            412 => assert!(
                Instant::now() < deadline,
                "replica never served the min-seq read: {v:?}"
            ),
            other => panic!("unexpected status {other}: {v:?}"),
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    replica.stop().unwrap();
    primary.stop().unwrap();
}

// --- commit gating (satellite: if_seq must never ship a frame) ---------------

#[test]
fn conflicting_if_seq_never_ships_a_frame() {
    let dir = temp_state_dir("ifseq");
    let primary = durable_server(&dir, |_| {});
    put(&primary, "guarded", "A & B");

    let state = primary.state();
    let log = state.kbs.replication().expect("repl log");
    assert_eq!(log.head(), 1);

    // A stale if_seq draws 409 — and the replication head must not
    // move: a rejected commit has no WAL frame to ship.
    let (status, v) = request(
        &primary,
        "POST",
        "/v1/kb/guarded",
        r#"{"action": "put", "formula": "A", "if_seq": 99}"#,
    );
    assert_eq!(status, 409, "{v:?}");
    assert_eq!(num_of(&v, "seq"), 1);
    assert_eq!(log.head(), 1, "a 409'd commit shipped a frame");
    let (_, v) = request(&primary, "GET", "/v1/replication/status", "");
    assert_eq!(num_of(&v, "head"), 1);

    // The matching if_seq commits and ships as usual.
    let (status, _) = request(
        &primary,
        "POST",
        "/v1/kb/guarded",
        r#"{"action": "put", "formula": "A", "if_seq": 1}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(log.head(), 2);

    primary.stop().unwrap();
}

// --- failover ----------------------------------------------------------------

#[test]
fn promoted_replica_continues_the_seq_space_without_reuse() {
    let p_dir = temp_state_dir("promote-p");
    let r_dir = temp_state_dir("promote-r");
    let primary = durable_server(&p_dir, |_| {});
    let replica = replica_of(&primary, &r_dir, |_| {});

    for i in 0..3u32 {
        put(&primary, &format!("kb{i}"), "A | B");
    }
    assert_converged(&primary, &replica, 3, "promote");
    primary.stop().unwrap();

    // Explicit failover: the replica becomes the epoch-2 primary.
    let (status, v) = request(&replica, "POST", "/v1/replication/promote", "");
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(num_of(&v, "epoch"), 2);
    assert_eq!(num_of(&v, "last_rseq"), 3);

    // The first post-promotion commit continues the rseq space at 4 —
    // sequence numbers are never reused across a failover.
    let mut client = Client::connect_server(&replica);
    let (status, head, _) = client.request_full(
        "POST",
        "/v1/kb/after",
        &[],
        r#"{"action": "put", "formula": "!A"}"#,
    );
    assert_eq!(status, 200);
    assert!(head.contains("X-Arbitrex-Seq: 4"), "{head}");

    let (_, v) = request(&replica, "GET", "/v1/replication/status", "");
    assert_eq!(str_of(&v, "role"), "primary");
    assert_eq!(num_of(&v, "epoch"), 2);
    assert_eq!(num_of(&v, "head"), 4);

    replica.stop().unwrap();
}

// --- epoch fencing -----------------------------------------------------------

/// A stamped commit frame exactly as the replication transport ships it.
fn stamped_commit(epoch: u64, rseq: u64, name: &str, text: &str) -> (Vec<u8>, StampedRecord) {
    let mut sig = Sig::new();
    let formula = parse(&mut sig, text).expect("parse");
    let record = WalRecord::Commit {
        name: name.to_string(),
        kb: StoredKb {
            sig,
            formula,
            seq: 1,
        },
    };
    let framed = wal::frame(epoch, rseq, &wal::encode_record(&record));
    (
        framed,
        StampedRecord {
            epoch,
            rseq,
            record,
        },
    )
}

#[test]
fn frames_from_a_deposed_epoch_are_refused() {
    let dir = temp_state_dir("fencing");
    let (store, _report) = KbStore::open_durable(DurabilityOptions {
        dir: dir.clone(),
        snapshot_every: 0,
        recover: RecoverMode::Strict,
        fault: None,
        group_commit: false,
        flush_interval: Duration::ZERO,
        initial_epoch: None,
        replica: true,
    })
    .expect("open replica store");

    let (framed, stamped) = stamped_commit(1, 1, "alive", "A & B");
    assert!(matches!(
        store.apply_replicated(&framed, &stamped).unwrap(),
        ApplyOutcome::Applied { rseq: 1, .. }
    ));

    // Failover: epoch 2. Everything the deposed epoch-1 primary still
    // ships must bounce — even a frame with the next expected rseq.
    let (epoch, last_rseq) = store.promote().expect("promote");
    assert_eq!((epoch, last_rseq), (2, 1));

    let (framed, stamped) = stamped_commit(1, 2, "fenced", "!A");
    assert_eq!(
        store.apply_replicated(&framed, &stamped).unwrap(),
        ApplyOutcome::StaleEpoch {
            frame_epoch: 1,
            current_epoch: 2,
        }
    );
    assert!(
        store.entry("fenced").is_none(),
        "a deposed-epoch frame mutated the store"
    );

    // Idempotence and gap detection still hold under the new epoch.
    let (framed, stamped) = stamped_commit(2, 1, "alive", "A & B");
    assert_eq!(
        store.apply_replicated(&framed, &stamped).unwrap(),
        ApplyOutcome::Duplicate { rseq: 1 }
    );
    let (framed, stamped) = stamped_commit(2, 5, "future", "B");
    assert_eq!(
        store.apply_replicated(&framed, &stamped).unwrap(),
        ApplyOutcome::Gap {
            expected: 2,
            got: 5
        }
    );
    let (framed, stamped) = stamped_commit(2, 2, "next", "A | B");
    assert!(matches!(
        store.apply_replicated(&framed, &stamped).unwrap(),
        ApplyOutcome::Applied { rseq: 2, .. }
    ));
}

// --- anti-entropy ------------------------------------------------------------

/// The in-test oracle: `Δ` computed directly on model sets with the
/// same canonical side-ordering the server uses, so the reconciled
/// theory can be checked differentially (same models, not just "some
/// merge happened").
fn delta_oracle(local_text: &str, peer_text: &str) -> (Sig, ModelSet) {
    let mut sig = Sig::new();
    let local = parse(&mut sig, local_text).expect("parse local");
    let peer = parse(&mut sig, peer_text).expect("parse peer");
    let n = sig.width();
    let (psi, phi) = if canonical_key(&local) <= canonical_key(&peer) {
        (local, peer)
    } else {
        (peer, local)
    };
    let merged = arbitrate(
        &ModelSet::of_formula(&psi, n),
        &ModelSet::of_formula(&phi, n),
    );
    (sig, merged)
}

#[test]
fn post_partition_divergence_reconciles_with_delta_arbitration() {
    let p_dir = temp_state_dir("delta-p");
    let r_dir = temp_state_dir("delta-r");
    let primary = durable_server(&p_dir, |_| {});
    let replica = replica_of(&primary, &r_dir, |_| {});

    // A shared prefix on both sides.
    put(&primary, "shared", "A & B");
    put(&primary, "contested", "A & B");
    assert_converged(&primary, &replica, 2, "delta");

    // Partition: the replica is promoted while the old primary is still
    // alive, and both sides accept writes — the split-brain window.
    let (status, v) = request(&replica, "POST", "/v1/replication/promote", "");
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(num_of(&v, "epoch"), 2);

    let local_text = "A & (B | C)"; // committed on the new primary
    let peer_text = "(A & B) | C"; // committed on the deposed primary
    put(&replica, "contested", local_text);
    put(&primary, "contested", peer_text);
    put(&primary, "only_on_p", "C");

    // Heal: one anti-entropy pass on the new primary against the old
    // one. The divergent KB merges with Δ — not last-writer-wins.
    let body = format!(r#"{{"peer": "{}"}}"#, primary.addr);
    let (status, v) = request(&replica, "POST", "/v1/replication/reconcile", &body);
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(num_of(&v, "identical"), 1, "{v:?}"); // shared
    assert_eq!(num_of(&v, "adopted"), 1, "{v:?}"); // only_on_p
    assert_eq!(num_of(&v, "merged"), 1, "{v:?}"); // contested
    assert_eq!(num_of(&v, "aligned"), 0, "{v:?}");
    assert_eq!(num_of(&v, "skipped"), 0, "{v:?}");

    // The adopted KB arrived verbatim, seq included.
    let (status, v) = request(&replica, "GET", "/v1/kb/only_on_p", "");
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(num_of(&v, "seq"), 1);

    // Differential check: the reconciled theory's models equal the
    // oracle's Δ of the two divergent sides, and its seq dominates both
    // inputs (max + 1), so a later digest comparison converges.
    let (status, v) = request(&replica, "GET", "/v1/kb/contested", "");
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(num_of(&v, "seq"), 3);
    let (mut sig, expect) = delta_oracle(local_text, peer_text);
    let n = sig.width();
    let reconciled = parse(&mut sig, str_of(&v, "formula")).expect("parse reconciled");
    assert_eq!(
        ModelSet::of_formula(&reconciled, n),
        expect,
        "reconciled theory diverges from the Δ oracle"
    );

    replica.stop().unwrap();
    primary.stop().unwrap();
}
