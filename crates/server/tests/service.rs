//! Loopback integration suite: every endpoint driven over real sockets
//! against a server on an ephemeral port.
//!
//! Covers the acceptance criteria of the serving layer: happy paths for
//! all four POST endpoints and `/metrics`, cache-hit determinism
//! (including alpha-variant resubmission), queue-overflow backpressure
//! (503), per-request deadlines degrading to typed qualities while the
//! server keeps serving, and malformed-request 400s reusing the byte-soup
//! fuzz corpus from `arbitrex-logic`'s `no_panic` suite. Every test ends
//! with a clean `stop()`, so a worker panic anywhere fails the test.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use arbitrex_server::json::{self, Json};
use arbitrex_server::{spawn, RunningServer, ServerConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn server_with(configure: impl FnOnce(&mut ServerConfig)) -> RunningServer {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        queue_depth: 16,
        cache_entries: 256,
        timeout_ms: 0,
        ..ServerConfig::default()
    };
    configure(&mut config);
    spawn(config).expect("spawn server")
}

fn server() -> RunningServer {
    server_with(|_| {})
}

mod common;
use common::{num_of, request, str_of, Client};

// --- happy paths -------------------------------------------------------------

#[test]
fn arbitrate_happy_path_with_cache_determinism() {
    let server = server();
    let body = r#"{"psi": "A & B", "phi": "!A & !B"}"#;

    let (status, first) = request(&server, "POST", "/v1/arbitrate", body);
    assert_eq!(status, 200, "{first:?}");
    assert_eq!(str_of(&first, "endpoint"), "arbitrate");
    assert_eq!(str_of(&first, "quality"), "exact");
    assert_eq!(str_of(&first, "cache"), "miss");
    // ψ Δ φ for opposite corners keeps the two fair compromises {A},{B}.
    assert_eq!(num_of(&first, "n_models"), 2);

    // Identical resubmission: hit, identical models.
    let (status, second) = request(&server, "POST", "/v1/arbitrate", body);
    assert_eq!(status, 200);
    assert_eq!(str_of(&second, "cache"), "hit");
    assert_eq!(second.get("models"), first.get("models"));
    assert_eq!(second.get("n_models"), first.get("n_models"));

    // Alpha-variant (renamed variables, shuffled conjuncts): still a hit,
    // models expressed in the variant's own names.
    let variant = r#"{"psi": "Y & X", "phi": "!X & !Y"}"#;
    let (status, third) = request(&server, "POST", "/v1/arbitrate", variant);
    assert_eq!(status, 200);
    assert_eq!(str_of(&third, "cache"), "hit", "{third:?}");
    assert_eq!(num_of(&third, "n_models"), 2);

    server.stop().unwrap();
}

#[test]
fn fit_happy_path_and_operator_selection() {
    let server = server();

    let (status, fit) = request(
        &server,
        "POST",
        "/v1/fit",
        r#"{"psi": "A & B", "mu": "!A | !B"}"#,
    );
    assert_eq!(status, 200, "{fit:?}");
    assert_eq!(str_of(&fit, "endpoint"), "fit");
    assert_eq!(str_of(&fit, "op"), "odist");
    assert_eq!(str_of(&fit, "quality"), "exact");

    let (status, dalal) = request(
        &server,
        "POST",
        "/v1/fit",
        r#"{"psi": "A & B", "mu": "!A | !B", "op": "dalal"}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(str_of(&dalal, "op"), "dalal");
    // Dalal revision of {AB} by ¬A∨¬B keeps the two distance-1 models.
    assert_eq!(num_of(&dalal, "n_models"), 2);

    let (status, bad) = request(
        &server,
        "POST",
        "/v1/fit",
        r#"{"psi": "A", "mu": "B", "op": "nonsense"}"#,
    );
    assert_eq!(status, 400);
    assert!(str_of(&bad, "error").contains("unknown operator"));

    server.stop().unwrap();
}

#[test]
fn warbitrate_happy_path_weights_distinguish_queries() {
    let server = server();
    let body = r#"{"psi": "A & B", "phi": "!A & !B", "psi_weight": 3, "phi_weight": 1}"#;

    let (status, first) = request(&server, "POST", "/v1/warbitrate", body);
    assert_eq!(status, 200, "{first:?}");
    assert_eq!(str_of(&first, "endpoint"), "warbitrate");
    assert_eq!(str_of(&first, "quality"), "exact");
    assert_eq!(str_of(&first, "cache"), "miss");
    assert!(num_of(&first, "support_size") > 0);

    let (_, second) = request(&server, "POST", "/v1/warbitrate", body);
    assert_eq!(str_of(&second, "cache"), "hit");
    assert_eq!(second.get("support"), first.get("support"));

    // Same formulas under different weights are a different query.
    let reweighted = r#"{"psi": "A & B", "phi": "!A & !B", "psi_weight": 1, "phi_weight": 3}"#;
    let (status, third) = request(&server, "POST", "/v1/warbitrate", reweighted);
    assert_eq!(status, 200);
    assert_eq!(str_of(&third, "cache"), "miss");

    // Unsatisfiable sources are refused, not panicked on.
    let (status, unsat) = request(
        &server,
        "POST",
        "/v1/warbitrate",
        r#"{"psi": "A & !A", "phi": "B"}"#,
    );
    assert_eq!(status, 400);
    assert!(str_of(&unsat, "error").contains("unsatisfiable"));

    server.stop().unwrap();
}

#[test]
fn kb_lifecycle_put_arbitrate_iterate_delete() {
    let server = server();
    let mut client = Client::connect_server(&server);

    // put
    let (status, put) = client.request(
        "POST",
        "/v1/kb/fleet",
        r#"{"action": "put", "formula": "A & B & C"}"#,
    );
    assert_eq!(status, 200, "{put:?}");
    assert_eq!(num_of(&put, "seq"), 1);

    // get
    let (status, got) = client.request("GET", "/v1/kb/fleet", "");
    assert_eq!(status, 200);
    assert_eq!(str_of(&got, "name"), "fleet");
    assert_eq!(num_of(&got, "n_vars"), 3);

    // arbitrate in place: conflicting report, exact result commits.
    let (status, arb) = client.request(
        "POST",
        "/v1/kb/fleet",
        r#"{"action": "arbitrate", "formula": "!A & !B & !C"}"#,
    );
    assert_eq!(status, 200, "{arb:?}");
    assert_eq!(str_of(&arb, "quality"), "exact");
    assert_eq!(arb.get("committed"), Some(&Json::Bool(true)));
    assert_eq!(num_of(&arb, "seq"), 2);
    assert_eq!(num_of(&arb, "n_models"), 6);

    // fit action with an explicit operator, mentioning a fresh variable
    // (the signature widens).
    let (status, fit) = client.request(
        "POST",
        "/v1/kb/fleet",
        r#"{"action": "fit", "op": "dalal", "formula": "D"}"#,
    );
    assert_eq!(status, 200, "{fit:?}");
    assert_eq!(num_of(&fit, "seq"), 3);
    assert_eq!(num_of(&fit, "n_vars"), 4);

    // iterate to a fixpoint.
    let (status, iter) = client.request(
        "POST",
        "/v1/kb/fleet",
        r#"{"action": "iterate", "formula": "A & D", "max_steps": 16}"#,
    );
    assert_eq!(status, 200, "{iter:?}");
    assert_eq!(num_of(&iter, "seq"), 4);
    assert!(iter.get("period").is_some());

    // delete, then the KB is gone.
    let (status, del) = client.request("DELETE", "/v1/kb/fleet", "");
    assert_eq!(status, 200);
    assert_eq!(del.get("deleted"), Some(&Json::Bool(true)));
    let (status, _) = client.request("GET", "/v1/kb/fleet", "");
    assert_eq!(status, 404);

    // Bad names and bad actions are 400s.
    let (status, _) = client.request("GET", "/v1/kb/has%20space", "");
    assert_eq!(status, 400);
    let (status, _) = client.request("POST", "/v1/kb/fleet", r#"{"action": "explode"}"#);
    assert_eq!(status, 400);

    server.stop().unwrap();
}

#[test]
fn metrics_reports_sections_histograms_and_gauges() {
    let server = server();
    // Generate one cached pair so cache counters move.
    let body = r#"{"psi": "P & Q", "phi": "!P & !Q"}"#;
    let _ = request(&server, "POST", "/v1/arbitrate", body);
    let _ = request(&server, "POST", "/v1/arbitrate", body);

    let (status, text) = {
        let mut c = Client::connect_server(&server);
        c.send("GET", "/metrics", "");
        c.read_response_text()
    };
    assert_eq!(status, 200);
    for needle in [
        "\"kernel\"",
        "\"weighted\"",
        "\"budget\"",
        "\"cache\"",
        "\"sat\"",
        "\"server\"",
        "\"latency_ns\"",
        "\"arbitrate\"",
        "\"warbitrate\"",
        "\"gauges\"",
        "\"cache_entries\"",
        "\"kb_count\"",
    ] {
        assert!(text.contains(needle), "missing {needle} in {text}");
    }
    // The document is valid JSON.
    let doc = json::parse(&text).expect("metrics is JSON");
    assert!(doc.get("telemetry").is_some());

    server.stop().unwrap();
}

// --- backpressure ------------------------------------------------------------

#[test]
fn queue_overflow_answers_503() {
    // One worker, queue depth one: a held request pins the worker, the
    // next connection fills the queue, the third must be refused.
    let server = server_with(|c| {
        c.threads = 1;
        c.queue_depth = 1;
    });

    let mut held = Client::connect_server(&server);
    held.send(
        "POST",
        "/v1/arbitrate",
        r#"{"psi": "A", "phi": "!A", "hold_ms": 1500}"#,
    );
    std::thread::sleep(Duration::from_millis(400)); // worker is now sleeping in hold_ms

    let mut queued = Client::connect_server(&server);
    queued.send("POST", "/v1/arbitrate", r#"{"psi": "B", "phi": "!B"}"#);
    std::thread::sleep(Duration::from_millis(200)); // acceptor has queued it

    let mut refused = Client::connect_server(&server);
    let (status, body) = refused.request("GET", "/metrics", "");
    assert_eq!(status, 503, "{body:?}");
    assert!(str_of(&body, "error").contains("overloaded"));

    // The held and queued requests still complete: backpressure refuses
    // new work without corrupting accepted work.
    let (status, _) = held.read_response_parsed();
    assert_eq!(status, 200);
    let (status, _) = queued.read_response_parsed();
    assert_eq!(status, 200);

    server.stop().unwrap();
}

// --- deadlines ---------------------------------------------------------------

#[test]
fn deadline_degrades_typed_and_server_keeps_serving() {
    let server = server();
    // 11 variables: 2048 candidate interpretations, beyond one 1024-step
    // meter batch, so a zero deadline reliably trips mid-scan.
    let wide: Vec<String> = (0..11).map(|i| format!("V{i}")).collect();
    let disj = wide.join(" | ");
    let body = format!(r#"{{"psi": "{disj}", "phi": "{disj}", "timeout_ms": 0}}"#);

    let (status, degraded) = request(&server, "POST", "/v1/arbitrate", &body);
    assert_eq!(status, 200, "{degraded:?}");
    let quality = str_of(&degraded, "quality");
    assert!(
        quality == "upper_bound" || quality == "interrupted",
        "expected degraded quality, got {quality}"
    );
    assert_eq!(
        degraded.get("spent").unwrap().get("tripped"),
        Some(&Json::Bool(true))
    );
    // Degraded results must not poison the cache.
    assert_ne!(str_of(&degraded, "cache"), "hit");

    // The same worker pool still answers exact queries afterwards.
    let (status, after) = request(
        &server,
        "POST",
        "/v1/arbitrate",
        r#"{"psi": "A", "phi": "!A"}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(str_of(&after, "quality"), "exact");

    server.stop().unwrap();
}

#[test]
fn kb_never_commits_a_degraded_result() {
    let server = server();
    let mut client = Client::connect_server(&server);
    let wide: Vec<String> = (0..11).map(|i| format!("V{i}")).collect();
    let disj = wide.join(" | ");

    let (_, put) = client.request(
        "POST",
        "/v1/kb/wide",
        &format!(r#"{{"action": "put", "formula": "{disj}"}}"#),
    );
    assert_eq!(num_of(&put, "seq"), 1);

    let (status, arb) = client.request(
        "POST",
        "/v1/kb/wide",
        &format!(r#"{{"action": "arbitrate", "formula": "{disj}", "timeout_ms": 0}}"#),
    );
    assert_eq!(status, 200, "{arb:?}");
    assert_eq!(arb.get("committed"), Some(&Json::Bool(false)));
    assert_eq!(num_of(&arb, "seq"), 1, "degraded result must not commit");

    server.stop().unwrap();
}

// --- malformed requests ------------------------------------------------------

#[test]
fn malformed_bodies_are_400_and_never_kill_the_server() {
    let server = server();

    // Fixed malformed shapes: bad JSON, wrong types, missing fields.
    for bad in [
        "",
        "not json",
        "{",
        r#"{"psi": 7, "phi": "A"}"#,
        r#"{"psi": "A"}"#,
        r#"{"psi": "A", "phi": "(("}"#,
        r#"{"psi": "A", "phi": "B", "timeout_ms": "soon"}"#,
    ] {
        let (status, body) = request(&server, "POST", "/v1/arbitrate", bad);
        assert_eq!(status, 400, "input {bad:?} gave {body:?}");
        assert!(body.get("error").is_some());
    }

    // The byte-soup corpus from arbitrex-logic's no_panic suite, spliced
    // into the formula fields: whatever the parser thinks of the soup,
    // the server answers 200 or 400 and stays up.
    const CHARSET: &[char] = &[
        'a', 'b', 'z', 'A', 'Z', '_', '\'', '0', '1', '7', '(', ')', '!', '~', '-', '&', '|', '^',
        '<', '>', '=', '/', '\\', ' ', '\t', '\n', '@', '#', '.', ',', '*', '+', '[', ']', '{',
        '}', '"', ';', ':', '?', 'λ', 'ø', '∧', '∨', '¬', '→', '↔',
    ];
    let mut rng = StdRng::seed_from_u64(0xb17e_5009);
    let mut client = Client::connect_server(&server);
    for _ in 0..200 {
        let len = rng.random_range(0..64usize);
        let soup: String = (0..len)
            .map(|_| CHARSET[rng.random_range(0..CHARSET.len())])
            .collect();
        let body = arbitrex_server::json::obj([
            ("psi", arbitrex_server::json::s(soup.clone())),
            ("phi", arbitrex_server::json::s("A")),
        ])
        .to_text();
        let (status, _) = client.request("POST", "/v1/arbitrate", &body);
        assert!(
            status == 200 || status == 400,
            "soup {soup:?} gave status {status}"
        );
    }

    // Raw soup as the whole body too (mostly invalid JSON).
    for _ in 0..100 {
        let len = rng.random_range(0..48usize);
        let soup: String = (0..len)
            .map(|_| CHARSET[rng.random_range(0..CHARSET.len())])
            .collect();
        let (status, _) = request(&server, "POST", "/v1/fit", &soup);
        assert!(status == 200 || status == 400, "status {status}");
    }

    // Still healthy.
    let (status, after) = request(
        &server,
        "POST",
        "/v1/arbitrate",
        r#"{"psi": "A", "phi": "!A"}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(str_of(&after, "quality"), "exact");

    server.stop().unwrap();
}

#[test]
fn unknown_routes_and_methods() {
    let server = server();
    let (status, _) = request(&server, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = request(&server, "GET", "/v1/arbitrate", "");
    assert_eq!(status, 405);
    let (status, _) = request(&server, "DELETE", "/metrics", "");
    assert_eq!(status, 405);

    // A malformed request *line* gets a 400 before routing.
    let mut raw = TcpStream::connect(server.addr).unwrap();
    raw.write_all(b"GARBAGE\r\n\r\n").unwrap();
    let mut reply = String::new();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");

    server.stop().unwrap();
}

// --- concurrency -------------------------------------------------------------

#[test]
fn concurrent_mixed_workload_zero_failures() {
    let server = server_with(|c| {
        c.threads = 4;
        c.queue_depth = 64;
    });
    let addr = server.addr;

    let clients: Vec<_> = (0..8)
        .map(|worker| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                let mut client = Client { stream };
                for round in 0..20 {
                    let (path, body) = match (worker + round) % 3 {
                        0 => (
                            "/v1/arbitrate",
                            r#"{"psi": "A & B", "phi": "!A & !B"}"#.to_string(),
                        ),
                        1 => (
                            "/v1/fit",
                            r#"{"psi": "A & B", "mu": "!A | !B"}"#.to_string(),
                        ),
                        _ => (
                            "/v1/warbitrate",
                            r#"{"psi": "A | B", "phi": "!A", "psi_weight": 2}"#.to_string(),
                        ),
                    };
                    let (status, reply) = client.request("POST", path, &body);
                    assert_eq!(status, 200, "{reply:?}");
                    assert_eq!(str_of(&reply, "quality"), "exact");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    // Clean shutdown proves no worker died mid-run.
    server.stop().unwrap();
}
