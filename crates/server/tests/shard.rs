//! Sharding integration suite: consistent-hash routing across live
//! nodes, membership change with digest-driven handoff, ring-epoch
//! fencing, replica chains with automatic head failover, and the
//! deterministic `shard_*`/`net_*` fault matrix.
//!
//! Covers the acceptance criteria of the sharded cluster: a ring member
//! proxies reads and redirects writes for KBs it does not own; a stale
//! ring pin is refused with a typed 421 instead of a split-brain
//! commit; joining a node migrates exactly the newcomer's slice (pull
//! before release, so no acked commit is ever lost); leaving drains the
//! departing node completely; an enlisted chain replica serves reads
//! and takes over its head's writes on quorum-confirmed death with
//! zero acked-commit loss; a suspected-but-alive head behind a
//! transient partition is fenced, not split-brained; and every injected
//! fault (torn handoff, stale ring, dropped proxy) degrades into a
//! typed error or a transparent retry while both copies of any
//! in-flight KB survive.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use arbitrex_server::replication::{NetFaultPlan, NetFaultSite};
use arbitrex_server::shard::{ShardFaultPlan, ShardFaultSite, ShardRing, DEFAULT_VNODES};
use arbitrex_server::{spawn, RunningServer, ServerConfig};

mod common;
use common::{num_of, request, str_of, Client};

static DIR_ID: AtomicU64 = AtomicU64::new(0);

fn temp_state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "arbx-shard-{tag}-{}-{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create state dir");
    dir
}

/// A durable ring member bound to an ephemeral port; `--shard-ring auto`
/// resolves the member identity to the bound address.
fn shard_server(dir: &Path, configure: impl FnOnce(&mut ServerConfig)) -> RunningServer {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 3,
        queue_depth: 64,
        cache_entries: 64,
        timeout_ms: 0,
        state_dir: Some(dir.to_path_buf()),
        shard_ring: Some("auto".to_string()),
        ..ServerConfig::default()
    };
    configure(&mut config);
    spawn(config).expect("spawn shard server")
}

fn put(server: &RunningServer, name: &str, formula: &str) -> u64 {
    let body = format!(r#"{{"action": "put", "formula": "{formula}"}}"#);
    let (status, v) = request(server, "POST", &format!("/v1/kb/{name}"), &body);
    assert_eq!(status, 200, "{v:?}");
    num_of(&v, "seq")
}

/// The two-member ring the servers will converge to after a join —
/// placement is a pure function of the member set, so the test can
/// predict ownership without asking either node.
fn two_ring(a: SocketAddr, b: SocketAddr) -> ShardRing {
    ShardRing::new([a.to_string(), b.to_string()], DEFAULT_VNODES, 0)
}

/// A KB name `owner` will own under `ring`, searched deterministically.
fn name_owned_by(ring: &ShardRing, owner: SocketAddr) -> String {
    let owner = owner.to_string();
    (0..10_000)
        .map(|i| format!("kb-{i}"))
        .find(|name| ring.owner_of(name) == Some(owner.as_str()))
        .expect("some name in 10k lands on every member")
}

/// KB names `owner` will own under `ring`, searched deterministically.
fn names_owned_by(ring: &ShardRing, owner: SocketAddr, want: usize) -> Vec<String> {
    let owner = owner.to_string();
    let found: Vec<String> = (0..10_000)
        .map(|i| format!("kb-{i}"))
        .filter(|name| ring.owner_of(name) == Some(owner.as_str()))
        .take(want)
        .collect();
    assert_eq!(found.len(), want, "not enough names land on {owner}");
    found
}

/// Poll `check` every 25ms until it returns true, up to `timeout_ms`.
fn wait_until(timeout_ms: u64, mut check: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_millis(timeout_ms);
    loop {
        if check() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Failover-speed detector settings: probe every 50ms, suspect after 2.
fn fast_detector(config: &mut ServerConfig) {
    config.probe_interval_ms = 50;
    config.suspect_after = 2;
}

/// The `/v1/replication/status` role of a node, or "" on any failure.
fn role_of(server: &RunningServer) -> String {
    let (status, v) = request(server, "GET", "/v1/replication/status", "");
    if status != 200 {
        return String::new();
    }
    str_of(&v, "role").to_string()
}

/// Are two nodes' `/v1/kbs` listings byte-identical (names, seqs,
/// content hashes) and non-empty?
fn digests_match(a: &RunningServer, b: &RunningServer) -> bool {
    let mut on_a = listing(a);
    let mut on_b = listing(b);
    on_a.sort();
    on_b.sort();
    !on_a.is_empty() && on_a == on_b
}

/// Per-node `/v1/kbs` listing as `(name, seq, hash)` triples.
fn listing(server: &RunningServer) -> Vec<(String, u64, String)> {
    let (status, v) = request(server, "GET", "/v1/kbs", "");
    assert_eq!(status, 200, "{v:?}");
    v.get("kbs")
        .and_then(|k| k.as_array())
        .expect("kbs array")
        .iter()
        .map(|kb| {
            (
                str_of(kb, "name").to_string(),
                num_of(kb, "seq"),
                str_of(kb, "hash").to_string(),
            )
        })
        .collect()
}

#[test]
fn solo_ring_serves_everything_and_lists_kbs() {
    let dir = temp_state_dir("solo");
    let node = shard_server(&dir, |_| {});
    let addr = node.addr;

    let (status, ring) = request(&node, "GET", "/v1/cluster/ring", "");
    assert_eq!(status, 200, "{ring:?}");
    assert_eq!(num_of(&ring, "epoch"), 1);
    assert_eq!(str_of(&ring, "self"), addr.to_string());
    assert_eq!(num_of(&ring, "vnodes"), DEFAULT_VNODES as u64);
    assert_eq!(
        ring.get("members")
            .and_then(|m| m.as_array())
            .unwrap()
            .len(),
        1
    );

    // A solo member owns the whole namespace: every request is local.
    let seq = put(&node, "alpha", "A & B");
    put(&node, "beta", "A | C");
    let mut listed = listing(&node);
    listed.sort();
    assert_eq!(listed.len(), 2);
    assert_eq!(listed[0].0, "alpha");
    assert_eq!(listed[0].1, seq);
    // The hash renders like `/v1/replication/digest`: 16 lowercase hex.
    assert_eq!(listed[0].2.len(), 16, "hash `{}`", listed[0].2);
    assert!(listed[0].2.chars().all(|c| c.is_ascii_hexdigit()));

    // KB responses on a ring member carry the ring epoch.
    let (status, head, _) =
        Client::connect_server(&node).request_full("GET", "/v1/kb/alpha", &[], "");
    assert_eq!(status, 200);
    assert!(
        head.contains("X-Arbitrex-Ring-Epoch: 1"),
        "missing ring epoch stamp in {head}"
    );
}

#[test]
fn reads_proxy_and_writes_redirect_to_the_owner() {
    let (dir1, dir2) = (temp_state_dir("route1"), temp_state_dir("route2"));
    let n1 = shard_server(&dir1, |_| {});
    let n2 = shard_server(&dir2, |_| {});

    let (status, joined) = request(
        &n1,
        "POST",
        "/v1/cluster/join",
        &format!(r#"{{"addr": "{}"}}"#, n2.addr),
    );
    assert_eq!(status, 200, "{joined:?}");
    assert_eq!(joined.get("joined").and_then(|j| j.as_bool()), Some(true));
    assert_eq!(num_of(&joined, "synced"), 1, "peer did not ack the sync");

    let ring = two_ring(n1.addr, n2.addr);
    let theirs = name_owned_by(&ring, n2.addr);

    // A write for the peer's KB is redirected, not committed here.
    let body = r#"{"action": "put", "formula": "A & B"}"#;
    let (status, head, v) =
        Client::connect_server(&n1).request_full("POST", &format!("/v1/kb/{theirs}"), &[], body);
    assert_eq!(status, 307, "{v:?}");
    assert_eq!(str_of(&v, "owner"), n2.addr.to_string());
    assert!(head.contains(&format!("X-Arbitrex-Shard-Owner: {}", n2.addr)));
    assert!(head.contains(&format!("Location: http://{}/v1/kb/{theirs}", n2.addr)));

    // Following the redirect commits on the owner...
    let (status, v) = request(&n2, "POST", &format!("/v1/kb/{theirs}"), body);
    assert_eq!(status, 200, "{v:?}");

    // ...and the non-owner proxies the read back transparently.
    let (status, head, v) =
        Client::connect_server(&n1).request_full("GET", &format!("/v1/kb/{theirs}"), &[], "");
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(str_of(&v, "name"), theirs);
    assert!(head.contains(&format!("X-Arbitrex-Shard-Owner: {}", n2.addr)));

    // A KB this node owns is served locally, no owner header.
    let mine = name_owned_by(&ring, n1.addr);
    put(&n1, &mine, "C | D");
    let (status, head, _) =
        Client::connect_server(&n1).request_full("GET", &format!("/v1/kb/{mine}"), &[], "");
    assert_eq!(status, 200);
    assert!(!head.contains("X-Arbitrex-Shard-Owner"));
}

#[test]
fn stale_ring_pin_is_refused_with_421() {
    let dir = temp_state_dir("stale");
    let node = shard_server(&dir, |_| {});
    put(&node, "pinned", "A");

    // The current epoch passes through.
    let (status, _) = Client::connect_server(&node).request_with_headers(
        "GET",
        "/v1/kb/pinned",
        &[("X-Arbitrex-Ring-Epoch", "1")],
        "",
    );
    assert_eq!(status, 200);

    // A stale pin gets the typed refusal, carrying the live epoch.
    let (status, v) = Client::connect_server(&node).request_with_headers(
        "POST",
        "/v1/kb/pinned",
        &[("X-Arbitrex-Ring-Epoch", "7")],
        r#"{"action": "put", "formula": "B"}"#,
    );
    assert_eq!(status, 421, "{v:?}");
    assert_eq!(num_of(&v, "ring_epoch"), 1);
    assert_eq!(num_of(&v, "claimed"), 7);
    // The refused write really was refused.
    let (_, v) = request(&node, "GET", "/v1/kb/pinned", "");
    assert_eq!(num_of(&v, "seq"), 1, "stale-ring write leaked through");
}

#[test]
fn join_migrates_the_newcomers_slice_without_losing_a_commit() {
    let (dir1, dir2) = (temp_state_dir("join1"), temp_state_dir("join2"));
    let n1 = shard_server(&dir1, |_| {});

    // Seed the solo node with a spread of KBs and remember every ack.
    let mut acked: Vec<(String, u64)> = Vec::new();
    for i in 0..24 {
        let name = format!("kb-{i}");
        let seq = put(&n1, &name, if i % 2 == 0 { "A & B" } else { "A | !C" });
        acked.push((name, seq));
    }

    let n2 = shard_server(&dir2, |_| {});
    let (status, joined) = request(
        &n1,
        "POST",
        "/v1/cluster/join",
        &format!(r#"{{"addr": "{}"}}"#, n2.addr),
    );
    assert_eq!(status, 200, "{joined:?}");
    assert_eq!(num_of(&joined, "epoch"), 2);

    let ring = two_ring(n1.addr, n2.addr);
    let on_n1 = listing(&n1);
    let on_n2 = listing(&n2);

    // The newcomer pulled its slice and the old owner released it:
    // ownership on disk matches ring placement exactly.
    for (name, _, _) in &on_n1 {
        assert_eq!(
            ring.owner_of(name),
            Some(n1.addr.to_string().as_str()),
            "`{name}` still on n1 but the ring says otherwise"
        );
    }
    for (name, _, _) in &on_n2 {
        assert_eq!(
            ring.owner_of(name),
            Some(n2.addr.to_string().as_str()),
            "`{name}` on n2 but the ring says otherwise"
        );
    }
    assert!(!on_n2.is_empty(), "no KB moved to the newcomer");

    // Zero acked commits lost: every seed KB is on exactly one node, at
    // (at least) its acked seq.
    assert_eq!(on_n1.len() + on_n2.len(), acked.len());
    for (name, seq) in &acked {
        let found = on_n1
            .iter()
            .chain(&on_n2)
            .find(|(n, _, _)| n == name)
            .unwrap_or_else(|| panic!("acked KB `{name}` lost in the handoff"));
        assert!(found.1 >= *seq, "`{name}` regressed below its acked seq");
    }

    // Migrated KBs answer through either node (proxy or local).
    for (name, _) in acked.iter().take(6) {
        let (status, _) = request(&n1, "GET", &format!("/v1/kb/{name}"), "");
        assert_eq!(status, 200, "`{name}` unreadable via n1 after handoff");
    }
}

#[test]
fn leave_drains_the_departing_member() {
    let (dir1, dir2) = (temp_state_dir("leave1"), temp_state_dir("leave2"));
    let n1 = shard_server(&dir1, |_| {});
    let n2 = shard_server(&dir2, |_| {});
    let (status, _) = request(
        &n1,
        "POST",
        "/v1/cluster/join",
        &format!(r#"{{"addr": "{}"}}"#, n2.addr),
    );
    assert_eq!(status, 200);

    // Commit onto both shards, following redirects to the owner.
    let ring = two_ring(n1.addr, n2.addr);
    let mut names = Vec::new();
    for i in 0..16 {
        let name = format!("kb-{i}");
        let owner = if ring.owner_of(&name) == Some(n1.addr.to_string().as_str()) {
            &n1
        } else {
            &n2
        };
        put(owner, &name, "A -> B");
        names.push(name);
    }

    let (status, left) = request(
        &n1,
        "POST",
        "/v1/cluster/leave",
        &format!(r#"{{"addr": "{}"}}"#, n2.addr),
    );
    assert_eq!(status, 200, "{left:?}");
    assert_eq!(left.get("left").and_then(|l| l.as_bool()), Some(true));

    // The survivor owns everything; the departed node drained to empty.
    let on_n1 = listing(&n1);
    let on_n2 = listing(&n2);
    assert_eq!(on_n1.len(), names.len(), "survivor is missing KBs");
    assert!(
        on_n2.is_empty(),
        "departed node still holds {:?}",
        on_n2.iter().map(|(n, _, _)| n).collect::<Vec<_>>()
    );
    // The departed node adopted the ring it is no longer part of.
    let (_, ring_view) = request(&n2, "GET", "/v1/cluster/ring", "");
    assert_eq!(
        ring_view
            .get("members")
            .and_then(|m| m.as_array())
            .unwrap()
            .len(),
        1
    );
}

#[test]
fn torn_handoff_leaves_both_copies_alive() {
    let (dir1, dir2) = (temp_state_dir("torn1"), temp_state_dir("torn2"));
    // The source refuses its first release: the pull lands, the release
    // fails, and both copies must survive for a later pass to converge.
    let n1 = shard_server(&dir1, |c| {
        c.shard_fault = Some(ShardFaultPlan::new(ShardFaultSite::HandoffTorn, 1));
    });
    for i in 0..12 {
        put(&n1, &format!("kb-{i}"), "A & !B");
    }
    let n2 = shard_server(&dir2, |_| {});
    let (status, joined) = request(
        &n1,
        "POST",
        "/v1/cluster/join",
        &format!(r#"{{"addr": "{}"}}"#, n2.addr),
    );
    assert_eq!(status, 200, "{joined:?}");
    let torn = joined
        .get("rebalance")
        .map(|r| num_of(r, "torn"))
        .unwrap_or_else(|| {
            // The newcomer's sync-side rebalance hit the fault instead;
            // either way exactly one release was refused.
            0
        });

    let on_n1 = listing(&n1);
    let on_n2 = listing(&n2);
    // One release was refused somewhere: the namespace now has exactly
    // one duplicated KB (both copies alive, identical content).
    let dup: Vec<&(String, u64, String)> = on_n1
        .iter()
        .filter(|(n, _, _)| on_n2.iter().any(|(m, _, _)| m == n))
        .collect();
    assert_eq!(
        dup.len(),
        1,
        "expected exactly one torn KB, got {dup:?} (torn counter {torn})"
    );
    let (name, seq, hash) = dup[0];
    let twin = on_n2.iter().find(|(m, _, _)| m == name).unwrap();
    assert_eq!((seq, hash), (&twin.1, &twin.2), "torn copies diverged");
    // No KB vanished: union covers all 12 seeds.
    assert_eq!(on_n1.len() + on_n2.len(), 12 + 1);
}

#[test]
fn proxy_drop_fault_is_retried_to_success() {
    let (dir1, dir2) = (temp_state_dir("drop1"), temp_state_dir("drop2"));
    let n1 = shard_server(&dir1, |c| {
        c.shard_fault = Some(ShardFaultPlan::new(ShardFaultSite::ProxyDrop, 1));
    });
    let n2 = shard_server(&dir2, |_| {});
    let (status, _) = request(
        &n1,
        "POST",
        "/v1/cluster/join",
        &format!(r#"{{"addr": "{}"}}"#, n2.addr),
    );
    assert_eq!(status, 200);

    let ring = two_ring(n1.addr, n2.addr);
    let theirs = name_owned_by(&ring, n2.addr);
    put(&n2, &theirs, "A <-> B");

    // The first proxied read eats the injected drop, retries with
    // jittered backoff against the owning chain, and succeeds — the
    // client never sees the transient.
    let (status, v) = request(&n1, "GET", &format!("/v1/kb/{theirs}"), "");
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(str_of(&v, "name"), theirs);
    // The single-shot plan disarmed on the dropped leg: still clean.
    let (status, v) = request(&n1, "GET", &format!("/v1/kb/{theirs}"), "");
    assert_eq!(status, 200, "{v:?}");
}

#[test]
fn ring_stale_fault_injects_one_421() {
    let dir = temp_state_dir("ringstale");
    let node = shard_server(&dir, |c| {
        c.shard_fault = Some(ShardFaultPlan::new(ShardFaultSite::RingStale, 1));
    });
    let body = r#"{"action": "put", "formula": "A"}"#;
    let (status, v) = request(&node, "POST", "/v1/kb/alpha", body);
    assert_eq!(status, 421, "{v:?}");
    let (status, v) = request(&node, "POST", "/v1/kb/alpha", body);
    assert_eq!(status, 200, "{v:?}");
}

#[test]
fn equal_seq_divergence_merges_instead_of_overwriting() {
    // Two partitioned solo nodes each commit ONCE to the same KB name:
    // equal seqs, different theories. The post-join rebalance must hand
    // this to the Δ-arbitration reconcile — a (seq, hash) pair cannot
    // prove descent, and force_put-overwriting the new owner's acked
    // commit would be exactly the last-writer-wins loss the design
    // forbids (DESIGN.md §13.3).
    let (dir1, dir2) = (temp_state_dir("diverge1"), temp_state_dir("diverge2"));
    let n1 = shard_server(&dir1, |_| {});
    let n2 = shard_server(&dir2, |_| {});

    // Pick the name by the ring both nodes will converge to, so the
    // divergent copies land with the *joiner* (n2) as the new owner.
    // Disjoint variable sets make the merge visible in `n_vars`: a real
    // Δ-merge unions the signatures (3 vars), while overwriting — or
    // merging a proxied-back copy of one's own theory — cannot.
    let ring = two_ring(n1.addr, n2.addr);
    let name = name_owned_by(&ring, n2.addr);
    assert_eq!(put(&n1, &name, "A & B"), 1);
    assert_eq!(put(&n2, &name, "!C"), 1);

    let (status, joined) = request(
        &n1,
        "POST",
        "/v1/cluster/join",
        &format!(r#"{{"addr": "{}"}}"#, n2.addr),
    );
    assert_eq!(status, 200, "{joined:?}");

    // The merge commits at max(seq, seq) + 1 = 2 on the owner. A plain
    // pull-overwrite would have left the source's copy verbatim at
    // seq 1 — n2's acked commit silently gone.
    let (status, v) = request(&n2, "GET", &format!("/v1/kb/{name}"), "");
    assert_eq!(status, 200, "{v:?}");
    assert!(
        num_of(&v, "seq") >= 2,
        "owner still at seq {} — divergent copy was overwritten, not Δ-merged: {v:?}",
        num_of(&v, "seq")
    );
    assert_eq!(
        num_of(&v, "n_vars"),
        3,
        "merged signature must span both sides' variables: {v:?}"
    );
    // The source keeps its (divergent, unreleased) copy: reconciliation
    // merges, it never deletes an acked commit.
    assert!(
        listing(&n1).iter().any(|(n, _, _)| n == &name),
        "source copy of `{name}` vanished during reconciliation"
    );
}

#[test]
fn owner_404_is_relayed_not_resurrected() {
    // A node holding a stale leftover copy of a KB (e.g. after a torn
    // handoff) must relay the owner's 404 once no transition is active:
    // serving the leftover would resurrect data that was legitimately
    // deleted at its owner.
    let (dir1, dir2) = (temp_state_dir("resurrect1"), temp_state_dir("resurrect2"));
    let n1 = shard_server(&dir1, |_| {});
    let n2 = shard_server(&dir2, |_| {});
    let (status, _) = request(
        &n1,
        "POST",
        "/v1/cluster/join",
        &format!(r#"{{"addr": "{}"}}"#, n2.addr),
    );
    assert_eq!(status, 200);

    let ring = two_ring(n1.addr, n2.addr);
    let name = name_owned_by(&ring, n2.addr);
    put(&n2, &name, "A | B");

    // Plant a stale copy on the non-owner via the internal bypass (the
    // same header a torn handoff's unreleased leftover sits behind).
    let body = r#"{"action": "put", "formula": "A | B"}"#;
    let (status, v) = Client::connect_server(&n1).request_with_headers(
        "POST",
        &format!("/v1/kb/{name}"),
        &[("x-arbitrex-shard-internal", "1")],
        body,
    );
    assert_eq!(status, 200, "{v:?}");

    // Delete at the owner, then read through the non-owner's proxy: the
    // 404 must come through, not the leftover copy.
    let (status, v) = request(&n2, "DELETE", &format!("/v1/kb/{name}"), "");
    assert_eq!(status, 200, "{v:?}");
    let (status, v) = request(&n1, "GET", &format!("/v1/kb/{name}"), "");
    assert_eq!(
        status, 404,
        "deleted KB `{name}` resurrected from a stale local copy: {v:?}"
    );
}

#[test]
fn enlisted_replica_serves_chain_reads_and_routes_writes_to_the_head() {
    let (dir1, dir2) = (temp_state_dir("chain1"), temp_state_dir("chain2"));
    let n1 = shard_server(&dir1, |_| {});
    let seq = put(&n1, "chained", "A & B");

    // The replica boots in the combined posture: a ring member of its
    // own solo ring, streaming the head's WAL from outside it.
    let n2 = shard_server(&dir2, |c| {
        c.replicate_from = Some(n1.addr.to_string());
    });
    assert!(
        wait_until(5_000, || {
            let (status, v) = request(&n2, "GET", "/v1/replication/status", "");
            status == 200 && num_of(&v, "visible") >= seq
        }),
        "replica never caught up with the head"
    );

    // The operator enlists it into the head's chain.
    let (status, v) = request(
        &n1,
        "POST",
        "/v1/cluster/enlist",
        &format!(r#"{{"host": "{}", "addr": "{}"}}"#, n1.addr, n2.addr),
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(v.get("enlisted").and_then(|b| b.as_bool()), Some(true));
    assert_eq!(num_of(&v, "epoch"), 2);
    assert_eq!(num_of(&v, "synced"), 1, "the new tail did not ack the ring");

    // The tail adopted the chain ring (no rebalance: placement is
    // anchored, growing a tail moves nothing)...
    let (_, ring) = request(&n2, "GET", "/v1/cluster/ring", "");
    assert_eq!(num_of(&ring, "epoch"), 2);
    let members = ring.get("members").and_then(|m| m.as_array()).unwrap();
    assert_eq!(members.len(), 1, "{ring:?}");
    assert_eq!(
        members[0].as_str().unwrap(),
        format!("{}~{}", n1.addr, n2.addr)
    );

    // ...serves chain reads locally, honoring the caller's
    // read-your-writes watermark...
    let (status, head, v) = Client::connect_server(&n2).request_full(
        "GET",
        "/v1/kb/chained",
        &[("X-Arbitrex-Min-Seq", &seq.to_string())],
        "",
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(str_of(&v, "name"), "chained");
    assert!(
        !head.contains("X-Arbitrex-Shard-Owner"),
        "a chain member must serve reads from its own store, got {head}"
    );
    // ...turns lag beyond its watermark into a typed 412, never a
    // stale answer...
    let (status, _, v) = Client::connect_server(&n2).request_full(
        "GET",
        "/v1/kb/chained",
        &[("X-Arbitrex-Min-Seq", &(seq + 5).to_string())],
        "",
    );
    assert_eq!(status, 412, "{v:?}");
    // ...and routes writes to the chain head.
    let (status, head, v) = Client::connect_server(&n2).request_full(
        "POST",
        "/v1/kb/chained",
        &[],
        r#"{"action": "put", "formula": "A & B & C"}"#,
    );
    assert_eq!(status, 307, "{v:?}");
    assert!(
        head.contains(&format!("Location: http://{}/v1/kb/chained", n1.addr)),
        "write must redirect to the head, got {head}"
    );
}

#[test]
fn head_death_promotes_the_successor_and_reconciles_its_return() {
    let (dir1, dir2, dir3) = (
        temp_state_dir("fo1"),
        temp_state_dir("fo2"),
        temp_state_dir("fo3"),
    );
    let n1 = shard_server(&dir1, fast_detector);
    let n1_addr = n1.addr;
    let n3 = shard_server(&dir3, fast_detector);
    let (status, _) = request(
        &n1,
        "POST",
        "/v1/cluster/join",
        &format!(r#"{{"addr": "{}"}}"#, n3.addr),
    );
    assert_eq!(status, 200);

    let n2 = shard_server(&dir2, |c| {
        fast_detector(c);
        c.replicate_from = Some(n1_addr.to_string());
    });
    let (status, v) = request(
        &n1,
        "POST",
        "/v1/cluster/enlist",
        &format!(r#"{{"host": "{}", "addr": "{}"}}"#, n1_addr, n2.addr),
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(num_of(&v, "synced"), 2, "tail and voter must ack the ring");

    // Seed the chain's slice through its head and let the tail catch up.
    let ring = ShardRing::new(
        [format!("{n1_addr}~{}", n2.addr), n3.addr.to_string()],
        DEFAULT_VNODES,
        0,
    );
    let mut acked = Vec::new();
    for name in names_owned_by(&ring, n1_addr, 6) {
        let seq = put(&n1, &name, "A -> B");
        acked.push((name, seq));
    }
    assert!(
        wait_until(5_000, || {
            let (status, v) = request(&n2, "GET", "/v1/replication/status", "");
            status == 200 && num_of(&v, "visible") >= acked.len() as u64
        }),
        "tail never caught up before the failover"
    );

    // Kill the chain head outright.
    n1.stop().expect("stop head");

    // Reads stay available through the blackout: a routed read from the
    // voter walks down the chain past the dead head to the replica.
    let (name0, seq0) = acked[0].clone();
    let (status, v) = request(&n3, "GET", &format!("/v1/kb/{name0}"), "");
    assert_eq!(status, 200, "read died with the head: {v:?}");
    assert!(num_of(&v, "seq") >= seq0);

    // The successor suspects, confirms with the voter, and promotes.
    assert!(
        wait_until(10_000, || role_of(&n2) == "primary"),
        "successor never promoted"
    );
    let (_, ring_view) = request(&n2, "GET", "/v1/cluster/ring", "");
    let members = ring_view.get("members").and_then(|m| m.as_array()).unwrap();
    let chain_spec = members
        .iter()
        .filter_map(|m| m.as_str())
        .find(|m| m.contains(&n2.addr.to_string()))
        .expect("rotated chain in ring");
    assert_eq!(
        chain_spec,
        format!("{n1_addr}={}@2", n2.addr),
        "rotation must keep the anchor and record the promotion epoch"
    );

    // Zero acked-commit loss across the failover.
    for (name, seq) in &acked {
        let (status, v) = request(&n2, "GET", &format!("/v1/kb/{name}"), "");
        assert_eq!(status, 200, "acked `{name}` lost in failover: {v:?}");
        assert!(num_of(&v, "seq") >= *seq, "`{name}` regressed: {v:?}");
    }

    // The voter converges on the rotated ring and routes writes to the
    // new head.
    assert!(
        wait_until(5_000, || {
            let (_, v) = request(&n3, "GET", "/v1/cluster/ring", "");
            num_of(&v, "epoch") == 4
        }),
        "voter never adopted the rotated ring"
    );
    let (status, head, v) = Client::connect_server(&n3).request_full(
        "POST",
        &format!("/v1/kb/{name0}"),
        &[],
        r#"{"action": "put", "formula": "A -> B & C"}"#,
    );
    assert_eq!(status, 307, "{v:?}");
    assert!(
        head.contains(&format!("X-Arbitrex-Shard-Owner: {}", n2.addr)),
        "write must route to the promoted head, got {head}"
    );
    let (status, _) = request(
        &n2,
        "POST",
        &format!("/v1/kb/{name0}"),
        r#"{"action": "put", "formula": "A -> B & C"}"#,
    );
    assert_eq!(status, 200);

    // The deposed head restarts on its old address: the new head
    // probes it back to life, Δ-reconciles what it held, re-enlists it
    // as the chain's tail, and the rejoiner demotes and resyncs.
    let n1b = shard_server(&dir1, |c| {
        fast_detector(c);
        c.addr = n1_addr.to_string();
    });
    assert!(
        wait_until(15_000, || {
            let (status, v) = request(&n1b, "GET", "/v1/replication/status", "");
            status == 200 && str_of(&v, "role") == "replica" && num_of(&v, "epoch") == 2
        }),
        "deposed head never rejoined as a demoted replica"
    );
    assert!(
        wait_until(10_000, || digests_match(&n1b, &n2)),
        "digests diverged after the revival reconcile"
    );
}

#[test]
fn transient_partition_is_fenced_not_split_brained() {
    let (dir1, dir2, dir3) = (
        temp_state_dir("veto1"),
        temp_state_dir("veto2"),
        temp_state_dir("veto3"),
    );
    // The head refuses a burst of requests mid-steady-state (the 25th
    // replication-transport charge arms the partition), then heals. By
    // the time the tail accumulates `suspect_after` failed probes, the
    // partition has spent its refusals — the voter's quorum probe
    // reaches the head and vetoes the promotion. A suspected-but-alive
    // head must end the test exactly where it started: primary.
    let n1 = shard_server(&dir1, |c| {
        c.probe_interval_ms = 50;
        c.suspect_after = 3;
        c.net_fault = Some(NetFaultPlan::new(NetFaultSite::Partition, 25));
    });
    let n1_addr = n1.addr;
    let n3 = shard_server(&dir3, |c| {
        c.probe_interval_ms = 50;
        c.suspect_after = 3;
    });
    let (status, _) = request(
        &n1,
        "POST",
        "/v1/cluster/join",
        &format!(r#"{{"addr": "{}"}}"#, n3.addr),
    );
    assert_eq!(status, 200);
    let n2 = shard_server(&dir2, |c| {
        c.probe_interval_ms = 50;
        c.suspect_after = 3;
        c.replicate_from = Some(n1_addr.to_string());
    });
    let (status, v) = request(
        &n1,
        "POST",
        "/v1/cluster/enlist",
        &format!(r#"{{"host": "{}", "addr": "{}"}}"#, n1_addr, n2.addr),
    );
    assert_eq!(status, 200, "{v:?}");

    let ring = ShardRing::new(
        [format!("{n1_addr}~{}", n2.addr), n3.addr.to_string()],
        DEFAULT_VNODES,
        0,
    );
    let mine = names_owned_by(&ring, n1_addr, 1).remove(0);
    let seq = put(&n1, &mine, "A & !B");

    // Ride out the partition: it fires, refuses its burst, heals.
    std::thread::sleep(Duration::from_millis(1_500));

    // Nobody deposed the live head.
    assert_eq!(role_of(&n1), "primary", "live head was deposed");
    assert_eq!(role_of(&n2), "replica", "tail split-brained to primary");
    for node in [&n1, &n2, &n3] {
        let (_, v) = request(node, "GET", "/v1/cluster/ring", "");
        assert_eq!(num_of(&v, "epoch"), 3, "ring rotated under a live head");
    }

    // The head still commits, and replication resumed after the heal.
    let seq2 = put(&n1, &mine, "A & !B & C");
    assert!(seq2 > seq);
    assert!(
        wait_until(5_000, || {
            let (status, v) = request(&n2, "GET", "/v1/replication/status", "");
            status == 200 && num_of(&v, "visible") >= seq2
        }),
        "replication never resumed after the partition healed"
    );
}

#[test]
fn shard_ring_requires_two_worker_threads() {
    // A one-thread shard member deadlocks membership: the sync handler
    // blocks its only worker while peers need to pull from this node.
    // That must be a clear boot-time error, not repeated peer timeouts.
    let result = spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        state_dir: Some(temp_state_dir("onethread")),
        shard_ring: Some("auto".to_string()),
        ..ServerConfig::default()
    });
    match result {
        Ok(server) => {
            let _ = server.stop();
            panic!("--shard-ring with one worker thread must be refused");
        }
        Err(err) => assert!(
            err.to_string().contains("--shard-ring requires at least 2"),
            "unexpected error: {err}"
        ),
    }
}

#[test]
fn cluster_endpoints_require_sharding_and_validate_input() {
    // An unsharded node refuses cluster calls with a pointer to the flag.
    let plain = spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        queue_depth: 16,
        cache_entries: 16,
        timeout_ms: 0,
        ..ServerConfig::default()
    })
    .expect("spawn plain server");
    let (status, v) = request(&plain, "GET", "/v1/cluster/ring", "");
    assert_eq!(status, 503, "{v:?}");
    assert!(str_of(&v, "error").contains("--shard-ring"));
    // `/v1/kbs` works unsharded (ring_epoch reads 0).
    let (status, v) = request(&plain, "GET", "/v1/kbs", "");
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(num_of(&v, "ring_epoch"), 0);

    let dir = temp_state_dir("validate");
    let node = shard_server(&dir, |_| {});
    let (status, v) = request(&node, "POST", "/v1/cluster/join", r#"{"addr": ""}"#);
    assert_eq!(status, 400, "{v:?}");
    let (status, v) = request(&node, "POST", "/v1/cluster/join", "{}");
    assert_eq!(status, 400, "{v:?}");
    let (status, v) = request(&node, "GET", "/v1/cluster/join", "");
    assert_eq!(status, 405, "{v:?}");
    let (status, v) = request(&node, "POST", "/v1/cluster/unknown", "{}");
    assert_eq!(status, 404, "{v:?}");
    // A release for a KB this node never held is a clean no-op.
    let (status, v) = request(
        &node,
        "POST",
        "/v1/cluster/release",
        r#"{"name": "ghost", "seq": 3}"#,
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(v.get("released").and_then(|r| r.as_bool()), Some(false));
}
