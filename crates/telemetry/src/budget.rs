//! Cooperative execution budgets: deadlines, step/conflict/candidate
//! limits, cancellation, and deterministic fault injection.
//!
//! Unlike the counters in the crate root, this module is **always
//! compiled** — budget enforcement is a correctness feature (graceful
//! degradation instead of panics or unbounded runs), not observability,
//! so it does not depend on the `enabled` cargo feature. A telemetry-off
//! build still enforces budgets.
//!
//! The model is cooperative: long-running loops in the selection kernel
//! and the SAT solver *charge* a shared [`Budget`] at well-defined sites
//! ([`BudgetSite`]) and unwind with a typed [`Exhausted`] record when any
//! limit trips. Hot loops charge through a [`Meter`], which batches the
//! shared-state traffic so the cost per iteration is a local increment.
//! Once a budget trips it stays tripped — every clone (e.g. every parallel
//! shard) observes the same first-trip record and unwinds.
//!
//! [`FaultPlan`] turns the same machinery into a deterministic fault
//! harness: trip the budget at exactly the k-th event of a chosen site,
//! independent of wall-clock, so every degradation edge in the workspace
//! can be exercised reproducibly.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Number of distinct charge sites (length of [`BudgetSite::ALL`]).
pub const SITE_COUNT: usize = 8;

/// Where in the engine a unit of work is charged.
///
/// Sites deliberately mirror the telemetry counter sites so a fault plan
/// can trip "at the k-th B&B node" or "at the j-th conflict" exactly.
/// The `Wal*`/`Snapshot*` sites are durability events in the server's
/// write-ahead log: no limit ever applies to them (durable commits are
/// never rationed), but a [`FaultPlan`] can trip them to inject a torn
/// write, a lost fsync, or a failed snapshot rename deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetSite {
    /// One candidate ranked by a kernel scan (pool or universe).
    Scan,
    /// One branch-and-bound subcube node expanded.
    Node,
    /// One SAT solver conflict.
    Conflict,
    /// One model produced by AllSAT enumeration.
    Model,
    /// One cardinality-ladder / radius binary-search step.
    LadderStep,
    /// One write-ahead-log record appended (fault: torn write).
    WalWrite,
    /// One write-ahead-log fsync (fault: fsync skipped and reported failed).
    WalFsync,
    /// One snapshot temp-file rename (fault: rename fails, temp left behind).
    SnapshotRename,
}

impl BudgetSite {
    /// Every site, in charge-array order.
    pub const ALL: [BudgetSite; SITE_COUNT] = [
        BudgetSite::Scan,
        BudgetSite::Node,
        BudgetSite::Conflict,
        BudgetSite::Model,
        BudgetSite::LadderStep,
        BudgetSite::WalWrite,
        BudgetSite::WalFsync,
        BudgetSite::SnapshotRename,
    ];

    /// Stable snake_case name (used in JSON and CLI messages).
    pub fn name(self) -> &'static str {
        match self {
            BudgetSite::Scan => "scan",
            BudgetSite::Node => "node",
            BudgetSite::Conflict => "conflict",
            BudgetSite::Model => "model",
            BudgetSite::LadderStep => "ladder_step",
            BudgetSite::WalWrite => "wal_write",
            BudgetSite::WalFsync => "wal_fsync",
            BudgetSite::SnapshotRename => "snapshot_rename",
        }
    }
}

/// Why a budget tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The step limit (scan + node + ladder work units) was exceeded.
    Steps,
    /// The conflict limit was exceeded.
    Conflicts,
    /// The candidate limit (enumerated models) was exceeded.
    Candidates,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
    /// A [`FaultPlan`] fired (deterministic fault injection).
    Fault,
}

impl TripReason {
    /// Stable snake_case name (used in JSON and CLI messages).
    pub fn name(self) -> &'static str {
        match self {
            TripReason::Deadline => "deadline",
            TripReason::Steps => "steps",
            TripReason::Conflicts => "conflicts",
            TripReason::Candidates => "candidates",
            TripReason::Cancelled => "cancelled",
            TripReason::Fault => "fault",
        }
    }
}

/// The typed record of a budget trip: where work was being charged and
/// which limit gave out. Returned by every `try_*_with_budget` path in
/// place of the panics/aborts it replaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exhausted {
    /// The site whose charge observed the trip.
    pub site: BudgetSite,
    /// The limit that gave out.
    pub reason: TripReason,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "budget exhausted ({} at site {})",
            self.reason.name(),
            self.site.name()
        )
    }
}

impl std::error::Error for Exhausted {}

/// A cooperative cancellation handle. Clone it, hand one clone to the
/// running operator (via [`Budget::with_cancel`]) and call
/// [`CancelToken::cancel`] from any thread; the next budget check unwinds
/// with [`TripReason::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has [`CancelToken::cancel`] been called on any clone?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Deterministic fault injection: trip the budget when the cumulative
/// charge at `site` reaches `at` (1-based — `at = 1` trips on the very
/// first event). Wall-clock independent, so tests of every degradation
/// edge are reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The site to trip at.
    pub site: BudgetSite,
    /// The 1-based event count at which to trip.
    pub at: u64,
}

impl FaultPlan {
    /// Trip at the `at`-th event charged to `site`.
    pub fn new(site: BudgetSite, at: u64) -> FaultPlan {
        FaultPlan { site, at }
    }
}

/// State shared by every clone of a [`Budget`] (all shards of one run).
#[derive(Debug)]
struct Shared {
    spent: [AtomicU64; SITE_COUNT],
    tripped: AtomicBool,
    trip: OnceLock<Exhausted>,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            spent: Default::default(),
            tripped: AtomicBool::new(false),
            trip: OnceLock::new(),
        }
    }
}

/// Cumulative work charged to a budget, per site, plus the trip record if
/// the budget gave out. Embedded in every degraded `Outcome` so callers
/// can see what a partial answer cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetSpent {
    /// Candidates ranked by kernel scans.
    pub scans: u64,
    /// Branch-and-bound nodes expanded.
    pub nodes: u64,
    /// SAT solver conflicts.
    pub conflicts: u64,
    /// Models produced by AllSAT enumeration.
    pub models: u64,
    /// Cardinality-ladder / radius search steps.
    pub ladder_steps: u64,
    /// Write-ahead-log records appended.
    pub wal_writes: u64,
    /// Write-ahead-log fsyncs issued.
    pub wal_fsyncs: u64,
    /// Snapshot temp-file renames attempted.
    pub snapshot_renames: u64,
    /// The trip record, if the budget gave out.
    pub trip: Option<Exhausted>,
}

impl BudgetSpent {
    /// The charge recorded at one site.
    pub fn get(&self, site: BudgetSite) -> u64 {
        match site {
            BudgetSite::Scan => self.scans,
            BudgetSite::Node => self.nodes,
            BudgetSite::Conflict => self.conflicts,
            BudgetSite::Model => self.models,
            BudgetSite::LadderStep => self.ladder_steps,
            BudgetSite::WalWrite => self.wal_writes,
            BudgetSite::WalFsync => self.wal_fsyncs,
            BudgetSite::SnapshotRename => self.snapshot_renames,
        }
    }

    /// Total work units across every site.
    pub fn total(&self) -> u64 {
        self.scans
            + self.nodes
            + self.conflicts
            + self.models
            + self.ladder_steps
            + self.wal_writes
            + self.wal_fsyncs
            + self.snapshot_renames
    }
}

/// A cooperative execution budget.
///
/// Cheap to clone — clones share the same spent counters and trip state,
/// so one `Budget` governs an entire operator application including its
/// parallel shards and any SAT solvers it spawns. An unlimited budget
/// ([`Budget::unlimited`]) never trips and budgeted code paths fast-path
/// around all shared-state traffic for it.
///
/// ```
/// use arbitrex_telemetry::budget::{Budget, BudgetSite};
/// let b = Budget::unlimited().with_step_limit(10);
/// for _ in 0..10 {
///     assert!(b.charge(BudgetSite::Scan, 1).is_ok());
/// }
/// let trip = b.charge(BudgetSite::Scan, 1).unwrap_err();
/// assert_eq!(trip.site, BudgetSite::Scan);
/// assert_eq!(b.spent().scans, 11);
/// ```
#[derive(Debug, Clone)]
pub struct Budget {
    shared: Arc<Shared>,
    start: Instant,
    deadline: Option<Duration>,
    step_limit: Option<u64>,
    conflict_limit: Option<u64>,
    candidate_limit: Option<u64>,
    cancel: Option<CancelToken>,
    fault: Option<FaultPlan>,
    frontier_limit: u64,
}

/// Default cap on how many not-yet-refuted candidates a degraded kernel
/// answer will materialize before downgrading from `UpperBound` to
/// `Interrupted` quality. See [`Budget::with_frontier_limit`].
pub const DEFAULT_FRONTIER_LIMIT: u64 = 1 << 16;

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget with no limits: never trips, and budgeted entry points
    /// take their exact fast path.
    pub fn unlimited() -> Budget {
        Budget {
            shared: Arc::new(Shared::new()),
            start: Instant::now(),
            deadline: None,
            step_limit: None,
            conflict_limit: None,
            candidate_limit: None,
            cancel: None,
            fault: None,
            frontier_limit: DEFAULT_FRONTIER_LIMIT,
        }
    }

    /// Trip once `deadline` of wall-clock time has elapsed since this call.
    /// Deadlines are checked at charge time (strided in hot loops), so the
    /// overshoot is bounded by one check interval.
    pub fn with_deadline(mut self, deadline: Duration) -> Budget {
        self.start = Instant::now();
        self.deadline = Some(deadline);
        self
    }

    /// Trip once the combined [`BudgetSite::Scan`] + [`BudgetSite::Node`] +
    /// [`BudgetSite::LadderStep`] charge exceeds `limit` work units.
    pub fn with_step_limit(mut self, limit: u64) -> Budget {
        self.step_limit = Some(limit);
        self
    }

    /// Trip once more than `limit` SAT conflicts have been charged.
    pub fn with_conflict_limit(mut self, limit: u64) -> Budget {
        self.conflict_limit = Some(limit);
        self
    }

    /// Trip once more than `limit` enumerated models have been charged.
    pub fn with_candidate_limit(mut self, limit: u64) -> Budget {
        self.candidate_limit = Some(limit);
        self
    }

    /// Attach a cancellation token; checked at charge time.
    pub fn with_cancel(mut self, token: CancelToken) -> Budget {
        self.cancel = Some(token);
        self
    }

    /// Attach a deterministic fault plan (testing): trip exactly at the
    /// plan's event count. Meters on the fault's site check every tick.
    pub fn with_fault(mut self, plan: FaultPlan) -> Budget {
        self.fault = Some(plan);
        self
    }

    /// Override the frontier-materialization cap (see
    /// [`DEFAULT_FRONTIER_LIMIT`]).
    pub fn with_frontier_limit(mut self, limit: u64) -> Budget {
        self.frontier_limit = limit;
        self
    }

    /// `true` when this budget can never trip (no limits, deadline,
    /// cancellation, or fault plan). Budgeted entry points use this to
    /// take the exact, uninstrumented path.
    pub fn is_unconstrained(&self) -> bool {
        self.deadline.is_none()
            && self.step_limit.is_none()
            && self.conflict_limit.is_none()
            && self.candidate_limit.is_none()
            && self.cancel.is_none()
            && self.fault.is_none()
    }

    /// The frontier-materialization cap for degraded kernel answers.
    pub fn frontier_limit(&self) -> u64 {
        self.frontier_limit
    }

    /// The trip record, if this budget has given out.
    pub fn tripped(&self) -> Option<Exhausted> {
        if self.shared.tripped.load(Ordering::Relaxed) {
            self.shared.trip.get().copied()
        } else {
            None
        }
    }

    /// Snapshot the cumulative per-site charges and the trip record.
    pub fn spent(&self) -> BudgetSpent {
        let s = &self.shared.spent;
        BudgetSpent {
            scans: s[BudgetSite::Scan as usize].load(Ordering::Relaxed),
            nodes: s[BudgetSite::Node as usize].load(Ordering::Relaxed),
            conflicts: s[BudgetSite::Conflict as usize].load(Ordering::Relaxed),
            models: s[BudgetSite::Model as usize].load(Ordering::Relaxed),
            ladder_steps: s[BudgetSite::LadderStep as usize].load(Ordering::Relaxed),
            wal_writes: s[BudgetSite::WalWrite as usize].load(Ordering::Relaxed),
            wal_fsyncs: s[BudgetSite::WalFsync as usize].load(Ordering::Relaxed),
            snapshot_renames: s[BudgetSite::SnapshotRename as usize].load(Ordering::Relaxed),
            trip: self.tripped(),
        }
    }

    /// Record the first trip and return it (later callers get the first
    /// record, so every shard reports the same `Exhausted`).
    fn trip(&self, site: BudgetSite, reason: TripReason) -> Exhausted {
        let rec = *self.shared.trip.get_or_init(|| Exhausted { site, reason });
        self.shared.tripped.store(true, Ordering::Relaxed);
        rec
    }

    fn step_total(&self) -> u64 {
        let s = &self.shared.spent;
        s[BudgetSite::Scan as usize].load(Ordering::Relaxed)
            + s[BudgetSite::Node as usize].load(Ordering::Relaxed)
            + s[BudgetSite::LadderStep as usize].load(Ordering::Relaxed)
    }

    /// Charge `n` work units to `site`. Returns the trip record (first
    /// one wins across threads) once any limit gives out; once tripped,
    /// every subsequent charge on every clone fails immediately.
    pub fn charge(&self, site: BudgetSite, n: u64) -> Result<(), Exhausted> {
        if self.shared.tripped.load(Ordering::Relaxed) {
            // invariant: tripped is only stored after trip is initialized.
            return Err(self.shared.trip.get().copied().unwrap_or(Exhausted {
                site,
                reason: TripReason::Steps,
            }));
        }
        let total = self.shared.spent[site as usize].fetch_add(n, Ordering::Relaxed) + n;
        if let Some(f) = self.fault {
            if f.site == site && total >= f.at {
                return Err(self.trip(site, TripReason::Fault));
            }
        }
        match site {
            BudgetSite::Scan | BudgetSite::Node | BudgetSite::LadderStep => {
                if let Some(limit) = self.step_limit {
                    if self.step_total() > limit {
                        return Err(self.trip(site, TripReason::Steps));
                    }
                }
            }
            BudgetSite::Conflict => {
                if let Some(limit) = self.conflict_limit {
                    if total > limit {
                        return Err(self.trip(site, TripReason::Conflicts));
                    }
                }
            }
            BudgetSite::Model => {
                if let Some(limit) = self.candidate_limit {
                    if total > limit {
                        return Err(self.trip(site, TripReason::Candidates));
                    }
                }
            }
            // Durability sites: never rationed; only a fault plan (checked
            // above), cancellation, or a deadline can trip them.
            BudgetSite::WalWrite | BudgetSite::WalFsync | BudgetSite::SnapshotRename => {}
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(self.trip(site, TripReason::Cancelled));
            }
        }
        if let Some(deadline) = self.deadline {
            if self.start.elapsed() >= deadline {
                return Err(self.trip(site, TripReason::Deadline));
            }
        }
        Ok(())
    }

    /// A batching [`Meter`] for a hot loop charging `site`. With a fault
    /// plan armed on `site` the meter checks every tick (determinism);
    /// otherwise it batches [`METER_STRIDE`] ticks per shared charge.
    pub fn meter(&self, site: BudgetSite) -> Meter<'_> {
        let stride = match self.fault {
            Some(f) if f.site == site => 1,
            _ => METER_STRIDE,
        };
        Meter {
            budget: self,
            site,
            stride,
            pending: 0,
            tripped: self.tripped(),
        }
    }
}

/// How many ticks a [`Meter`] accumulates locally before touching the
/// shared budget state ("checked every N iterations"). Limits may
/// overshoot by at most this many work units; fault plans never do.
pub const METER_STRIDE: u64 = 1024;

/// A per-call-site batching view of a [`Budget`] for hot loops: `tick`
/// is a local increment except every [`METER_STRIDE`]-th call (or every
/// call when a fault plan targets this site). Flushes the remaining local
/// count to the shared budget on drop, so `Budget::spent` stays exact.
#[derive(Debug)]
pub struct Meter<'a> {
    budget: &'a Budget,
    site: BudgetSite,
    stride: u64,
    pending: u64,
    tripped: Option<Exhausted>,
}

impl Meter<'_> {
    /// Charge one work unit. Returns the trip record once the budget has
    /// given out (sticky: keeps returning it).
    #[inline]
    pub fn tick(&mut self) -> Result<(), Exhausted> {
        if let Some(t) = self.tripped {
            return Err(t);
        }
        self.pending += 1;
        if self.pending >= self.stride {
            let n = std::mem::take(&mut self.pending);
            if let Err(t) = self.budget.charge(self.site, n) {
                self.tripped = Some(t);
                return Err(t);
            }
        }
        Ok(())
    }

    /// The sticky trip record, if this meter has observed one.
    pub fn tripped(&self) -> Option<Exhausted> {
        self.tripped
    }
}

impl Drop for Meter<'_> {
    fn drop(&mut self) {
        if self.pending > 0 {
            let _ = self
                .budget
                .charge(self.site, std::mem::take(&mut self.pending));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(b.is_unconstrained());
        for _ in 0..10_000 {
            assert!(b.charge(BudgetSite::Scan, 1).is_ok());
        }
        assert_eq!(b.spent().scans, 10_000);
        assert!(b.tripped().is_none());
    }

    #[test]
    fn step_limit_spans_scan_node_and_ladder_sites() {
        let b = Budget::unlimited().with_step_limit(5);
        assert!(b.charge(BudgetSite::Scan, 2).is_ok());
        assert!(b.charge(BudgetSite::Node, 2).is_ok());
        assert!(b.charge(BudgetSite::LadderStep, 1).is_ok());
        let trip = b.charge(BudgetSite::Node, 1).unwrap_err();
        assert_eq!(trip.reason, TripReason::Steps);
        assert_eq!(trip.site, BudgetSite::Node);
        // Sticky: later charges at any site fail with the same record.
        assert_eq!(b.charge(BudgetSite::Scan, 1).unwrap_err(), trip);
        assert_eq!(b.spent().trip, Some(trip));
    }

    #[test]
    fn conflict_and_candidate_limits_are_independent() {
        let b = Budget::unlimited()
            .with_conflict_limit(2)
            .with_candidate_limit(3);
        assert!(b.charge(BudgetSite::Conflict, 2).is_ok());
        assert!(b.charge(BudgetSite::Model, 3).is_ok());
        let trip = b.charge(BudgetSite::Conflict, 1).unwrap_err();
        assert_eq!(trip.reason, TripReason::Conflicts);
    }

    #[test]
    fn fault_plan_trips_exactly_at_k() {
        let b = Budget::unlimited().with_fault(FaultPlan::new(BudgetSite::Node, 3));
        assert!(b.charge(BudgetSite::Node, 1).is_ok());
        assert!(b.charge(BudgetSite::Node, 1).is_ok());
        let trip = b.charge(BudgetSite::Node, 1).unwrap_err();
        assert_eq!(trip.reason, TripReason::Fault);
        assert_eq!(b.spent().nodes, 3);
    }

    #[test]
    fn fault_plan_ignores_other_sites() {
        let b = Budget::unlimited().with_fault(FaultPlan::new(BudgetSite::Model, 1));
        assert!(b.charge(BudgetSite::Scan, 100).is_ok());
        assert!(b.charge(BudgetSite::Model, 1).is_err());
    }

    #[test]
    fn cancel_token_trips_any_clone() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel(token.clone());
        let b2 = b.clone();
        assert!(b.charge(BudgetSite::Scan, 1).is_ok());
        token.cancel();
        let trip = b2.charge(BudgetSite::Scan, 1).unwrap_err();
        assert_eq!(trip.reason, TripReason::Cancelled);
        assert!(b.tripped().is_some());
    }

    #[test]
    fn deadline_in_the_past_trips_immediately() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        let trip = b.charge(BudgetSite::Conflict, 1).unwrap_err();
        assert_eq!(trip.reason, TripReason::Deadline);
    }

    #[test]
    fn clones_share_spent_counters() {
        let b = Budget::unlimited();
        let b2 = b.clone();
        b.charge(BudgetSite::Scan, 7).unwrap();
        b2.charge(BudgetSite::Scan, 5).unwrap();
        assert_eq!(b.spent().scans, 12);
        assert_eq!(b2.spent().scans, 12);
    }

    #[test]
    fn meter_batches_but_flushes_exactly_on_drop() {
        let b = Budget::unlimited();
        {
            let mut m = b.meter(BudgetSite::Scan);
            for _ in 0..(METER_STRIDE + 37) {
                m.tick().unwrap();
            }
        }
        assert_eq!(b.spent().scans, METER_STRIDE + 37);
    }

    #[test]
    fn meter_with_fault_is_tick_exact() {
        let b = Budget::unlimited().with_fault(FaultPlan::new(BudgetSite::Scan, 5));
        let mut m = b.meter(BudgetSite::Scan);
        for _ in 0..4 {
            m.tick().unwrap();
        }
        let trip = m.tick().unwrap_err();
        assert_eq!(trip.reason, TripReason::Fault);
        assert_eq!(b.spent().scans, 5);
        // Sticky on the meter too.
        assert!(m.tick().is_err());
    }

    #[test]
    fn meter_respects_limit_within_one_stride() {
        let b = Budget::unlimited().with_step_limit(10);
        let mut m = b.meter(BudgetSite::Scan);
        let mut ticks = 0u64;
        while m.tick().is_ok() {
            ticks += 1;
            assert!(ticks <= 10 + METER_STRIDE, "meter failed to trip");
        }
        assert!(ticks >= 10, "tripped before the limit");
    }

    #[test]
    fn first_trip_wins() {
        let b = Budget::unlimited()
            .with_conflict_limit(0)
            .with_candidate_limit(0);
        let t1 = b.charge(BudgetSite::Conflict, 1).unwrap_err();
        let t2 = b.charge(BudgetSite::Model, 1).unwrap_err();
        assert_eq!(t1, t2);
        assert_eq!(t1.reason, TripReason::Conflicts);
    }

    #[test]
    fn exhausted_displays_site_and_reason() {
        let e = Exhausted {
            site: BudgetSite::LadderStep,
            reason: TripReason::Deadline,
        };
        assert_eq!(
            format!("{e}"),
            "budget exhausted (deadline at site ladder_step)"
        );
    }

    #[test]
    fn wal_sites_are_unrationed_but_faultable() {
        // Step/conflict/candidate limits never apply to durability sites…
        let b = Budget::unlimited()
            .with_step_limit(1)
            .with_conflict_limit(1)
            .with_candidate_limit(1);
        for _ in 0..100 {
            assert!(b.charge(BudgetSite::WalWrite, 1).is_ok());
            assert!(b.charge(BudgetSite::WalFsync, 1).is_ok());
            assert!(b.charge(BudgetSite::SnapshotRename, 1).is_ok());
        }
        let s = b.spent();
        assert_eq!(s.get(BudgetSite::WalWrite), 100);
        assert_eq!(s.get(BudgetSite::WalFsync), 100);
        assert_eq!(s.get(BudgetSite::SnapshotRename), 100);
        // …but a fault plan trips them exactly at k.
        let b = Budget::unlimited().with_fault(FaultPlan::new(BudgetSite::WalFsync, 2));
        assert!(b.charge(BudgetSite::WalWrite, 1).is_ok());
        assert!(b.charge(BudgetSite::WalFsync, 1).is_ok());
        let trip = b.charge(BudgetSite::WalFsync, 1).unwrap_err();
        assert_eq!(trip.reason, TripReason::Fault);
        assert_eq!(trip.site, BudgetSite::WalFsync);
    }

    #[test]
    fn spent_get_and_total() {
        let b = Budget::unlimited();
        b.charge(BudgetSite::Model, 2).unwrap();
        b.charge(BudgetSite::LadderStep, 3).unwrap();
        let s = b.spent();
        assert_eq!(s.get(BudgetSite::Model), 2);
        assert_eq!(s.get(BudgetSite::LadderStep), 3);
        assert_eq!(s.total(), 5);
    }
}
