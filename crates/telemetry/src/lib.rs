//! # arbitrex-telemetry
//!
//! Zero-dependency observability primitives for the arbitrex workspace:
//! atomic [`Counter`]s, monotonic [`Timer`]s with RAII [`SpanGuard`]s, and
//! a [`TelemetrySnapshot`] that serializes to JSON without pulling in any
//! external crate.
//!
//! The whole crate is gated on the `enabled` cargo feature. With the
//! feature **off** every type is a zero-sized shell and every method is an
//! empty `#[inline]` function, so instrumentation in hot loops compiles to
//! nothing (local accumulators feeding a no-op [`Counter::add`] are
//! dead-code-eliminated). With the feature **on**, counters are relaxed
//! `AtomicU64`s and timers read `std::time::Instant`.
//!
//! Counters do not self-register (that would need link-time magic the
//! workspace avoids); instead each instrumented crate declares its statics
//! and groups them into a [`Section`], and a top-level crate assembles the
//! sections into a [`TelemetrySnapshot`]. See `arbitrex_core::telemetry`
//! for the canonical assembly and `OBSERVABILITY.md` at the workspace root
//! for the meaning of every counter.
//!
//! ```
//! use arbitrex_telemetry::{Counter, Section, snapshot_of};
//! static SCANS: Counter = Counter::new("scans");
//! static SECTION: Section = Section {
//!     name: "demo",
//!     counters: &[&SCANS],
//!     timers: &[],
//! };
//! SCANS.add(3);
//! let snap = snapshot_of(&[&SECTION]);
//! // With the `enabled` feature on this reports 3; off, it reports 0.
//! assert!(snap.get("demo", "scans") == Some(3) || !arbitrex_telemetry::enabled());
//! assert!(snap.to_json().contains("\"demo\""));
//! ```

#![warn(missing_docs)]

pub mod budget;

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, Ordering};

/// Is telemetry compiled in? `false` means every counter and timer in the
/// process is a no-op and snapshots are all zeros.
#[inline]
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A named monotonically increasing event counter.
///
/// Increments use relaxed atomics: counts are exact per counter but carry
/// no ordering relative to other counters. Instrumentation in tight loops
/// should accumulate into a local `u64` and [`Counter::add`] once per
/// call/chunk — with telemetry disabled the no-op `add` lets the compiler
/// eliminate the local bookkeeping entirely.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    #[cfg(feature = "enabled")]
    value: AtomicU64,
}

impl Counter {
    /// A new counter at zero. `const`, so counters can be `static`s.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            #[cfg(feature = "enabled")]
            value: AtomicU64::new(0),
        }
    }

    /// The counter's snapshot key.
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        if n > 0 {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Add one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 when telemetry is disabled).
    #[inline]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.value.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// Reset to zero.
    #[inline]
    pub fn reset(&self) {
        #[cfg(feature = "enabled")]
        self.value.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Timer + SpanGuard
// ---------------------------------------------------------------------------

/// A named accumulator of monotonic wall-clock time.
///
/// Tracks total elapsed nanoseconds and the number of spans that reported
/// into it. Concurrent spans (e.g. one per worker shard) sum their
/// durations, so a parallel region reports *busy* time, not wall time.
#[derive(Debug)]
pub struct Timer {
    name: &'static str,
    #[cfg(feature = "enabled")]
    nanos: AtomicU64,
    #[cfg(feature = "enabled")]
    spans: AtomicU64,
}

impl Timer {
    /// A new timer at zero. `const`, so timers can be `static`s.
    pub const fn new(name: &'static str) -> Timer {
        Timer {
            name,
            #[cfg(feature = "enabled")]
            nanos: AtomicU64::new(0),
            #[cfg(feature = "enabled")]
            spans: AtomicU64::new(0),
        }
    }

    /// The timer's snapshot key (reported as `<name>_ns` / `<name>_spans`).
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Start a span; the elapsed time is added when the guard drops.
    #[inline]
    pub fn span(&self) -> SpanGuard<'_> {
        SpanGuard {
            #[cfg(feature = "enabled")]
            timer: self,
            #[cfg(feature = "enabled")]
            start: std::time::Instant::now(),
            #[cfg(not(feature = "enabled"))]
            _marker: std::marker::PhantomData,
        }
    }

    /// Record an externally measured duration.
    #[inline]
    pub fn add_nanos(&self, ns: u64) {
        #[cfg(feature = "enabled")]
        {
            self.nanos.fetch_add(ns, Ordering::Relaxed);
            self.spans.fetch_add(1, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = ns;
    }

    /// Total accumulated nanoseconds (0 when telemetry is disabled).
    #[inline]
    pub fn nanos(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.nanos.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// Number of completed spans (0 when telemetry is disabled).
    #[inline]
    pub fn spans(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.spans.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        0
    }

    /// Reset both accumulators to zero.
    #[inline]
    pub fn reset(&self) {
        #[cfg(feature = "enabled")]
        {
            self.nanos.store(0, Ordering::Relaxed);
            self.spans.store(0, Ordering::Relaxed);
        }
    }
}

/// RAII guard returned by [`Timer::span`]; reports the elapsed time into
/// its timer on drop. Zero-sized (modulo lifetime) when telemetry is
/// disabled.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard<'a> {
    #[cfg(feature = "enabled")]
    timer: &'a Timer,
    #[cfg(feature = "enabled")]
    start: std::time::Instant,
    #[cfg(not(feature = "enabled"))]
    _marker: std::marker::PhantomData<&'a Timer>,
}

impl Drop for SpanGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        self.timer.add_nanos(self.start.elapsed().as_nanos() as u64);
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Number of buckets in a [`Histogram`]: powers of two from 1 ns up to
/// ~17.6 s, with the last bucket absorbing everything larger.
pub const HISTOGRAM_BUCKETS: usize = 35;

/// A lock-free log₂-bucketed latency histogram.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` nanoseconds. Like
/// [`Counter`], the whole structure compiles to a zero-sized no-op without
/// the `enabled` feature. Used by the server for per-endpoint latency
/// distributions exported on `/metrics`.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    #[cfg(feature = "enabled")]
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// A new empty histogram. `const`, so histograms can be `static`s.
    pub const fn new(name: &'static str) -> Histogram {
        #[cfg(feature = "enabled")]
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            #[cfg(feature = "enabled")]
            buckets: [ZERO; HISTOGRAM_BUCKETS],
        }
    }

    /// The histogram's snapshot key.
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Record one sample of `ns` nanoseconds.
    #[inline]
    pub fn record_nanos(&self, ns: u64) {
        #[cfg(feature = "enabled")]
        {
            let bucket = (63 - ns.max(1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
            self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = ns;
    }

    /// Read all buckets (all zeros when telemetry is disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            name: self.name,
            #[cfg(feature = "enabled")]
            buckets: {
                let mut out = [0u64; HISTOGRAM_BUCKETS];
                for (slot, b) in out.iter_mut().zip(self.buckets.iter()) {
                    *slot = b.load(Ordering::Relaxed);
                }
                out
            },
            #[cfg(not(feature = "enabled"))]
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    /// Reset every bucket to zero.
    pub fn reset(&self) {
        #[cfg(feature = "enabled")]
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Point-in-time values of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// The histogram name.
    pub name: &'static str,
    /// Bucket counts; bucket `i` covers `[2^i, 2^(i+1))` ns.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper bound (in nanoseconds) of the bucket containing the `q`-th
    /// quantile (`0.0 ≤ q ≤ 1.0`), or `None` when empty. Log-bucket
    /// resolution: the true quantile lies within a factor of 2.
    pub fn quantile_upper_ns(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Some(if i + 1 >= 64 {
                    u64::MAX
                } else {
                    1u64 << (i + 1)
                });
            }
        }
        None
    }

    /// Serialize as a JSON object with count, quantile bounds, and the
    /// non-zero buckets as `{"lo_ns": count}` pairs.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"count\": {}", self.count());
        for (label, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
            match self.quantile_upper_ns(q) {
                Some(ns) => out.push_str(&format!(", \"{label}_le_ns\": {ns}")),
                None => out.push_str(&format!(", \"{label}_le_ns\": null")),
            }
        }
        out.push_str(", \"buckets\": {");
        let mut first = true;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{}\": {}", 1u64 << i, b));
        }
        out.push_str("}}");
        out
    }
}

// ---------------------------------------------------------------------------
// Sections and snapshots
// ---------------------------------------------------------------------------

/// A named group of counters and timers, declared `static` by the crate
/// that owns the instrumentation.
#[derive(Debug)]
pub struct Section {
    /// Snapshot key for the group (e.g. `"kernel"`, `"sat"`).
    pub name: &'static str,
    /// The counters in the group, in display order.
    pub counters: &'static [&'static Counter],
    /// The timers in the group, in display order.
    pub timers: &'static [&'static Timer],
}

impl Section {
    /// Read every counter and timer into an owned [`SectionSnapshot`].
    pub fn snapshot(&self) -> SectionSnapshot {
        SectionSnapshot {
            name: self.name,
            counters: self.counters.iter().map(|c| (c.name(), c.get())).collect(),
            timers: self
                .timers
                .iter()
                .map(|t| TimerSnapshot {
                    name: t.name(),
                    nanos: t.nanos(),
                    spans: t.spans(),
                })
                .collect(),
        }
    }

    /// Reset every counter and timer in the group.
    pub fn reset(&self) {
        for c in self.counters {
            c.reset();
        }
        for t in self.timers {
            t.reset();
        }
    }
}

/// Point-in-time values of one [`Section`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionSnapshot {
    /// The section name.
    pub name: &'static str,
    /// `(counter name, value)` pairs in declaration order.
    pub counters: Vec<(&'static str, u64)>,
    /// Timer readings in declaration order.
    pub timers: Vec<TimerSnapshot>,
}

/// Point-in-time values of one [`Timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerSnapshot {
    /// The timer name.
    pub name: &'static str,
    /// Total accumulated nanoseconds.
    pub nanos: u64,
    /// Number of completed spans.
    pub spans: u64,
}

/// A point-in-time reading of a set of sections — the value returned by
/// `arbitrex_core::telemetry::snapshot()` and printed by the CLI's
/// `--stats` / `--stats-json` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Whether telemetry was compiled in when the snapshot was taken.
    pub enabled: bool,
    /// The sections, in registration order.
    pub sections: Vec<SectionSnapshot>,
}

impl TelemetrySnapshot {
    /// Look up a counter value by section and counter name.
    pub fn get(&self, section: &str, counter: &str) -> Option<u64> {
        let s = self.sections.iter().find(|s| s.name == section)?;
        s.counters
            .iter()
            .find(|(n, _)| *n == counter)
            .map(|&(_, v)| v)
    }

    /// True when every counter and timer reads zero (always the case when
    /// telemetry is compiled out).
    pub fn is_all_zero(&self) -> bool {
        self.sections.iter().all(|s| {
            s.counters.iter().all(|&(_, v)| v == 0)
                && s.timers.iter().all(|t| t.nanos == 0 && t.spans == 0)
        })
    }

    /// Serialize to a stable JSON object:
    ///
    /// ```json
    /// {"telemetry_enabled": true,
    ///  "kernel": {"candidates_scanned": 123, "shard_busy_ns": 456, ...}}
    /// ```
    ///
    /// Timers contribute two keys, `<name>_ns` and `<name>_spans`. The
    /// writer is self-contained (no external JSON dependency); names are
    /// escaped defensively even though they are static identifiers.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"telemetry_enabled\": {}",
            if self.enabled { "true" } else { "false" }
        ));
        for s in &self.sections {
            out.push_str(", ");
            out.push_str(&format!("{}: {{", json_string(s.name)));
            let mut first = true;
            for (name, v) in &s.counters {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!("{}: {}", json_string(name), v));
            }
            for t in &s.timers {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!(
                    "{}: {}, {}: {}",
                    json_string(&format!("{}_ns", t.name)),
                    t.nanos,
                    json_string(&format!("{}_spans", t.name)),
                    t.spans
                ));
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Render as an aligned human-readable block (what `--stats` prints).
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "telemetry ({}):\n",
            if self.enabled {
                "enabled"
            } else {
                "compiled out — all counters read 0"
            }
        );
        for s in &self.sections {
            for (name, v) in &s.counters {
                out.push_str(&format!("  {}.{:<28} {}\n", s.name, name, v));
            }
            for t in &s.timers {
                out.push_str(&format!(
                    "  {}.{:<28} {:.3} ms over {} span(s)\n",
                    s.name,
                    format!("{}_busy", t.name),
                    t.nanos as f64 / 1e6,
                    t.spans
                ));
            }
        }
        out
    }
}

impl std::fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render_text())
    }
}

/// Snapshot a list of sections in order.
pub fn snapshot_of(sections: &[&Section]) -> TelemetrySnapshot {
    TelemetrySnapshot {
        enabled: enabled(),
        sections: sections.iter().map(|s| s.snapshot()).collect(),
    }
}

/// Reset every counter and timer in the given sections.
pub fn reset_of(sections: &[&Section]) {
    for s in sections {
        s.reset();
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    static C1: Counter = Counter::new("hits");
    static C2: Counter = Counter::new("misses");
    static T1: Timer = Timer::new("busy");
    static SEC: Section = Section {
        name: "test",
        counters: &[&C1, &C2],
        timers: &[&T1],
    };

    static H1: Histogram = Histogram::new("latency");

    #[test]
    fn histogram_buckets_by_log2_and_quantiles_bound_from_above() {
        H1.reset();
        H1.record_nanos(0); // clamps to bucket 0
        H1.record_nanos(1);
        H1.record_nanos(1000); // bucket 9: [512, 1024)
        H1.record_nanos(1024); // bucket 10
        let snap = H1.snapshot();
        if enabled() {
            assert_eq!(snap.count(), 4);
            assert_eq!(snap.buckets[0], 2);
            assert_eq!(snap.buckets[9], 1);
            assert_eq!(snap.buckets[10], 1);
            // p50 lands in bucket 0 → upper bound 2 ns.
            assert_eq!(snap.quantile_upper_ns(0.5), Some(2));
            // p99 lands in the last occupied bucket → upper bound 2048 ns.
            assert_eq!(snap.quantile_upper_ns(0.99), Some(2048));
            let json = snap.to_json();
            assert!(json.contains("\"count\": 4"));
            assert!(json.contains("\"512\": 1"));
        } else {
            assert_eq!(snap.count(), 0);
            assert_eq!(snap.quantile_upper_ns(0.5), None);
        }
        H1.reset();
        assert_eq!(H1.snapshot().quantile_upper_ns(0.5), None);
    }

    static H2: Histogram = Histogram::new("saturating");

    #[test]
    fn histogram_saturates_to_last_bucket() {
        H2.record_nanos(u64::MAX);
        if enabled() {
            let snap = H2.snapshot();
            assert_eq!(snap.buckets[HISTOGRAM_BUCKETS - 1], 1);
            assert_eq!(snap.count(), 1);
        }
        H2.reset();
    }

    #[test]
    fn counters_count_when_enabled_and_vanish_when_not() {
        SEC.reset();
        C1.add(2);
        C1.incr();
        C2.add(0);
        if enabled() {
            assert_eq!(C1.get(), 3);
            assert_eq!(C2.get(), 0);
        } else {
            assert_eq!(C1.get(), 0);
        }
        C1.reset();
        assert_eq!(C1.get(), 0);
    }

    #[test]
    fn timers_accumulate_spans() {
        SEC.reset();
        {
            let _g = T1.span();
        }
        T1.add_nanos(5);
        if enabled() {
            assert_eq!(T1.spans(), 2);
            assert!(T1.nanos() >= 5);
        } else {
            assert_eq!(T1.spans(), 0);
            assert_eq!(T1.nanos(), 0);
        }
    }

    #[test]
    fn snapshot_reads_and_serializes() {
        SEC.reset();
        C1.add(7);
        let snap = snapshot_of(&[&SEC]);
        assert_eq!(snap.enabled, enabled());
        if enabled() {
            assert_eq!(snap.get("test", "hits"), Some(7));
            assert!(!snap.is_all_zero());
        } else {
            assert_eq!(snap.get("test", "hits"), Some(0));
            assert!(snap.is_all_zero());
        }
        assert_eq!(snap.get("test", "nope"), None);
        assert_eq!(snap.get("nope", "hits"), None);
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"telemetry_enabled\""));
        assert!(json.contains("\"test\""));
        assert!(json.contains("\"hits\""));
        assert!(json.contains("\"busy_ns\""));
        let text = snap.render_text();
        assert!(text.contains("test.hits"));
    }

    #[test]
    fn reset_of_zeroes_everything() {
        C1.add(1);
        T1.add_nanos(1);
        reset_of(&[&SEC]);
        assert!(snapshot_of(&[&SEC]).is_all_zero());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
