//! Example 3.1 of the paper, end to end (experiment E1).
//!
//! A database class with three students: one wants SQL only, one Datalog
//! only, one wants SQL + Datalog + Query-by-Example. The instructor offers
//! either "Datalog only" or "SQL and Datalog". Model-fitting picks the
//! offer *overall closest* to the whole class; Dalal's revision — which
//! trusts the offer μ and gets as close as possible to ψ — picks the offer
//! closest to the *nearest* single student, leaving the other two behind.
//!
//! Run with: `cargo run --example classroom`

use arbitrex::merge::scenario::Classroom;
use arbitrex::prelude::*;

fn main() {
    let class = Classroom::new();
    let sig = &class.sig;
    let psi = class.example_31_psi();
    let mu = &class.offer;

    println!("instructor's offer μ:  {}", mu.display(sig));
    println!("students' wishes ψ:    {}\n", psi.display(sig));

    // The odist table exactly as the paper computes it.
    let mut table = Table::new(["candidate I ∈ Mod(μ)", "odist(ψ, I)", "min_dist(ψ, I)"]);
    for i in mu.iter() {
        table.row([
            i.display(sig).to_string(),
            odist(&psi, i).unwrap().to_string(),
            min_dist(&psi, i).unwrap().to_string(),
        ]);
    }
    println!("{}", table.render());

    let fitted = OdistFitting.apply(&psi, mu);
    let revised = DalalRevision.apply(&psi, mu);
    println!(
        "model-fitting ψ ▷ μ  = {}   (teach both SQL and Datalog)",
        fitted.display(sig)
    );
    println!(
        "Dalal revision ψ ∘ μ = {}        (teach Datalog only)\n",
        revised.display(sig)
    );

    // Per-student satisfaction under each outcome.
    let students = [
        Source::new("wants SQL only", ModelSet::singleton(3, class.wishes[0])),
        Source::new(
            "wants Datalog only",
            ModelSet::singleton(3, class.wishes[1]),
        ),
        Source::new("wants S, D and Q", ModelSet::singleton(3, class.wishes[2])),
    ];
    let fitted_choice = fitted.as_singleton().expect("unique consensus");
    let revised_choice = revised.as_singleton().expect("unique revision");
    let mut sat = Table::new(["student", "distance to ▷ choice", "distance to ∘ choice"]);
    for s in &students {
        sat.row([
            s.name.clone(),
            arbitrex::merge::metrics::dissatisfaction(s, fitted_choice).to_string(),
            arbitrex::merge::metrics::dissatisfaction(s, revised_choice).to_string(),
        ]);
    }
    println!("{}", sat.render());
    println!(
        "worst-off student: fitting {} vs revision {} — the paper's point:",
        arbitrex::merge::metrics::max_dissatisfaction(&students, fitted_choice),
        arbitrex::merge::metrics::max_dissatisfaction(&students, revised_choice),
    );
    println!("under revision one student is very happy and two may drop the class;");
    println!("the fitted choice keeps every student within distance 1 of a wish.");
}
