//! Heterogeneous database merging (experiment E10) and the SAT backend at
//! scale (experiment E8's qualitative side).
//!
//! The paper's introduction names large heterogeneous databases — "merging
//! of large equally important sets of information" — as the promising
//! application area for arbitration. This example merges several
//! independently-authored fact bases over a shared schema and compares the
//! consensus quality of arbitration-style merges against folding revision
//! or update through the sources; then it runs Dalal revision through the
//! CDCL SAT backend on a 40-variable schema where `2^40` enumeration is
//! impossible.
//!
//! Run with: `cargo run --release --example heterogeneous_merge`

use arbitrex::core::satbackend::dalal_revision_sat;
use arbitrex::merge::metrics::{max_dissatisfaction, sum_dissatisfaction};
use arbitrex::merge::scenario::heterogeneous_databases;
use arbitrex::prelude::*;

fn main() {
    // --- Part 1: merge 5 databases over an 8-proposition schema. ---
    let n_vars = 8u32;
    let sources = heterogeneous_databases(5, n_vars, 4, 1993);
    let sig = Sig::with_anon_vars(n_vars as usize);

    println!(
        "merging {} databases over {} propositions:",
        sources.len(),
        n_vars
    );
    for s in &sources {
        println!("  {}: {} candidate worlds", s.name, s.models.len());
    }
    println!();

    let outcomes = [
        merge_egalitarian(&sources, None),
        merge_majority(&sources, None),
        merge_weighted_arbitration(&sources),
        merge_fold_arbitration(&sources),
        merge_fold_revision(&sources),
        merge_fold_update(&sources),
    ];
    let mut table = Table::new([
        "strategy",
        "|consensus|",
        "worst source",
        "Σ dissatisfaction",
    ]);
    for out in &outcomes {
        let best = out
            .consensus
            .iter()
            .map(|i| {
                (
                    max_dissatisfaction(&sources, i),
                    sum_dissatisfaction(&sources, i),
                )
            })
            .min();
        let (worst, total) = match best {
            Some((m, s)) => (m.to_string(), s.to_string()),
            None => ("-".into(), "-".into()),
        };
        table.row([
            out.strategy.to_string(),
            out.consensus.len().to_string(),
            worst,
            total,
        ]);
    }
    println!("{}", table.render());
    println!("shape to expect: egalitarian minimizes the worst-source column;");
    println!("majority minimizes the Σ column; weighted arbitration minimizes the");
    println!("related per-model Σ (each claimed world is a voice, so sprawling");
    println!("sources pull harder); the folds are dominated on both objectives.\n");

    // --- Part 2: the SAT backend beyond enumeration reach. ---
    let wide = 40u32;
    let mut wide_sig = Sig::with_anon_vars(wide as usize);
    // A "database" asserting a long conjunction of facts...
    let psi_text = (0..wide)
        .map(|i| {
            if i % 3 == 0 {
                format!("!v{i}")
            } else {
                format!("v{i}")
            }
        })
        .collect::<Vec<_>>()
        .join(" & ");
    let psi = parse(&mut wide_sig, &psi_text).unwrap();
    // ...revised by an integrity constraint that contradicts a few facts.
    let mu = parse(&mut wide_sig, "v0 & v3 & (v1 -> v6) & !v7").unwrap();
    let result = dalal_revision_sat(&psi, &mu, wide, 64).expect("within model limit");
    println!(
        "SAT-backed Dalal revision over {wide} variables: minimal distance {:?}, {} optimal model(s)",
        result.distance,
        result.models.len()
    );
    let m = result.models.iter().next().unwrap();
    println!(
        "first optimal model flips exactly the contradicted facts: v0={} v3={} v7={}",
        m.get(Var(0)),
        m.get(Var(3)),
        m.get(Var(7))
    );
    let _ = sig;
}
