//! Iterated change dynamics (experiment E11): what happens when a
//! database keeps changing?
//!
//! Revision and update settle immediately — (R2)/(U2) force fixpoints —
//! but the paper's arbitration operator can *oscillate*: a theory holding
//! two symmetric camps flips forever between the camps and their
//! midpoints. This example shows both behaviours and sweeps the whole
//! 2-variable universe for the period statistics.
//!
//! Run with: `cargo run --example iterated_dynamics`

use arbitrex::core::iterated::{iterate_fixed_input, iterate_self_arbitration};
use arbitrex::prelude::*;

fn main() {
    let mut sig = Sig::new();
    sig.var("A");
    sig.var("B");

    println!("self-arbitration of ψ = {{{{A}}, {{B}}}} — wait, start from the camps:\n");
    let camps = ModelSet::new(2, [Interp(0b01), Interp(0b10)]);
    let out = iterate_fixed_input(&OdistFitting, &camps, &ModelSet::all(2), 10);
    for (step, state) in out.trajectory.iter().enumerate() {
        println!("  step {step}: {}", state.display(&sig));
    }
    match out.period() {
        Some(p) if p > 1 => println!("  -> period-{p} oscillation: the consensus of the camps"),
        _ => println!("  -> fixpoint"),
    }
    println!("     is the midpoints, and the consensus of the midpoints is the camps.\n");

    println!("revision by the same fixed input stabilizes at once:");
    let out = iterate_fixed_input(&DalalRevision, &camps, &ModelSet::all(2), 10);
    for (step, state) in out.trajectory.iter().enumerate() {
        println!("  step {step}: {}", state.display(&sig));
    }
    println!("  -> fixpoint (R2: once inside μ, revising by μ changes nothing)\n");

    println!("self-arbitration ψ ← ψ Δ ψ from the diagonal corners:");
    let corners = ModelSet::new(2, [Interp(0b00), Interp(0b11)]);
    let out = iterate_self_arbitration(&corners, 10);
    for (step, state) in out.trajectory.iter().enumerate() {
        println!("  step {step}: {}", state.display(&sig));
    }
    println!(
        "  -> period {:?}\n",
        out.period().expect("finite universe must cycle")
    );

    // Period census over the full 2-variable universe.
    let mut table = Table::new(["operator", "fixpoints", "2-cycles"]);
    let ops: Vec<&dyn ChangeOperator> = vec![
        &DalalRevision,
        &WinslettUpdate,
        &OdistFitting,
        &LexOdistFitting,
        &SumFitting,
    ];
    for op in ops {
        let (mut fix, mut cyc) = (0, 0);
        for pmask in 1u32..16 {
            for mmask in 1u32..16 {
                let psi = ModelSet::new(2, (0..4u64).filter(|b| pmask >> b & 1 == 1).map(Interp));
                let mu = ModelSet::new(2, (0..4u64).filter(|b| mmask >> b & 1 == 1).map(Interp));
                match iterate_fixed_input(op, &psi, &mu, 64).period() {
                    Some(1) => fix += 1,
                    Some(_) => cyc += 1,
                    None => {}
                }
            }
        }
        table.row([op.name().to_string(), fix.to_string(), cyc.to_string()]);
    }
    println!("period census over all 225 non-empty (ψ, μ) pairs at n = 2:");
    println!("{}", table.render());
    println!("only the tie-keeping odist operator oscillates; the lex repair and");
    println!("the classical operators always converge.");
}
