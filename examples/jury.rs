//! The jury scenario from the paper's introduction (experiment E10's
//! headline case).
//!
//! Nine witnesses of a brawl say A started the fight; two say it was B.
//! All witnesses are contemporary and equally credible individually — the
//! jury needs *arbitration*, not revision (no witness outranks another)
//! and not update (the world did not change between testimonies).
//!
//! Run with: `cargo run --example jury`

use arbitrex::merge::metrics::{max_dissatisfaction, sum_dissatisfaction};
use arbitrex::merge::scenario::jury;
use arbitrex::prelude::*;

fn main() {
    let mut sig = Sig::new();
    sig.var("A"); // "A started the fight"
    sig.var("B"); // "B started the fight"

    let sources = jury(9, 2);
    println!("9 witnesses claim A ∧ ¬B; 2 witnesses claim ¬A ∧ B\n");

    let strategies = [
        merge_weighted_arbitration(&sources),
        merge_majority(&sources, None),
        merge_egalitarian(&sources, None),
        merge_fold_arbitration(&sources),
        merge_fold_revision(&sources),
        merge_fold_update(&sources),
    ];
    let mut table = Table::new([
        "strategy",
        "verdict (consensus models)",
        "worst witness",
        "Σ weighted",
    ]);
    for out in &strategies {
        let (worst, total) = out
            .consensus
            .iter()
            .map(|i| {
                (
                    max_dissatisfaction(&sources, i),
                    sum_dissatisfaction(&sources, i),
                )
            })
            .min_by_key(|&(_, s)| s)
            .map(|(m, s)| (m.to_string(), s.to_string()))
            .unwrap_or(("-".into(), "-".into()));
        table.row([
            out.strategy.to_string(),
            out.consensus.display(&sig).to_string(),
            worst,
            total,
        ]);
    }
    println!("{}", table.render());

    println!("readings:");
    println!(" * weighted arbitration / majority follow the 9-2 majority: A did it;");
    println!(" * egalitarian arbitration ignores head-counts — with one voice per");
    println!("   side it offers the symmetric compromises (both or neither);");
    println!(" * folding revision simply believes whoever testified last —");
    println!("   exactly the asymmetry arbitration exists to avoid.");

    // Order-sensitivity of the folds versus commutativity of arbitration.
    let reversed: Vec<Source> = sources.iter().rev().cloned().collect();
    let fwd = merge_fold_revision(&sources).consensus;
    let rev = merge_fold_revision(&reversed).consensus;
    println!(
        "\nfold-revision forward vs reversed witness order: {} vs {}",
        fwd.display(&sig),
        rev.display(&sig)
    );
    let afwd = merge_weighted_arbitration(&sources).consensus;
    let arev = merge_weighted_arbitration(&reversed).consensus;
    println!(
        "weighted arbitration forward vs reversed:        {} vs {} (order-free)",
        afwd.display(&sig),
        arev.display(&sig)
    );
}
