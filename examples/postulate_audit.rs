//! The postulate audit (experiments E3 and E4): every operator in the
//! library against every axiom of all three classical systems, verified
//! exhaustively over the 2-variable universe, plus the Theorem 3.2
//! separation constructions and the (A8) erratum counterexample.
//!
//! Run with: `cargo run --release --example postulate_audit`

use arbitrex::core::postulates::harness::{
    satisfaction_matrix, separation_r123_u8, separation_r2_a8, separation_u2_u8_a8,
    SeparationVerdict,
};
use arbitrex::core::postulates::PostulateId;
use arbitrex::prelude::*;

fn verdict_str(v: SeparationVerdict) -> &'static str {
    match v {
        SeparationVerdict::ViolatesFirst => "gives up 1st group",
        SeparationVerdict::ViolatesSecond => "gives up 2nd group",
        SeparationVerdict::ViolatesBoth => "gives up both",
        SeparationVerdict::Neither => "survives (!!)",
    }
}

fn main() {
    let arbitration = Arbitration::default();
    let ops: Vec<&dyn ChangeOperator> = vec![
        &DalalRevision,
        &SatohRevision,
        &BorgidaRevision,
        &WeberRevision,
        &DrasticRevision,
        &WinslettUpdate,
        &ForbusUpdate,
        &OdistFitting,
        &LexOdistFitting,
        &arbitrex::core::fitting::GMaxFitting,
        &SumFitting,
        &arbitration,
    ];
    let ids = PostulateId::all();

    println!("operator × postulate satisfaction (exhaustive, 2-variable universe)");
    println!("✓ = satisfied on all 16^4 theory quadruples; ✗ = counterexample found\n");
    let rows = satisfaction_matrix(&ops, &ids);
    let mut table = Table::new(
        std::iter::once("operator".to_string()).chain(ids.iter().map(|p| p.name().to_string())),
    );
    for row in &rows {
        let cells: Vec<String> = std::iter::once(row.operator.clone())
            .chain(ids.iter().map(|&id| match row.passed(id) {
                Some(true) => "✓".to_string(),
                Some(false) => "✗".to_string(),
                None => "?".to_string(),
            }))
            .collect();
        table.row(cells);
    }
    println!("{}", table.render());

    println!("Theorem 3.2 separation constructions (each operator must give up a side):");
    let mut sep = Table::new(["operator", "R2 vs A8", "U2+U8 vs A8", "R1-R3 vs U8"]);
    for op in &ops {
        sep.row([
            op.name(),
            verdict_str(separation_r2_a8(*op, 2)),
            verdict_str(separation_u2_u8_a8(*op, 2)),
            verdict_str(separation_r123_u8(*op, 2)),
        ]);
    }
    println!("{}", sep.render());

    println!("reproduction finding — the (A8) erratum:");
    println!("the paper claims the odist operator satisfies (A1)-(A8); mechanically");
    println!("it satisfies (A1)-(A7) but NOT (A8). Minimal counterexample (1 var):");
    let psi1 = ModelSet::new(1, [Interp(0)]); // ¬a
    let psi2 = ModelSet::all(1); // ⊤
    let mu = ModelSet::all(1); // ⊤
    let r1 = OdistFitting.apply(&psi1, &mu);
    let r2 = OdistFitting.apply(&psi2, &mu);
    let ru = OdistFitting.apply(&psi1.union(&psi2), &mu);
    let mut sig = Sig::new();
    sig.var("a");
    println!("  ψ₁ = ¬a, ψ₂ = ⊤, μ = ⊤");
    println!("  ψ₁ ▷ μ = {}", r1.display(&sig));
    println!("  ψ₂ ▷ μ = {}", r2.display(&sig));
    println!(
        "  (ψ₁▷μ) ∧ (ψ₂▷μ) = {} (satisfiable)",
        r1.intersect(&r2).display(&sig)
    );
    println!(
        "  (ψ₁∨ψ₂) ▷ μ = {} — does NOT imply the intersection",
        ru.display(&sig)
    );
    println!();
    println!("repairs: lex-odist-fitting (deterministic tie-break, see the ✓ row");
    println!("above) and Section 4's weighted semantics, where ∨ sums weights:\n");

    // The weighted F-matrix (exhaustive n=1/w≤2 + randomized n=2).
    use arbitrex::core::postulates::weighted::{wsatisfaction_matrix, WPostulateId};
    use arbitrex::core::wfitting::{WeightedChangeOperator, WeightedRankFitting};
    let wmax = WeightedRankFitting::new("wmax-fitting", |psi: &WeightedKb, x: Interp| {
        psi.support()
            .map(|(j, w)| x.dist(j) as u128 * w as u128)
            .max()
            .unwrap_or(0)
    });
    let wops: Vec<&dyn WeightedChangeOperator> = vec![&WdistFitting, &wmax];
    let wrows = wsatisfaction_matrix(&wops, WPostulateId::all());
    let mut wtable = Table::new(
        std::iter::once("weighted operator".to_string())
            .chain(WPostulateId::all().iter().map(|p| p.name().to_string())),
    );
    for row in &wrows {
        wtable.row(
            std::iter::once(row.operator.clone())
                .chain(WPostulateId::all().iter().map(|&id| {
                    if row.passed(id) == Some(true) {
                        "✓".to_string()
                    } else {
                        "✗".to_string()
                    }
                }))
                .collect::<Vec<_>>(),
        );
    }
    println!("{}", wtable.render());
    println!("wdist (sum aggregation) passes all of F1-F8; a weighted max");
    println!("aggregator still fails F7/F8 — the repair is the sum, not the weights.");
}
