//! Quickstart: the three kinds of theory change on the paper's own opening
//! example.
//!
//! The introduction considers the database `{A, B, A ∧ B → C}` receiving
//! the new information `¬C`. Revision, update and arbitration resolve the
//! conflict under different assumptions about *who to trust*; this example
//! runs all three and prints what each believes afterwards.
//!
//! Run with: `cargo run --example quickstart`

use arbitrex::prelude::*;

fn main() {
    let mut sig = Sig::new();
    let psi = parse(&mut sig, "A & B & (A & B -> C)").unwrap();
    let mu = parse(&mut sig, "!C").unwrap();
    let n = sig.width();

    let psi_models = ModelSet::of_formula(&psi, n);
    let mu_models = ModelSet::of_formula(&mu, n);

    println!("knowledge base ψ = {}", psi.display(&sig));
    println!("  models: {}", psi_models.display(&sig));
    println!("new information μ = {}", mu.display(&sig));
    println!("  models: {}\n", mu_models.display(&sig));

    let mut table = Table::new(["operator", "kind", "resulting models"]);
    let classical: Vec<(&dyn ChangeOperator, &str)> = vec![
        (&DalalRevision, "revision (new info wins)"),
        (&SatohRevision, "revision (new info wins)"),
        (&WinslettUpdate, "update (world changed)"),
        (&ForbusUpdate, "update (world changed)"),
        (&OdistFitting, "model-fitting (peers)"),
    ];
    for (op, kind) in classical {
        let result = op.apply(&psi_models, &mu_models);
        table.row([op.name(), kind, &result.display(&sig).to_string()]);
    }
    // Arbitration treats ψ and μ as two voices and may leave μ's letter of
    // the law behind in favour of the best compromise interpretation.
    let arb = arbitrate(&psi_models, &mu_models);
    table.row([
        "arbitration",
        "consensus (ψ Δ μ)",
        &arb.display(&sig).to_string(),
    ]);
    println!("{}", table.render());

    // Arbitration is the commutative one.
    let flipped = arbitrate(&mu_models, &psi_models);
    println!(
        "arbitration is commutative: ψ Δ μ == μ Δ ψ  ->  {}",
        arb == flipped
    );
    let rev_flipped = DalalRevision.apply(&mu_models, &psi_models);
    println!(
        "revision is not:            ψ ∘ μ == μ ∘ ψ  ->  {}",
        DalalRevision.apply(&psi_models, &mu_models) == rev_flipped
    );
}
