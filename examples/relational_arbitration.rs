//! Relational arbitration (toward the paper's first open problem).
//!
//! Section 5 asks how to extend arbitration beyond propositional logic.
//! Over a finite domain the answer is grounding: this example builds a
//! small staffing database — people assigned to projects under the
//! integrity constraint "everyone is assigned somewhere" — and merges two
//! departments' conflicting records three ways: revision (HQ's records
//! win), update (the world changed), and arbitration (the departments are
//! peers).
//!
//! Run with: `cargo run --example relational_arbitration`

use arbitrex::logic::Formula;
use arbitrex::relational::{RelationalDb, Vocabulary};

fn main() {
    // Schema: On(person, project) over people {ann, bob}, projects
    // {db, web}. Constants share one domain; only On(person, project)
    // atoms are used.
    let mut v = Vocabulary::new();
    let ann = v.constant("ann");
    let bob = v.constant("bob");
    let dbp = v.constant("dbproj");
    let web = v.constant("webproj");
    let on = v.relation("On", 2);
    // Ground only the meaningful atoms: people × projects.
    for p in [ann, bob] {
        for proj in [dbp, web] {
            v.atom_var(on, &[p, proj]);
        }
    }
    // Integrity constraint: every person is on at least one project.
    let ic = Formula::and(
        [ann, bob].map(|p| Formula::or([dbp, web].map(|proj| v.atom(on, &[p, proj])))),
    );

    let dept_a = |v: &mut Vocabulary| {
        // Department A: Ann on dbproj only, Bob on webproj only.
        Formula::and([
            v.atom(on, &[ann, dbp]),
            Formula::not(v.atom(on, &[ann, web])),
            v.atom(on, &[bob, web]),
            Formula::not(v.atom(on, &[bob, dbp])),
        ])
    };
    let dept_b = |v: &mut Vocabulary| {
        // Department B disagrees about Ann: she's on webproj only.
        Formula::and([
            v.atom(on, &[ann, web]),
            Formula::not(v.atom(on, &[ann, dbp])),
            v.atom(on, &[bob, web]),
            Formula::not(v.atom(on, &[bob, dbp])),
        ])
    };

    let a_records = dept_a(&mut v);
    let b_records = dept_b(&mut v);
    println!("integrity constraint: everyone is assigned to some project");
    println!("department A: Ann@dbproj, Bob@webproj");
    println!("department B: Ann@webproj, Bob@webproj\n");

    // Revision: B's records are authoritative.
    let mut db = RelationalDb::new(v.clone(), ic.clone());
    db.assert_state(&a_records);
    db.revise(&b_records);
    println!("after REVISION by B (B outranks A):");
    for w in db.worlds_display() {
        println!("  possible world: {w}");
    }

    // Update: the world changed to match B.
    let mut db = RelationalDb::new(v.clone(), ic.clone());
    db.assert_state(&a_records);
    db.update(&b_records);
    println!("\nafter UPDATE by B (assignments actually changed):");
    for w in db.worlds_display() {
        println!("  possible world: {w}");
    }

    // Arbitration: the departments are peers.
    let mut db = RelationalDb::new(v.clone(), ic.clone());
    db.assert_state(&a_records);
    db.arbitrate(&b_records);
    println!("\nafter ARBITRATION with B (equal voices):");
    for w in db.worlds_display() {
        println!("  possible world: {w}");
    }
    println!(
        "\ncertain facts under arbitration: {:?}",
        db.certain_facts_display()
    );
    println!("(both departments agree Bob is on webproj; for Ann the consensus is");
    println!("the compromise 'on both projects' — each department's record is off");
    println!("by exactly one fact, instead of one department being overruled.)");
}
