//! Example 4.1 of the paper plus the majority-crossover sweep
//! (experiments E2 and E9).
//!
//! Same classroom, but now 35 students: 10 want SQL only, 20 Datalog only,
//! 5 want all three. Weighted arbitration tries to satisfy the *majority*
//! instead of the worst-off individual, and the outcome flips from
//! "teach both" to "teach Datalog only". The sweep then varies the size of
//! the Datalog-only block to find exactly where the flip happens.
//!
//! Run with: `cargo run --example weighted_classroom`

use arbitrex::merge::scenario::{Classroom, D, S};
use arbitrex::prelude::*;
use arbitrex_logic::Interp;

fn main() {
    let class = Classroom::new();
    let sig = &class.sig;
    let psi = class.example_41_psi();
    let mu = class.offer_weighted();

    println!(
        "instructor's offer μ̃ (weight 1 each): {}",
        class.offer.display(sig)
    );
    println!("class ψ̃: 10 × {{S}}, 20 × {{D}}, 5 × {{S,D,Q}}\n");

    // The wdist table exactly as the paper computes it (30 vs 35).
    let mut table = Table::new(["candidate I", "wdist(ψ̃, I)"]);
    for (i, _) in mu.support() {
        table.row([
            i.display(sig).to_string(),
            wdist(&psi, i).unwrap().to_string(),
        ]);
    }
    println!("{}", table.render());

    let result = WdistFitting.apply(&psi, &mu);
    println!(
        "weighted fitting ψ̃ ▷ μ̃ supports {}  (teach Datalog only)\n",
        result.support_set().display(sig)
    );

    // E9: sweep the Datalog-only block size with 10 SQL-only and 5
    // all-three students fixed. Where does the outcome flip from the
    // compromise {S,D} to the majority choice {D}?
    println!("crossover sweep: #Datalog-only students vs chosen offer");
    let mut sweep = Table::new([
        "#datalog-only",
        "wdist({D})",
        "wdist({S,D})",
        "chosen offer",
    ]);
    let mut flip_at = None;
    for k in 0..=30u64 {
        let psi_k = class.class_of(10, k, 5);
        let w_d = wdist(&psi_k, Interp(D)).unwrap();
        let w_sd = wdist(&psi_k, Interp(S | D)).unwrap();
        let outcome = WdistFitting.apply(&psi_k, &mu).support_set();
        let label = outcome.display(sig).to_string();
        if flip_at.is_none() && outcome.as_singleton() == Some(Interp(D)) {
            flip_at = Some(k);
        }
        if k % 3 == 0 || Some(k) == flip_at {
            sweep.row([k.to_string(), w_d.to_string(), w_sd.to_string(), label]);
        }
    }
    println!("{}", sweep.render());
    match flip_at {
        Some(k) => println!(
            "the majority takes over at {k} Datalog-only students \
             (wdist({{D}}) drops below wdist({{S,D}}))"
        ),
        None => println!("no flip within the sweep range"),
    }
}
