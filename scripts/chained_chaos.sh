#!/usr/bin/env bash
# Chained-chaos storm for per-shard replica chains: N cycles of "storm
# routed commits through the cluster, SIGKILL the chain *head*
# mid-storm, let the failure detector promote the enlisted replica,
# revive the deposed head on its old port, let the new head
# Δ-reconcile and re-enlist it, verify". Unlike shard_storm.sh there is
# no operator choreography — no leave, no explicit promote, no manual
# reconcile; the detector does everything. Every cycle asserts:
#
#   * every acknowledged commit is still readable through the router
#     with its exact formula after the failover — zero acked loss,
#     including anything the dead head acked but never shipped (the
#     revival Δ-reconcile must bring it back);
#   * after the revived head resyncs, every copy of an acked KB across
#     the whole cluster carries byte-identical (seq, hash) digests;
#   * the chain's replication epoch ticked up by exactly one per
#     failover and both chain members agree on it.
#
# The storm writer runs through the whole cycle, following 307
# redirects (curl -L re-POSTs on 307) and shrugging off fences and the
# detection blackout — only `"seq":1` acks enter the oracle.
#
#   cargo build --release
#   scripts/chained_chaos.sh [path-to-arbx] [cycles]
set -euo pipefail

ARBX="${1:-target/release/arbx}"
CYCLES="${2:-3}"
[ -x "$ARBX" ] || { echo "missing binary: $ARBX (cargo build --release first)"; exit 1; }

. "$(dirname "$0")/storm_lib.sh"

WORK="$(mktemp -d)"
ACKED="$WORK/acked.txt"
: >"$ACKED"
STORM_RM=("$WORK")
trap storm_cleanup EXIT

# A chained member: 3 workers, fast failure detector so a cycle fits
# in CI time (probe 100 ms, suspect after 2 — a 200 ms detection
# floor, same envelope E21 measures).
chain_server() { # chain_server <logfile> <extra-args...>
  local LOG="$1"; shift
  start_server "$LOG" --addr 127.0.0.1:0 --threads 3 --snapshot-every 32 \
    --shard-ring auto --probe-interval-ms 100 --suspect-after 2 "$@"
}

# wait_for <timeout-s> <label> <check-fn...>: poll until the check
# passes or the deadline fails the run.
wait_for() {
  local DEADLINE=$(( $(date +%s) + $1 )) LABEL="$2"; shift 2
  until "$@"; do
    [ "$(date +%s)" -lt "$DEADLINE" ] || fail "timed out waiting for $LABEL"
    sleep 0.1
  done
}

role_of() { # role_of <addr> -> primary|replica|""
  json_str role "$(curl -s --max-time 5 "http://$1/v1/replication/status" 2>/dev/null)"
}

is_primary() { [ "$(role_of "$1")" = "primary" ]; }
is_replica_at_epoch() { # <addr> <epoch>
  local OUT
  OUT=$(curl -s --max-time 5 "http://$1/v1/replication/status" 2>/dev/null) || return 1
  [ "$(json_str role "$OUT")" = "replica" ] && [ "$(json_num epoch "$OUT")" = "$2" ]
}

chain_digests_agree() { # <addr-a> <addr-b>
  local A B
  A=$(listing "$1" | sort) || return 1
  B=$(listing "$2" | sort) || return 1
  [ -n "$A" ] && [ "$A" = "$B" ]
}

# Topology: a coordinator/voter (never killed, the client entry point
# and the quorum's tie-breaker) plus one chain of two. The chain's
# head and tail swap roles every cycle — each failover's survivor is
# the next cycle's victim.
chain_server "$WORK/voter.log" --state-dir "$WORK/voter"
VOTER_ADDR="$ADDR"
chain_server "$WORK/a.log" --state-dir "$WORK/a"
A_PID="$SERVER_PID"; A_ADDR="$ADDR"
OUT=$(cluster_post "$VOTER_ADDR" join "$A_ADDR") || fail "seed join failed"
chain_server "$WORK/b.log" --state-dir "$WORK/b" --replicate-from "$A_ADDR"
B_PID="$SERVER_PID"; B_ADDR="$ADDR"
OUT=$(curl -sf --max-time 30 \
  -d "{\"host\": \"$A_ADDR\", \"addr\": \"$B_ADDR\"}" \
  "http://$VOTER_ADDR/v1/cluster/enlist") || fail "seed enlist failed"
case "$OUT" in
  *'"enlisted":true'*|*'"enlisted": true'*) ;;
  *) fail "seed enlist refused" "$OUT" ;;
esac

HEAD_PID="$A_PID"; HEAD_ADDR="$A_ADDR"; HEAD_DIR="$WORK/a"; HEAD_LOG_TAG="a"
TAIL_PID="$B_PID"; TAIL_ADDR="$B_ADDR"; TAIL_DIR="$WORK/b"; TAIL_LOG_TAG="b"
EPOCH=1

for CYCLE in $(seq 1 "$CYCLES"); do
  # Storm writer: routed puts at the voter for the whole cycle. -L
  # follows the 307 to the chain head; the detection blackout and any
  # post-rotation fence simply do not ack.
  rm -f "$WORK/stop"
  (
    J=0
    while [ ! -f "$WORK/stop" ]; do
      NAME="f${CYCLE}_${J}"
      FORMULA="$(oracle_formula "$J")"
      BODY="{\"action\": \"put\", \"formula\": \"$FORMULA\"}"
      OUT=$(curl -sL --max-time 2 -d "$BODY" "http://$VOTER_ADDR/v1/kb/$NAME" 2>/dev/null) || OUT=""
      case "$OUT" in
        *'"seq":1'*|*'"seq": 1'*) echo "$NAME $FORMULA" >>"$ACKED" ;;
      esac
      J=$(( J + 1 ))
      sleep 0.01
    done
  ) &
  WRITER_PID=$!
  PIDS+=("$WRITER_PID")
  sleep 0.8

  # Kill-9 the chain head mid-storm: no drain, no shutdown snapshot,
  # no operator. Its state dir (holding anything acked but unshipped)
  # is the only survivor.
  kill -9 "$HEAD_PID" 2>/dev/null || true
  wait "$HEAD_PID" 2>/dev/null || true

  # The tail must suspect, confirm with the voter, and self-promote.
  wait_for 30 "automatic promotion of $TAIL_ADDR" is_primary "$TAIL_ADDR"
  EPOCH=$(( EPOCH + 1 ))
  OUT=$(curl -sf --max-time 5 "http://$TAIL_ADDR/v1/replication/status")
  GOT=$(json_num epoch "$OUT")
  [ "$GOT" = "$EPOCH" ] \
    || fail "cycle $CYCLE: promotion epoch $GOT, want $EPOCH" "$OUT"

  # Revive the deposed head on its OLD port from its surviving state
  # dir: the new head is probing that address, and on revival it must
  # Δ-reconcile the dead head's unshipped tail, re-enlist it, and the
  # rejoiner must demote and resync to the new epoch.
  chain_server "$WORK/${HEAD_LOG_TAG}-c${CYCLE}.log" --state-dir "$HEAD_DIR" \
    --addr "$HEAD_ADDR"
  REVIVED_PID="$SERVER_PID"
  [ "$ADDR" = "$HEAD_ADDR" ] || fail "cycle $CYCLE: revival rebound to $ADDR, want $HEAD_ADDR"
  wait_for 45 "revived $HEAD_ADDR to demote at epoch $EPOCH" \
    is_replica_at_epoch "$HEAD_ADDR" "$EPOCH"

  sleep 0.5
  touch "$WORK/stop"
  wait "$WRITER_PID" 2>/dev/null || true

  # Byte-identical digests across the chain after reconcile + resync.
  wait_for 30 "chain digests to converge" \
    chain_digests_agree "$HEAD_ADDR" "$TAIL_ADDR"

  # Zero acked loss: every acknowledged commit — including this
  # cycle's, committed right up to the kill — is readable through the
  # router with its exact formula, and every copy anywhere in the
  # cluster agrees byte-for-byte.
  listing "$VOTER_ADDR" >"$WORK/digest0" || fail "cycle $CYCLE: no listing from voter"
  listing "$HEAD_ADDR" >"$WORK/digest1" || fail "cycle $CYCLE: no listing from revived head"
  listing "$TAIL_ADDR" >"$WORK/digest2" || fail "cycle $CYCLE: no listing from new head"
  CYCLE_ACKS=0
  while read -r NAME FORMULA; do
    case "$NAME" in "f${CYCLE}_"*) ;; *) continue ;; esac
    CYCLE_ACKS=$(( CYCLE_ACKS + 1 ))
    COPIES=$(grep -h "^$NAME " "$WORK"/digest[0-2] | sort -u | wc -l)
    HOLDERS=$(grep -h "^$NAME " "$WORK"/digest[0-2] | wc -l)
    [ "$HOLDERS" -ge 1 ] || fail "cycle $CYCLE: acked KB \`$NAME\` is on no member"
    [ "$COPIES" = "1" ] \
      || fail "cycle $CYCLE: \`$NAME\` has $COPIES divergent digests across its copies" \
        "$(grep -h "^$NAME " "$WORK"/digest[0-2])"
    verify_kb "$VOTER_ADDR" "$NAME" "$FORMULA" "cycle $CYCLE"
  done <"$ACKED"
  [ "$CYCLE_ACKS" -gt 0 ] || fail "cycle $CYCLE: no commit was ever acknowledged"
  echo "cycle $CYCLE: $CYCLE_ACKS acks survived kill-9 of head $HEAD_ADDR, epoch now $EPOCH"

  # Swap: the promoted tail is the next cycle's victim, the revived
  # head its successor.
  OLD_HEAD_PID="$REVIVED_PID"; OLD_HEAD_ADDR="$HEAD_ADDR"
  OLD_HEAD_DIR="$HEAD_DIR"; OLD_HEAD_TAG="$HEAD_LOG_TAG"
  HEAD_PID="$TAIL_PID"; HEAD_ADDR="$TAIL_ADDR"; HEAD_DIR="$TAIL_DIR"; HEAD_LOG_TAG="$TAIL_LOG_TAG"
  TAIL_PID="$OLD_HEAD_PID"; TAIL_ADDR="$OLD_HEAD_ADDR"; TAIL_DIR="$OLD_HEAD_DIR"; TAIL_LOG_TAG="$OLD_HEAD_TAG"
done

# Belt and braces: the full acked history is still served through the
# router, content intact.
TOTAL=0
while read -r NAME FORMULA; do
  TOTAL=$(( TOTAL + 1 ))
  verify_kb "$VOTER_ADDR" "$NAME" "$FORMULA" "final sweep"
done <"$ACKED"
echo "chained chaos: $CYCLES kill-9 head failovers survived, $TOTAL acked commits intact, final epoch $EPOCH"
