#!/usr/bin/env bash
# Observability doc audit: every name the server emits over /metrics —
# counter, timer, latency histogram, gauge — must appear (backticked) in
# OBSERVABILITY.md. Starts the release server on an ephemeral port,
# fetches one /metrics document, and diffs the emitted names against the
# doc. Fails listing every emitted-but-undocumented name; also warns on
# doc-table entries that are no longer emitted (stale rows), without
# failing, since prose may legitimately mention retired names.
#
#   cargo build --release
#   scripts/check_observability.sh [path-to-arbx]
set -euo pipefail

ARBX="${1:-target/release/arbx}"
DOC="OBSERVABILITY.md"
[ -x "$ARBX" ] || { echo "missing binary: $ARBX (cargo build --release first)"; exit 1; }
[ -f "$DOC" ] || { echo "missing $DOC (run from the repo root)"; exit 1; }

LOG="$(mktemp)"
METRICS="$(mktemp)"
cleanup() {
  [ -n "${SERVER_PID:-}" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -f "$LOG" "$METRICS"
}
trap cleanup EXIT

"$ARBX" serve --addr 127.0.0.1:0 --threads 1 >"$LOG" &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's/^arbitrex-server listening on \([0-9.:]*\) .*$/\1/p' "$LOG" | head -n1)"
  [ -n "$ADDR" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: server exited before listening"; cat "$LOG"; exit 1
  fi
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: never saw the listening line"; cat "$LOG"; exit 1; }

curl -fsS "http://$ADDR/metrics" >"$METRICS"
kill "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# Emitted names: section counters (timers collapse from <name>_ns +
# <name>_spans to their base name, which is how the doc tables list
# them), latency histogram names, and gauge names.
EMITTED="$(python3 - "$METRICS" <<'PY'
import json, sys

doc = json.load(open(sys.argv[1]))
names = set()
for section, body in doc["telemetry"].items():
    if not isinstance(body, dict):
        continue  # telemetry_enabled
    for k in body:
        if k.endswith("_ns") and k[: -len("_ns")] + "_spans" in body:
            names.add(k[: -len("_ns")])
        elif k.endswith("_spans") and k[: -len("_spans")] + "_ns" in body:
            pass
        else:
            names.add(k)
for h in doc["latency_ns"]:
    names.add(h)
for g in doc["gauges"]:
    names.add(g)
print("\n".join(sorted(names)))
PY
)"
[ -n "$EMITTED" ] || { echo "FAIL: parsed no names out of /metrics"; cat "$METRICS"; exit 1; }

FAILED=0
TOTAL=0
while IFS= read -r name; do
  TOTAL=$((TOTAL + 1))
  if ! grep -q "\`$name\`" "$DOC"; then
    echo "UNDOCUMENTED: \`$name\` is emitted by /metrics but has no $DOC entry"
    FAILED=1
  fi
done <<<"$EMITTED"

# Reverse direction: table rows documenting names nobody emits anymore.
DOCUMENTED="$(sed -n 's/^| `\([a-z_0-9]*\)` |.*/\1/p' "$DOC" | sort -u)"
while IFS= read -r name; do
  [ -n "$name" ] || continue
  if ! grep -qx "$name" <<<"$EMITTED"; then
    echo "warning: $DOC documents \`$name\` but /metrics does not emit it"
  fi
done <<<"$DOCUMENTED"

if [ "$FAILED" -ne 0 ]; then
  echo "FAIL: /metrics emits names missing from $DOC (see above)"
  exit 1
fi
echo "observability check: all $TOTAL emitted names documented in $DOC"
