#!/usr/bin/env bash
# Crash-loop the durable KB store: N cycles of "start the release server
# on a persistent state directory, storm commits at it, SIGKILL it
# mid-storm, restart, verify". The oracle is sequential: every cycle
# checks that the recovered seq covers every acknowledged commit and
# that the stored formula is the one that seq acknowledged. CI runs this
# after the release build; run it locally the same way:
#
#   cargo build --release
#   scripts/crash_loop.sh [path-to-arbx] [cycles]
set -euo pipefail

ARBX="${1:-target/release/arbx}"
CYCLES="${2:-5}"
[ -x "$ARBX" ] || { echo "missing binary: $ARBX (cargo build --release first)"; exit 1; }

. "$(dirname "$0")/storm_lib.sh"

STATE="$(mktemp -d)"
LOG="$(mktemp)"
STORM_RM=("$STATE" "$LOG")
trap storm_cleanup EXIT

expect() { # expect <label> <needle> <haystack>
  case "$3" in *"$2"*) ;; *) fail "$1 (wanted \`$2\`)" "got: $3" "log: $(cat "$LOG")" ;; esac
}

boot() {
  start_server "$LOG" --addr 127.0.0.1:0 --threads 2 \
    --state-dir "$STATE" --snapshot-every 16
}

# The sequential oracle: the i-th acknowledged commit stores formula
# "A & B" when i is even, "A | B" when i is odd, so the recovered state
# is fully determined by its seq. (Unlike the storms' per-name cube
# oracle, this one keys on the single KB's seq.)
seq_formula() { # seq_formula <seq>
  if [ $(( $1 % 2 )) -eq 0 ]; then echo "A & B"; else echo "A | B"; fi
}

LAST_ACKED=0
for CYCLE in $(seq 1 "$CYCLES"); do
  boot

  # Verify recovery against the oracle before storming more commits.
  if [ "$LAST_ACKED" -gt 0 ]; then
    OUT=$(curl -sf "http://$ADDR/v1/kb/loop")
    SEQ=$(json_num seq "$OUT")
    [ -n "$SEQ" ] || fail "cycle $CYCLE: no seq in recovered KB" "$OUT"
    if [ "$SEQ" -lt "$LAST_ACKED" ] || [ "$SEQ" -gt $(( LAST_ACKED + 1 )) ]; then
      fail "cycle $CYCLE: recovered seq $SEQ vs last acked $LAST_ACKED" "$OUT"
    fi
    expect "cycle $CYCLE: oracle formula for seq $SEQ" "$(seq_formula "$SEQ")" "$OUT"
    LAST_ACKED="$SEQ"
  fi

  # Commit storm with a kill timer racing it: SIGKILL, never SIGTERM —
  # no drain, no shutdown snapshot, the WAL alone must carry the state.
  ( sleep 0.7; kill -9 "$SERVER_PID" 2>/dev/null ) &
  KILLER_PID=$!
  I="$LAST_ACKED"
  while :; do
    NEXT=$(( I + 1 ))
    BODY="{\"action\": \"put\", \"formula\": \"$(seq_formula "$NEXT")\", \"if_seq\": $I}"
    OUT=$(curl -s --max-time 5 -d "$BODY" "http://$ADDR/v1/kb/loop" 2>/dev/null) || break
    case "$OUT" in
      *'"seq": '"$NEXT"*|*'"seq":'"$NEXT"*) I="$NEXT" ;;
      '') break ;;
      *) fail "cycle $CYCLE: unexpected storm response" "$OUT" ;;
    esac
  done
  LAST_ACKED="$I"
  wait "$KILLER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
  [ "$LAST_ACKED" -gt 0 ] || fail "cycle $CYCLE: no commit was ever acknowledged" "(none)"
  echo "cycle $CYCLE: killed at seq $LAST_ACKED"
done

# Final verification pass: recover once more and check the oracle.
boot
OUT=$(curl -sf "http://$ADDR/v1/kb/loop")
SEQ=$(json_num seq "$OUT")
if [ "$SEQ" -lt "$LAST_ACKED" ] || [ "$SEQ" -gt $(( LAST_ACKED + 1 )) ]; then
  fail "final: recovered seq $SEQ vs last acked $LAST_ACKED" "$OUT"
fi
expect "final oracle formula for seq $SEQ" "$(seq_formula "$SEQ")" "$OUT"
expect "recovery line printed" "arbitrex-server recovered" "$(cat "$LOG")"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "final SIGTERM should exit 0" "exit status $?"
SERVER_PID=""

echo "crash loop: $CYCLES kill-9 cycles survived, final seq $SEQ"
