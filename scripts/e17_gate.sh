#!/usr/bin/env bash
# CI gate for the event-loop server: run E17 in quick mode and fail if
# pipelined throughput regresses below the *recorded* thread-pool
# baseline (BENCH_PR4.json, threads=4, warm cache-on pass — the engine
# PR 6 replaced). The full E17 claims >=5x on this box; the gate only
# demands "never slower than what we deleted", so it stays green on
# slow shared CI runners while still catching real event-loop
# regressions (a lost pipelining path, a serialized dispatch, a busy
# poll).
#
#   cargo build --release
#   scripts/e17_gate.sh [path-to-experiments]
set -euo pipefail

EXPERIMENTS="${1:-target/release/experiments}"
[ -x "$EXPERIMENTS" ] || { echo "missing binary: $EXPERIMENTS (cargo build --release first)"; exit 1; }
[ -f BENCH_PR4.json ] || { echo "missing BENCH_PR4.json (run from the repo root)"; exit 1; }

# The recorded thread-pool rps at threads=4, cache on, warm pass.
BASELINE=$(grep -o '{"threads": 4, "cache": true, "pass": 2[^}]*}' BENCH_PR4.json \
  | grep -o '"rps": [0-9]*' | grep -o '[0-9]*')
[ -n "$BASELINE" ] || { echo "FAIL: could not parse the threads=4 warm baseline from BENCH_PR4.json"; exit 1; }

OUT=$(ARBX_E17_QUICK=1 "$EXPERIMENTS" e17)
LINE=$(printf '%s\n' "$OUT" | grep '^e17-quick ' | head -n1) || true
[ -n "$LINE" ] || { echo "FAIL: no e17-quick line in experiments output"; printf '%s\n' "$OUT"; exit 1; }
echo "$LINE (thread-pool baseline: $BASELINE rps)"

PIPELINED=$(printf '%s\n' "$LINE" | sed -n 's/.*pipelined_rps=\([0-9]*\).*/\1/p')
[ -n "$PIPELINED" ] || { echo "FAIL: could not parse pipelined_rps from: $LINE"; exit 1; }

if [ "$PIPELINED" -lt "$BASELINE" ]; then
  echo "FAIL: event-loop pipelined throughput ($PIPELINED rps) fell below the recorded thread-pool baseline ($BASELINE rps)"
  exit 1
fi
echo "e17 gate: pipelined $PIPELINED rps >= thread-pool baseline $BASELINE rps"
