#!/usr/bin/env bash
# CI gate for the compiled-KB tier: run E18 in quick mode and fail if
# either claim breaks.
#
#   1. Hot-KB speedup — the acceptance criterion: compiled (BDD) serving
#      throughput must be >= 2x the kernel path at equal workers on the
#      width-14 pool. Both legs run in the same process on the same
#      machine, so runner speed cancels out of the ratio.
#   2. Hot-path non-regression — the tier sits on the cache-miss path,
#      so warm-cache serving (the E17 heavy pool, cache on) must not
#      collapse vs the *recorded* BENCH_PR6 pipelined baseline. The
#      recorded number came from a fast box; the gate allows 2x slack
#      for slow shared CI runners while still catching a real
#      regression (a tier check on the hit path would show up as far
#      more than 2x).
#
#   cargo build --release
#   scripts/e18_gate.sh [path-to-experiments]
set -euo pipefail

EXPERIMENTS="${1:-target/release/experiments}"
[ -x "$EXPERIMENTS" ] || { echo "missing binary: $EXPERIMENTS (cargo build --release first)"; exit 1; }
[ -f BENCH_PR6.json ] || { echo "missing BENCH_PR6.json (run from the repo root)"; exit 1; }

# The recorded event-loop rps: heavy pool, threads=4, pipelined.
BASELINE=$(grep -o '{"workload": "heavy", "threads": 4, "mode": "pipelined"[^}]*}' BENCH_PR6.json \
  | grep -o '"rps": [0-9]*' | grep -o '[0-9]*')
[ -n "$BASELINE" ] || { echo "FAIL: could not parse the heavy/threads=4 pipelined baseline from BENCH_PR6.json"; exit 1; }

OUT=$(ARBX_E18_QUICK=1 "$EXPERIMENTS" e18)
LINE=$(printf '%s\n' "$OUT" | grep '^e18-quick ' | head -n1) || true
[ -n "$LINE" ] || { echo "FAIL: no e18-quick line in experiments output"; printf '%s\n' "$OUT"; exit 1; }
echo "$LINE (recorded hot-serving baseline: $BASELINE rps)"

BDD=$(printf '%s\n' "$LINE" | sed -n 's/.*bdd_rps=\([0-9]*\).*/\1/p')
KERNEL=$(printf '%s\n' "$LINE" | sed -n 's/.*kernel_rps=\([0-9]*\).*/\1/p')
HOT=$(printf '%s\n' "$LINE" | sed -n 's/.*hot_rps=\([0-9]*\).*/\1/p')
[ -n "$BDD" ] && [ -n "$KERNEL" ] && [ -n "$HOT" ] || { echo "FAIL: could not parse rps fields from: $LINE"; exit 1; }
[ "$KERNEL" -gt 0 ] || { echo "FAIL: kernel leg measured 0 rps"; exit 1; }

if [ "$BDD" -lt $((KERNEL * 2)) ]; then
  echo "FAIL: compiled hot-KB throughput ($BDD rps) is below 2x the kernel path ($KERNEL rps) at equal workers"
  exit 1
fi
echo "e18 gate: compiled $BDD rps >= 2x kernel $KERNEL rps"

if [ $((HOT * 2)) -lt "$BASELINE" ]; then
  echo "FAIL: warm-cache serving with the tier enabled ($HOT rps) fell below half the recorded BENCH_PR6 baseline ($BASELINE rps)"
  exit 1
fi
echo "e18 gate: warm-cache control $HOT rps holds the recorded baseline $BASELINE rps (2x slack)"
