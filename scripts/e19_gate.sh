#!/usr/bin/env bash
# CI gate for the replication tier: run E19 in quick mode and fail if
# replication lag or failover time leaves its sanity envelope. The full
# E19 on this box sees ~100us idle lag p50 and sub-millisecond
# failover; the gate only demands "the machinery is not broken" bounds
# (long-poll shipping degraded to timer-cadence polling, a promote that
# stalls, a min-seq read that never unblocks), so it stays green on
# slow shared CI runners while catching real regressions.
#
#   cargo build --release
#   scripts/e19_gate.sh [path-to-experiments]
set -euo pipefail

EXPERIMENTS="${1:-target/release/experiments}"
[ -x "$EXPERIMENTS" ] || { echo "missing binary: $EXPERIMENTS (cargo build --release first)"; exit 1; }

# Generous sanity ceilings (microseconds): idle shipping must beat
# timer-cadence polling by a wide margin; failover is a promote plus
# one read on an already-caught-up replica.
LAG_P99_CEILING_US=500000       # 0.5 s
FAILOVER_P99_CEILING_US=2000000 # 2 s

OUT=$(ARBX_E19_QUICK=1 "$EXPERIMENTS" e19)
LINE=$(printf '%s\n' "$OUT" | grep '^e19-quick ' | head -n1) || true
[ -n "$LINE" ] || { echo "FAIL: no e19-quick line in experiments output"; printf '%s\n' "$OUT"; exit 1; }
echo "$LINE"

field() { printf '%s\n' "$LINE" | sed -n "s/.*$1=\([0-9]*\).*/\1/p"; }
LAG_P99=$(field lag_p99_us)
FAILOVER_P99=$(field failover_p99_us)
[ -n "$LAG_P99" ] && [ -n "$FAILOVER_P99" ] \
  || { echo "FAIL: could not parse lag/failover from: $LINE"; exit 1; }

if [ "$LAG_P99" -gt "$LAG_P99_CEILING_US" ]; then
  echo "FAIL: replication lag p99 (${LAG_P99}us) exceeds the ${LAG_P99_CEILING_US}us sanity ceiling"
  exit 1
fi
if [ "$FAILOVER_P99" -gt "$FAILOVER_P99_CEILING_US" ]; then
  echo "FAIL: failover p99 (${FAILOVER_P99}us) exceeds the ${FAILOVER_P99_CEILING_US}us sanity ceiling"
  exit 1
fi
echo "e19 gate: lag p99 ${LAG_P99}us <= ${LAG_P99_CEILING_US}us, failover p99 ${FAILOVER_P99}us <= ${FAILOVER_P99_CEILING_US}us"
