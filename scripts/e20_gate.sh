#!/usr/bin/env bash
# CI gate for the sharding tier: run E20 in quick mode and fail if
# multi-primary scaling or the handoff blackout leaves its envelope.
# The full E20 on this box sees ~3x aggregate commit throughput at 3
# primaries and a single-digit-millisecond handoff blackout; the gate
# demands the PR's acceptance floor on scaling (3 primaries >= 2.2x one
# primary on a disjoint-KB workload) and only a "the fence is not
# stuck" sanity ceiling on the blackout, so it stays green on slow
# shared CI runners while catching real regressions (routing overhead
# eating the scale-out, a handoff that never unfences).
#
#   cargo build --release
#   scripts/e20_gate.sh [path-to-experiments]
set -euo pipefail

EXPERIMENTS="${1:-target/release/experiments}"
[ -x "$EXPERIMENTS" ] || { echo "missing binary: $EXPERIMENTS (cargo build --release first)"; exit 1; }

SCALE_FLOOR_X100=220     # 3-primary aggregate >= 2.2x single primary
BLACKOUT_CEILING_MS=2000 # one join-triggered handoff, writer fenced

OUT=$(ARBX_E20_QUICK=1 "$EXPERIMENTS" e20)
LINE=$(printf '%s\n' "$OUT" | grep '^e20-quick ' | head -n1) || true
[ -n "$LINE" ] || { echo "FAIL: no e20-quick line in experiments output"; printf '%s\n' "$OUT"; exit 1; }
echo "$LINE"

field() { printf '%s\n' "$LINE" | sed -n "s/.*$1=\([0-9]*\).*/\1/p"; }
SCALE=$(field scale_x100)
BLACKOUT=$(field blackout_ms)
[ -n "$SCALE" ] && [ -n "$BLACKOUT" ] \
  || { echo "FAIL: could not parse scale/blackout from: $LINE"; exit 1; }

if [ "$SCALE" -lt "$SCALE_FLOOR_X100" ]; then
  echo "FAIL: 3-primary scaling (${SCALE}/100 x) is below the ${SCALE_FLOOR_X100}/100 x floor"
  exit 1
fi
if [ "$BLACKOUT" -gt "$BLACKOUT_CEILING_MS" ]; then
  echo "FAIL: handoff blackout (${BLACKOUT}ms) exceeds the ${BLACKOUT_CEILING_MS}ms sanity ceiling"
  exit 1
fi
echo "e20 gate: scaling ${SCALE}/100 x >= ${SCALE_FLOOR_X100}/100 x, blackout ${BLACKOUT}ms <= ${BLACKOUT_CEILING_MS}ms"
