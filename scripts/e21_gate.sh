#!/usr/bin/env bash
# CI gate for chain failover: run E21 in quick mode and fail if the
# detection + promotion write blackout leaves its envelope. The full
# E21 on this box measures a p50 blackout of ~140 ms and a p99 of
# ~205 ms against a 200 ms detection floor (probe 100 ms x
# suspect_after 2); the gate demands only a "failover actually
# converges at detector speed" ceiling — generous enough for slow
# shared CI runners, tight enough to catch a detector that stopped
# probing, a quorum that deadlocks, or a promotion that leaves the
# writer bouncing off fences.
#
#   cargo build --release
#   scripts/e21_gate.sh [path-to-experiments]
set -euo pipefail

EXPERIMENTS="${1:-target/release/experiments}"
[ -x "$EXPERIMENTS" ] || { echo "missing binary: $EXPERIMENTS (cargo build --release first)"; exit 1; }

P50_CEILING_MS=2000  # detection floor is 200 ms; 10x headroom for CI
P99_CEILING_MS=5000  # worst trial must still be detector-paced, not timeout-paced

OUT=$(ARBX_E21_QUICK=1 "$EXPERIMENTS" e21)
LINE=$(printf '%s\n' "$OUT" | grep '^e21-quick ' | head -n1) || true
[ -n "$LINE" ] || { echo "FAIL: no e21-quick line in experiments output"; printf '%s\n' "$OUT"; exit 1; }
echo "$LINE"

field() { printf '%s\n' "$LINE" | sed -n "s/.*$1=\([0-9]*\).*/\1/p"; }
P50=$(field blackout_p50_ms)
P99=$(field blackout_p99_ms)
[ -n "$P50" ] && [ -n "$P99" ] \
  || { echo "FAIL: could not parse blackout percentiles from: $LINE"; exit 1; }

if [ "$P50" -gt "$P50_CEILING_MS" ]; then
  echo "FAIL: blackout p50 (${P50}ms) exceeds the ${P50_CEILING_MS}ms ceiling"
  exit 1
fi
if [ "$P99" -gt "$P99_CEILING_MS" ]; then
  echo "FAIL: blackout p99 (${P99}ms) exceeds the ${P99_CEILING_MS}ms ceiling"
  exit 1
fi
echo "e21 gate: blackout p50 ${P50}ms <= ${P50_CEILING_MS}ms, p99 ${P99}ms <= ${P99_CEILING_MS}ms"
