#!/usr/bin/env bash
# Kill-9 promotion storm for the replication tier: N cycles of "storm
# commits at the primary, SIGKILL it mid-storm, promote the replica,
# recover the deposed primary from its surviving state dir, reconcile,
# verify". Every cycle asserts:
#
#   * every acknowledged commit survives the failover with its exact
#     formula (replicated frames, snapshot resync, or the anti-entropy
#     pass against the recovered deposed primary — no acked write lost);
#   * the fencing epoch strictly increases across promotions;
#   * reconciliation never needs a merge or skips a KB (each storm KB
#     has a single writer, so divergence would mean corruption);
#   * (every 5th cycle) a node fenced at the new epoch refuses the
#     deposed primary's WAL stream end to end: it applies zero frames
#     and counts epoch rejections.
#
# The topology is a chain: the promoted replica is the next cycle's
# primary, so later cycles also exercise snapshot resync (a fresh
# replica's cursor starts below the new primary's retention floor).
#
#   cargo build --release
#   scripts/replication_storm.sh [path-to-arbx] [cycles]
set -euo pipefail

ARBX="${1:-target/release/arbx}"
CYCLES="${2:-20}"
[ -x "$ARBX" ] || { echo "missing binary: $ARBX (cargo build --release first)"; exit 1; }

. "$(dirname "$0")/storm_lib.sh"

WORK="$(mktemp -d)"
ACKED="$WORK/acked.txt"
: >"$ACKED"
STORM_RM=("$WORK")
trap storm_cleanup EXIT

# A replication-tier node: 2 workers, no sharding.
repl_server() { # repl_server <logfile> <extra-args...>
  local LOG="$1"; shift
  start_server "$LOG" --addr 127.0.0.1:0 --threads 2 --snapshot-every 32 "$@"
}

# Seed the chain: the first primary starts at epoch 1 on a fresh dir.
EPOCH=1
P_DIR="$WORK/node0"
repl_server "$WORK/node0.log" --state-dir "$P_DIR" --replication-epoch "$EPOCH"
P_PID="$SERVER_PID"; P_ADDR="$ADDR"

for CYCLE in $(seq 1 "$CYCLES"); do
  R_DIR="$WORK/node$CYCLE"
  R_LOG="$WORK/node$CYCLE.log"
  repl_server "$R_LOG" --state-dir "$R_DIR" \
    --replicate-from "$P_ADDR" --replication-epoch "$EPOCH"
  R_PID="$SERVER_PID"; R_ADDR="$ADDR"

  # Commit storm with a kill timer racing it: SIGKILL, never SIGTERM —
  # no drain, no shutdown snapshot; the WAL and the replica carry it.
  ( sleep 0.6; kill -9 "$P_PID" 2>/dev/null ) &
  KILLER_PID=$!
  J=0; CYCLE_ACKS=0
  while :; do
    NAME="s${CYCLE}_${J}"
    FORMULA="$(oracle_formula "$J")"
    BODY="{\"action\": \"put\", \"formula\": \"$FORMULA\"}"
    OUT=$(curl -s --max-time 5 -d "$BODY" "http://$P_ADDR/v1/kb/$NAME" 2>/dev/null) || break
    case "$OUT" in
      *'"seq":1'*|*'"seq": 1'*) echo "$NAME $FORMULA" >>"$ACKED"; CYCLE_ACKS=$(( CYCLE_ACKS + 1 )) ;;
      '') break ;;
      *) fail "cycle $CYCLE: unexpected storm response" "$OUT" ;;
    esac
    J=$(( J + 1 ))
    sleep 0.01
  done
  wait "$KILLER_PID" 2>/dev/null || true
  wait "$P_PID" 2>/dev/null || true
  [ "$CYCLE_ACKS" -gt 0 ] || fail "cycle $CYCLE: no commit was ever acknowledged"

  # Explicit failover: the fencing epoch must tick up by exactly one.
  OUT=$(curl -sf --max-time 5 -d '' "http://$R_ADDR/v1/replication/promote") \
    || fail "cycle $CYCLE: promote failed" "$(cat "$R_LOG")"
  NEW_EPOCH=$(json_num epoch "$OUT")
  [ "$NEW_EPOCH" = "$(( EPOCH + 1 ))" ] \
    || fail "cycle $CYCLE: promotion epoch $NEW_EPOCH, want $(( EPOCH + 1 ))" "$OUT"
  EPOCH="$NEW_EPOCH"

  # Recover the deposed primary on its surviving state dir (standalone,
  # fresh port): its WAL still holds any acked-but-unshipped tail.
  OLD_DIR="$P_DIR"
  repl_server "$WORK/deposed$CYCLE.log" --state-dir "$OLD_DIR"
  OLD_PID="$SERVER_PID"; OLD_ADDR="$ADDR"

  # Every 5th cycle: a fresh node fenced at the new epoch pulls from the
  # deposed primary — it must refuse the stale-epoch stream wholesale.
  if [ $(( CYCLE % 5 )) -eq 1 ]; then
    repl_server "$WORK/probe$CYCLE.log" --state-dir "$WORK/probe$CYCLE" \
      --replicate-from "$OLD_ADDR" --replication-epoch "$EPOCH"
    PROBE_PID="$SERVER_PID"; PROBE_ADDR="$ADDR"
    sleep 0.5
    OUT=$(curl -sf --max-time 5 "http://$PROBE_ADDR/v1/replication/status")
    HEAD=$(json_num head "$OUT")
    [ "$HEAD" = "0" ] || fail "cycle $CYCLE: fenced probe applied $HEAD stale-epoch frames" "$OUT"
    OUT=$(curl -sf --max-time 5 "http://$PROBE_ADDR/metrics")
    REJECTS=$(printf '%s' "$OUT" | sed -n 's/.*"epoch_rejections": *\([0-9]*\).*/\1/p')
    [ -n "$REJECTS" ] && [ "$REJECTS" -gt 0 ] \
      || fail "cycle $CYCLE: fenced probe never counted an epoch rejection" "$OUT"
    kill -9 "$PROBE_PID" 2>/dev/null || true
    wait "$PROBE_PID" 2>/dev/null || true
    rm -rf "$WORK/probe$CYCLE"
  fi

  # Anti-entropy: the new primary absorbs whatever the deposed one
  # acked but never shipped. Single writer per KB, so nothing may need
  # a Δ merge and nothing may be skipped.
  OUT=$(curl -sf --max-time 30 -d "{\"peer\": \"$OLD_ADDR\"}" \
    "http://$R_ADDR/v1/replication/reconcile") \
    || fail "cycle $CYCLE: reconcile failed" "$(cat "$R_LOG")"
  MERGED=$(json_num merged "$OUT"); SKIPPED=$(json_num skipped "$OUT")
  [ "$MERGED" = "0" ] && [ "$SKIPPED" = "0" ] \
    || fail "cycle $CYCLE: reconcile merged=$MERGED skipped=$SKIPPED (single-writer KBs diverged)" "$OUT"

  kill -9 "$OLD_PID" 2>/dev/null || true
  wait "$OLD_PID" 2>/dev/null || true

  # Every commit acked this cycle is on the new primary, content intact.
  while read -r NAME FORMULA; do
    case "$NAME" in "s${CYCLE}_"*) verify_kb "$R_ADDR" "$NAME" "$FORMULA" "cycle $CYCLE" ;; esac
  done <"$ACKED"

  echo "cycle $CYCLE: $CYCLE_ACKS acks survived kill-9 failover, epoch now $EPOCH"
  rm -rf "$OLD_DIR"
  P_PID="$R_PID"; P_ADDR="$R_ADDR"; P_DIR="$R_DIR"
done

# Belt and braces: sample the full acked history against the final
# primary (every 17th commit plus the very last one).
N=0
while read -r NAME FORMULA; do
  N=$(( N + 1 ))
  [ $(( N % 17 )) -eq 0 ] && verify_kb "$P_ADDR" "$NAME" "$FORMULA" "final sweep"
done <"$ACKED"
TOTAL="$N"
LAST="$(tail -n1 "$ACKED")"
verify_kb "$P_ADDR" "${LAST%% *}" "${LAST#* }" "final sweep"

kill -TERM "$P_PID"
wait "$P_PID" || fail "final SIGTERM should exit 0"
echo "replication storm: $CYCLES kill-9 failovers survived, $TOTAL acked commits intact, final epoch $EPOCH"
