#!/usr/bin/env bash
# Kill-9 promotion storm for the replication tier: N cycles of "storm
# commits at the primary, SIGKILL it mid-storm, promote the replica,
# recover the deposed primary from its surviving state dir, reconcile,
# verify". Every cycle asserts:
#
#   * every acknowledged commit survives the failover with its exact
#     formula (replicated frames, snapshot resync, or the anti-entropy
#     pass against the recovered deposed primary — no acked write lost);
#   * the fencing epoch strictly increases across promotions;
#   * reconciliation never needs a merge or skips a KB (each storm KB
#     has a single writer, so divergence would mean corruption);
#   * (every 5th cycle) a node fenced at the new epoch refuses the
#     deposed primary's WAL stream end to end: it applies zero frames
#     and counts epoch rejections.
#
# The topology is a chain: the promoted replica is the next cycle's
# primary, so later cycles also exercise snapshot resync (a fresh
# replica's cursor starts below the new primary's retention floor).
#
#   cargo build --release
#   scripts/replication_storm.sh [path-to-arbx] [cycles]
set -euo pipefail

ARBX="${1:-target/release/arbx}"
CYCLES="${2:-20}"
[ -x "$ARBX" ] || { echo "missing binary: $ARBX (cargo build --release first)"; exit 1; }

WORK="$(mktemp -d)"
ACKED="$WORK/acked.txt"
: >"$ACKED"
PIDS=()
cleanup() {
  for PID in "${PIDS[@]:-}"; do kill -9 "$PID" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $1"; shift; for EXTRA in "$@"; do echo "--- $EXTRA"; done; exit 1; }

# start_server <logfile> <args...>: launches arbx serve, waits for the
# listening line, sets SERVER_PID and ADDR.
start_server() {
  local LOG="$1"; shift
  : >"$LOG"
  "$ARBX" serve --addr 127.0.0.1:0 --threads 2 --snapshot-every 32 "$@" >"$LOG" &
  SERVER_PID=$!
  PIDS+=("$SERVER_PID")
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^arbitrex-server listening on \([0-9.:]*\) .*$/\1/p' "$LOG" | head -n1)"
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited before listening" "$(cat "$LOG")"
    sleep 0.1
  done
  [ -n "$ADDR" ] || fail "never saw the listening line" "$(cat "$LOG")"
}

# The per-commit oracle: commit j of any cycle stores the 3-variable
# cube of j mod 8, so each KB's formula is derivable from its name.
oracle_formula() { # oracle_formula <j>
  local J=$(( $1 % 8 )) OUT=""
  [ $(( J & 1 )) -ne 0 ] && OUT="A" || OUT="!A"
  [ $(( J & 2 )) -ne 0 ] && OUT="$OUT & B" || OUT="$OUT & !B"
  [ $(( J & 4 )) -ne 0 ] && OUT="$OUT & C" || OUT="$OUT & !C"
  echo "$OUT"
}

json_num() { # json_num <key> <json>
  printf '%s' "$2" | sed -n "s/.*\"$1\": *\([0-9]*\).*/\1/p" | head -n1
}

verify_kb() { # verify_kb <addr> <name> <formula> <label>
  local OUT
  OUT=$(curl -sf --max-time 5 "http://$1/v1/kb/$2") \
    || fail "$4: acked KB \`$2\` is gone" "$OUT"
  case "$OUT" in
    *"$3"*) ;;
    *) fail "$4: acked KB \`$2\` lost its formula (want \`$3\`)" "$OUT" ;;
  esac
}

# Seed the chain: the first primary starts at epoch 1 on a fresh dir.
EPOCH=1
P_DIR="$WORK/node0"
start_server "$WORK/node0.log" --state-dir "$P_DIR" --replication-epoch "$EPOCH"
P_PID="$SERVER_PID"; P_ADDR="$ADDR"

for CYCLE in $(seq 1 "$CYCLES"); do
  R_DIR="$WORK/node$CYCLE"
  R_LOG="$WORK/node$CYCLE.log"
  start_server "$R_LOG" --state-dir "$R_DIR" \
    --replicate-from "$P_ADDR" --replication-epoch "$EPOCH"
  R_PID="$SERVER_PID"; R_ADDR="$ADDR"

  # Commit storm with a kill timer racing it: SIGKILL, never SIGTERM —
  # no drain, no shutdown snapshot; the WAL and the replica carry it.
  ( sleep 0.6; kill -9 "$P_PID" 2>/dev/null ) &
  KILLER_PID=$!
  J=0; CYCLE_ACKS=0
  while :; do
    NAME="s${CYCLE}_${J}"
    FORMULA="$(oracle_formula "$J")"
    BODY="{\"action\": \"put\", \"formula\": \"$FORMULA\"}"
    OUT=$(curl -s --max-time 5 -d "$BODY" "http://$P_ADDR/v1/kb/$NAME" 2>/dev/null) || break
    case "$OUT" in
      *'"seq":1'*|*'"seq": 1'*) echo "$NAME $FORMULA" >>"$ACKED"; CYCLE_ACKS=$(( CYCLE_ACKS + 1 )) ;;
      '') break ;;
      *) fail "cycle $CYCLE: unexpected storm response" "$OUT" ;;
    esac
    J=$(( J + 1 ))
    sleep 0.01
  done
  wait "$KILLER_PID" 2>/dev/null || true
  wait "$P_PID" 2>/dev/null || true
  [ "$CYCLE_ACKS" -gt 0 ] || fail "cycle $CYCLE: no commit was ever acknowledged"

  # Explicit failover: the fencing epoch must tick up by exactly one.
  OUT=$(curl -sf --max-time 5 -d '' "http://$R_ADDR/v1/replication/promote") \
    || fail "cycle $CYCLE: promote failed" "$(cat "$R_LOG")"
  NEW_EPOCH=$(json_num epoch "$OUT")
  [ "$NEW_EPOCH" = "$(( EPOCH + 1 ))" ] \
    || fail "cycle $CYCLE: promotion epoch $NEW_EPOCH, want $(( EPOCH + 1 ))" "$OUT"
  EPOCH="$NEW_EPOCH"

  # Recover the deposed primary on its surviving state dir (standalone,
  # fresh port): its WAL still holds any acked-but-unshipped tail.
  OLD_DIR="$P_DIR"
  start_server "$WORK/deposed$CYCLE.log" --state-dir "$OLD_DIR"
  OLD_PID="$SERVER_PID"; OLD_ADDR="$ADDR"

  # Every 5th cycle: a fresh node fenced at the new epoch pulls from the
  # deposed primary — it must refuse the stale-epoch stream wholesale.
  if [ $(( CYCLE % 5 )) -eq 1 ]; then
    start_server "$WORK/probe$CYCLE.log" --state-dir "$WORK/probe$CYCLE" \
      --replicate-from "$OLD_ADDR" --replication-epoch "$EPOCH"
    PROBE_PID="$SERVER_PID"; PROBE_ADDR="$ADDR"
    sleep 0.5
    OUT=$(curl -sf --max-time 5 "http://$PROBE_ADDR/v1/replication/status")
    HEAD=$(json_num head "$OUT")
    [ "$HEAD" = "0" ] || fail "cycle $CYCLE: fenced probe applied $HEAD stale-epoch frames" "$OUT"
    OUT=$(curl -sf --max-time 5 "http://$PROBE_ADDR/metrics")
    REJECTS=$(printf '%s' "$OUT" | sed -n 's/.*"epoch_rejections": *\([0-9]*\).*/\1/p')
    [ -n "$REJECTS" ] && [ "$REJECTS" -gt 0 ] \
      || fail "cycle $CYCLE: fenced probe never counted an epoch rejection" "$OUT"
    kill -9 "$PROBE_PID" 2>/dev/null || true
    wait "$PROBE_PID" 2>/dev/null || true
    rm -rf "$WORK/probe$CYCLE"
  fi

  # Anti-entropy: the new primary absorbs whatever the deposed one
  # acked but never shipped. Single writer per KB, so nothing may need
  # a Δ merge and nothing may be skipped.
  OUT=$(curl -sf --max-time 30 -d "{\"peer\": \"$OLD_ADDR\"}" \
    "http://$R_ADDR/v1/replication/reconcile") \
    || fail "cycle $CYCLE: reconcile failed" "$(cat "$R_LOG")"
  MERGED=$(json_num merged "$OUT"); SKIPPED=$(json_num skipped "$OUT")
  [ "$MERGED" = "0" ] && [ "$SKIPPED" = "0" ] \
    || fail "cycle $CYCLE: reconcile merged=$MERGED skipped=$SKIPPED (single-writer KBs diverged)" "$OUT"

  kill -9 "$OLD_PID" 2>/dev/null || true
  wait "$OLD_PID" 2>/dev/null || true

  # Every commit acked this cycle is on the new primary, content intact.
  while read -r NAME FORMULA; do
    case "$NAME" in "s${CYCLE}_"*) verify_kb "$R_ADDR" "$NAME" "$FORMULA" "cycle $CYCLE" ;; esac
  done <"$ACKED"

  echo "cycle $CYCLE: $CYCLE_ACKS acks survived kill-9 failover, epoch now $EPOCH"
  rm -rf "$OLD_DIR"
  P_PID="$R_PID"; P_ADDR="$R_ADDR"; P_DIR="$R_DIR"
done

# Belt and braces: sample the full acked history against the final
# primary (every 17th commit plus the very last one).
N=0
while read -r NAME FORMULA; do
  N=$(( N + 1 ))
  [ $(( N % 17 )) -eq 0 ] && verify_kb "$P_ADDR" "$NAME" "$FORMULA" "final sweep"
done <"$ACKED"
TOTAL="$N"
LAST="$(tail -n1 "$ACKED")"
verify_kb "$P_ADDR" "${LAST%% *}" "${LAST#* }" "final sweep"

kill -TERM "$P_PID"
wait "$P_PID" || fail "final SIGTERM should exit 0"
echo "replication storm: $CYCLES kill-9 failovers survived, $TOTAL acked commits intact, final epoch $EPOCH"
