#!/usr/bin/env bash
# Smoke-test the release server binary over real sockets: every endpoint
# answers, the cache hits on resubmission, malformed input gets a 400,
# and SIGTERM produces a clean drain and exit 0. CI runs this after the
# release build; run it locally the same way:
#
#   cargo build --release
#   scripts/server_smoke.sh [path-to-arbx]
set -euo pipefail

ARBX="${1:-target/release/arbx}"
[ -x "$ARBX" ] || { echo "missing binary: $ARBX (cargo build --release first)"; exit 1; }

LOG="$(mktemp)"
cleanup() {
  [ -n "${SERVER_PID:-}" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -f "$LOG"
}
trap cleanup EXIT

# Port 0: let the kernel pick, parse the announced address back out of
# the eagerly-flushed "listening on" line.
"$ARBX" serve --addr 127.0.0.1:0 --threads 2 --queue-depth 32 --cache-entries 256 >"$LOG" &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's/^arbitrex-server listening on \([0-9.:]*\) .*$/\1/p' "$LOG" | head -n1)"
  [ -n "$ADDR" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: server exited before listening"; cat "$LOG"; exit 1
  fi
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: never saw the listening line"; cat "$LOG"; exit 1; }
echo "server up at $ADDR"

fail() { echo "FAIL: $1"; echo "--- got:"; echo "$2"; exit 1; }
expect() { # expect <label> <needle> <haystack>
  case "$3" in *"$2"*) ;; *) fail "$1 (wanted \`$2\`)" "$3" ;; esac
}

OUT=$(curl -sf -d '{"psi": "A & B", "phi": "!A & !B"}' "http://$ADDR/v1/arbitrate")
expect "arbitrate exact" '"quality":"exact"' "$OUT"
expect "arbitrate cold" '"cache":"miss"' "$OUT"

OUT=$(curl -sf -d '{"psi": "A & B", "phi": "!A & !B"}' "http://$ADDR/v1/arbitrate")
expect "arbitrate warm" '"cache":"hit"' "$OUT"

# Alpha-variant of the same query: still a hit.
OUT=$(curl -sf -d '{"psi": "Y & X", "phi": "!X & !Y"}' "http://$ADDR/v1/arbitrate")
expect "arbitrate alpha-variant" '"cache":"hit"' "$OUT"

OUT=$(curl -sf -d '{"psi": "A & B", "mu": "!A | !B", "op": "dalal"}' "http://$ADDR/v1/fit")
expect "fit dalal" '"op":"dalal"' "$OUT"
expect "fit exact" '"quality":"exact"' "$OUT"

OUT=$(curl -sf -d '{"psi": "A | B", "phi": "!A", "psi_weight": 3}' "http://$ADDR/v1/warbitrate")
expect "warbitrate" '"endpoint":"warbitrate"' "$OUT"

OUT=$(curl -sf -d '{"action": "put", "formula": "A & B"}' "http://$ADDR/v1/kb/smoke")
expect "kb put" '"seq":1' "$OUT"
OUT=$(curl -sf -d '{"action": "arbitrate", "formula": "!A & !B"}' "http://$ADDR/v1/kb/smoke")
expect "kb arbitrate commits" '"committed":true' "$OUT"
OUT=$(curl -sf "http://$ADDR/v1/kb/smoke")
expect "kb get" '"seq":2' "$OUT"
OUT=$(curl -sf -X DELETE "http://$ADDR/v1/kb/smoke")
expect "kb delete" '"deleted":true' "$OUT"

# Malformed bodies: typed 400, server stays up.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -d 'not json at all' "http://$ADDR/v1/arbitrate")
[ "$CODE" = "400" ] || fail "malformed body should be 400" "$CODE"

# Pipelining: two requests in a single write on one connection; both
# responses come back, in order, on that same connection. Driven with
# bash's /dev/tcp so the smoke needs no client beyond the shell.
HOST="${ADDR%:*}"; PORT="${ADDR##*:}"
BODY='{"psi": "A", "phi": "!A"}'
REQ1=$(printf 'POST /v1/arbitrate HTTP/1.1\r\nHost: smoke\r\nContent-Length: %s\r\n\r\n%s' "${#BODY}" "$BODY")
REQ2=$(printf 'POST /v1/arbitrate HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\nContent-Length: %s\r\n\r\n%s' "${#BODY}" "$BODY")
exec 3<>"/dev/tcp/$HOST/$PORT"
printf '%s%s' "$REQ1" "$REQ2" >&3
PIPELINED=$(timeout 10 cat <&3 || true)
exec 3<&- 3>&-
OKS=$(printf '%s' "$PIPELINED" | grep -c 'HTTP/1.1 200' || true)
[ "$OKS" = "2" ] || fail "pipelined write should yield two 200s" "$PIPELINED"

OUT=$(curl -sf "http://$ADDR/metrics")
expect "metrics sections" '"server"' "$OUT"
expect "metrics histograms" '"latency_ns"' "$OUT"
expect "metrics gauges" '"kb_count"' "$OUT"

# Clean shutdown: SIGTERM drains workers and the process exits 0.
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
[ "$STATUS" = "0" ] || fail "SIGTERM should exit 0" "exit status $STATUS"
expect "clean shutdown message" 'server stopped' "$(cat "$LOG")"
SERVER_PID=""

echo "server smoke: all checks passed"
