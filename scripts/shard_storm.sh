#!/usr/bin/env bash
# Membership-churn storm for the sharded cluster: N cycles of "storm
# commits through the routing layer, SIGKILL a shard owner mid-storm,
# drop it from the ring, restart it from its surviving state dir on a
# fresh port, join it back, verify". Every cycle asserts:
#
#   * every acknowledged commit is still readable through the router
#     with its exact formula after the churn — kill-9, the leave-
#     triggered rebalance (which must tolerate the dead source), and
#     the join-triggered handoff may not lose an acked write;
#   * every copy of an acked KB left anywhere in the cluster carries
#     byte-identical state: the `/v1/kbs` digests (seq, canonical hash)
#     agree across every member that still holds the name;
#   * the ring converges: after the churn every member reports the same
#     ring epoch and the same membership.
#
# The storm writer runs through the whole cycle, following 307
# redirects to shard owners (curl -L re-POSTs on 307) and shrugging off
# the typed 503 handoff fence — only `"seq":1` acks enter the oracle.
#
#   cargo build --release
#   scripts/shard_storm.sh [path-to-arbx] [cycles]
set -euo pipefail

ARBX="${1:-target/release/arbx}"
CYCLES="${2:-3}"
[ -x "$ARBX" ] || { echo "missing binary: $ARBX (cargo build --release first)"; exit 1; }

WORK="$(mktemp -d)"
ACKED="$WORK/acked.txt"
: >"$ACKED"
PIDS=()
cleanup() {
  for PID in "${PIDS[@]:-}"; do kill -9 "$PID" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $1"; shift; for EXTRA in "$@"; do echo "--- $EXTRA"; done; exit 1; }

# start_server <logfile> <args...>: launches a shard member, waits for
# the listening line, sets SERVER_PID and ADDR.
start_server() {
  local LOG="$1"; shift
  : >"$LOG"
  "$ARBX" serve --addr 127.0.0.1:0 --threads 3 --snapshot-every 32 \
    --shard-ring auto "$@" >"$LOG" &
  SERVER_PID=$!
  PIDS+=("$SERVER_PID")
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^arbitrex-server listening on \([0-9.:]*\) .*$/\1/p' "$LOG" | head -n1)"
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited before listening" "$(cat "$LOG")"
    sleep 0.1
  done
  [ -n "$ADDR" ] || fail "never saw the listening line" "$(cat "$LOG")"
}

# The per-commit oracle: commit j of any cycle stores the 3-variable
# cube of j mod 8, so each KB's formula is derivable from its name.
oracle_formula() { # oracle_formula <j>
  local J=$(( $1 % 8 )) OUT=""
  [ $(( J & 1 )) -ne 0 ] && OUT="A" || OUT="!A"
  [ $(( J & 2 )) -ne 0 ] && OUT="$OUT & B" || OUT="$OUT & !B"
  [ $(( J & 4 )) -ne 0 ] && OUT="$OUT & C" || OUT="$OUT & !C"
  echo "$OUT"
}

json_num() { # json_num <key> <json>
  printf '%s' "$2" | sed -n "s/.*\"$1\": *\([0-9]*\).*/\1/p" | head -n1
}

# listing <addr>: the member's /v1/kbs digests as "name seq hash" lines.
listing() {
  curl -sf --max-time 5 "http://$1/v1/kbs" | tr '{' '\n' \
    | sed -n 's/.*"name": *"\([^"]*\)", *"seq": *\([0-9]*\), *"hash": *"\([0-9a-f]*\)".*/\1 \2 \3/p'
}

# cluster_post <addr> <action> <member-addr>
cluster_post() {
  curl -sf --max-time 30 -d "{\"addr\": \"$3\"}" "http://$1/v1/cluster/$2"
}

verify_kb() { # verify_kb <addr> <name> <formula> <label>
  local OUT
  OUT=$(curl -sfL --max-time 5 "http://$1/v1/kb/$2") \
    || fail "$4: acked KB \`$2\` is gone" "$OUT"
  case "$OUT" in
    *"$3"*) ;;
    *) fail "$4: acked KB \`$2\` lost its formula (want \`$3\`)" "$OUT" ;;
  esac
}

# Three members: node0 is the coordinator (never killed, the client
# entry point); the victims rotate over the other two slots.
start_server "$WORK/node0.log" --state-dir "$WORK/node0"
COORD_ADDR="$ADDR"
start_server "$WORK/slot1.log" --state-dir "$WORK/slot1"
SLOT_PID[1]="$SERVER_PID"; SLOT_ADDR[1]="$ADDR"; SLOT_DIR[1]="$WORK/slot1"
start_server "$WORK/slot2.log" --state-dir "$WORK/slot2"
SLOT_PID[2]="$SERVER_PID"; SLOT_ADDR[2]="$ADDR"; SLOT_DIR[2]="$WORK/slot2"
for SLOT in 1 2; do
  OUT=$(cluster_post "$COORD_ADDR" join "${SLOT_ADDR[$SLOT]}") \
    || fail "seed join of slot $SLOT failed"
done

for CYCLE in $(seq 1 "$CYCLES"); do
  SLOT=$(( (CYCLE - 1) % 2 + 1 ))
  VICTIM_PID="${SLOT_PID[$SLOT]}"
  VICTIM_ADDR="${SLOT_ADDR[$SLOT]}"
  VICTIM_DIR="${SLOT_DIR[$SLOT]}"

  # Storm writer: routed puts at the coordinator for the whole cycle.
  # -L follows the 307 to the shard owner; fenced 503s and the dead
  # window simply do not ack (holes in the name space are fine).
  rm -f "$WORK/stop"
  (
    J=0
    while [ ! -f "$WORK/stop" ]; do
      NAME="c${CYCLE}_${J}"
      FORMULA="$(oracle_formula "$J")"
      BODY="{\"action\": \"put\", \"formula\": \"$FORMULA\"}"
      OUT=$(curl -sL --max-time 2 -d "$BODY" "http://$COORD_ADDR/v1/kb/$NAME" 2>/dev/null) || OUT=""
      case "$OUT" in
        *'"seq":1'*|*'"seq": 1'*) echo "$NAME $FORMULA" >>"$ACKED" ;;
      esac
      J=$(( J + 1 ))
      sleep 0.01
    done
  ) &
  WRITER_PID=$!
  PIDS+=("$WRITER_PID")
  sleep 0.8

  # Kill-9 a shard owner mid-storm: no drain, no shutdown snapshot;
  # its state dir is the only survivor.
  kill -9 "$VICTIM_PID" 2>/dev/null || true
  wait "$VICTIM_PID" 2>/dev/null || true
  sleep 0.3

  # Drop it from the ring. The leave-triggered rebalance must tolerate
  # the unreachable source (its slice stays dark until the rejoin).
  OUT=$(cluster_post "$COORD_ADDR" leave "$VICTIM_ADDR") \
    || fail "cycle $CYCLE: leave of dead member failed"
  LEFT=$(json_num epoch "$OUT")

  # Restart it from the surviving state dir on a fresh port and join it
  # back: the join-triggered handoff pulls every acked KB to its
  # post-rebalance owner, wherever the new ring places it.
  start_server "$WORK/slot${SLOT}-c${CYCLE}.log" --state-dir "$VICTIM_DIR"
  SLOT_PID[$SLOT]="$SERVER_PID"; SLOT_ADDR[$SLOT]="$ADDR"
  OUT=$(cluster_post "$COORD_ADDR" join "${SLOT_ADDR[$SLOT]}") \
    || fail "cycle $CYCLE: rejoin failed"
  JOINED=$(json_num epoch "$OUT")
  [ "$JOINED" = "$(( LEFT + 1 ))" ] \
    || fail "cycle $CYCLE: join epoch $JOINED, want $(( LEFT + 1 ))" "$OUT"

  sleep 0.5
  touch "$WORK/stop"
  wait "$WRITER_PID" 2>/dev/null || true

  # Ring convergence: every member reports the same epoch + membership.
  WANT_RING=""
  for MEMBER in "$COORD_ADDR" "${SLOT_ADDR[1]}" "${SLOT_ADDR[2]}"; do
    OUT=$(curl -sf --max-time 5 "http://$MEMBER/v1/cluster/ring") \
      || fail "cycle $CYCLE: no ring from $MEMBER"
    RING="epoch $(json_num epoch "$OUT") members $(printf '%s' "$OUT" \
      | tr ',' '\n' | grep -c '"127\.0\.0\.1:')"
    if [ -z "$WANT_RING" ]; then WANT_RING="$RING"; fi
    [ "$RING" = "$WANT_RING" ] \
      || fail "cycle $CYCLE: $MEMBER sees \`$RING\`, coordinator sees \`$WANT_RING\`" "$OUT"
  done

  # Digest convergence: every copy of an acked KB still present anywhere
  # carries identical (seq, hash) — a torn or replayed handoff that left
  # divergent bytes would disagree here.
  listing "$COORD_ADDR" >"$WORK/digest0" || fail "cycle $CYCLE: no listing from coordinator"
  listing "${SLOT_ADDR[1]}" >"$WORK/digest1" || fail "cycle $CYCLE: no listing from slot 1"
  listing "${SLOT_ADDR[2]}" >"$WORK/digest2" || fail "cycle $CYCLE: no listing from slot 2"
  CYCLE_ACKS=0
  while read -r NAME FORMULA; do
    case "$NAME" in "c${CYCLE}_"*) ;; *) continue ;; esac
    CYCLE_ACKS=$(( CYCLE_ACKS + 1 ))
    COPIES=$(grep -h "^$NAME " "$WORK"/digest[0-2] | sort -u | wc -l)
    HOLDERS=$(grep -h "^$NAME " "$WORK"/digest[0-2] | wc -l)
    [ "$HOLDERS" -ge 1 ] || fail "cycle $CYCLE: acked KB \`$NAME\` is on no member"
    [ "$COPIES" = "1" ] \
      || fail "cycle $CYCLE: \`$NAME\` has $COPIES divergent digests across its copies" \
        "$(grep -h "^$NAME " "$WORK"/digest[0-2])"
    verify_kb "$COORD_ADDR" "$NAME" "$FORMULA" "cycle $CYCLE"
  done <"$ACKED"
  [ "$CYCLE_ACKS" -gt 0 ] || fail "cycle $CYCLE: no commit was ever acknowledged"
  echo "cycle $CYCLE: $CYCLE_ACKS acks survived kill-9 churn of $VICTIM_ADDR, ring epoch $JOINED"
done

# Belt and braces: the full acked history is still served through the
# router, content intact.
TOTAL=0
while read -r NAME FORMULA; do
  TOTAL=$(( TOTAL + 1 ))
  verify_kb "$COORD_ADDR" "$NAME" "$FORMULA" "final sweep"
done <"$ACKED"
echo "shard storm: $CYCLES kill-9 churn cycles survived, $TOTAL acked commits intact"
