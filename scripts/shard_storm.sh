#!/usr/bin/env bash
# Membership-churn storm for the sharded cluster: N cycles of "storm
# commits through the routing layer, SIGKILL a shard owner mid-storm,
# drop it from the ring, restart it from its surviving state dir on a
# fresh port, join it back, verify". Every cycle asserts:
#
#   * every acknowledged commit is still readable through the router
#     with its exact formula after the churn — kill-9, the leave-
#     triggered rebalance (which must tolerate the dead source), and
#     the join-triggered handoff may not lose an acked write;
#   * every copy of an acked KB left anywhere in the cluster carries
#     byte-identical state: the `/v1/kbs` digests (seq, canonical hash)
#     agree across every member that still holds the name;
#   * the ring converges: after the churn every member reports the same
#     ring epoch and the same membership.
#
# The storm writer runs through the whole cycle, following 307
# redirects to shard owners (curl -L re-POSTs on 307) and shrugging off
# the typed 503 handoff fence — only `"seq":1` acks enter the oracle.
#
#   cargo build --release
#   scripts/shard_storm.sh [path-to-arbx] [cycles]
set -euo pipefail

ARBX="${1:-target/release/arbx}"
CYCLES="${2:-3}"
[ -x "$ARBX" ] || { echo "missing binary: $ARBX (cargo build --release first)"; exit 1; }

. "$(dirname "$0")/storm_lib.sh"

WORK="$(mktemp -d)"
ACKED="$WORK/acked.txt"
: >"$ACKED"
STORM_RM=("$WORK")
trap storm_cleanup EXIT

# A shard member: 3 workers, advertising its bound address as ring
# identity.
shard_server() { # shard_server <logfile> <extra-args...>
  local LOG="$1"; shift
  start_server "$LOG" --addr 127.0.0.1:0 --threads 3 --snapshot-every 32 \
    --shard-ring auto "$@"
}

# Three members: node0 is the coordinator (never killed, the client
# entry point); the victims rotate over the other two slots.
shard_server "$WORK/node0.log" --state-dir "$WORK/node0"
COORD_ADDR="$ADDR"
shard_server "$WORK/slot1.log" --state-dir "$WORK/slot1"
SLOT_PID[1]="$SERVER_PID"; SLOT_ADDR[1]="$ADDR"; SLOT_DIR[1]="$WORK/slot1"
shard_server "$WORK/slot2.log" --state-dir "$WORK/slot2"
SLOT_PID[2]="$SERVER_PID"; SLOT_ADDR[2]="$ADDR"; SLOT_DIR[2]="$WORK/slot2"
for SLOT in 1 2; do
  OUT=$(cluster_post "$COORD_ADDR" join "${SLOT_ADDR[$SLOT]}") \
    || fail "seed join of slot $SLOT failed"
done

for CYCLE in $(seq 1 "$CYCLES"); do
  SLOT=$(( (CYCLE - 1) % 2 + 1 ))
  VICTIM_PID="${SLOT_PID[$SLOT]}"
  VICTIM_ADDR="${SLOT_ADDR[$SLOT]}"
  VICTIM_DIR="${SLOT_DIR[$SLOT]}"

  # Storm writer: routed puts at the coordinator for the whole cycle.
  # -L follows the 307 to the shard owner; fenced 503s and the dead
  # window simply do not ack (holes in the name space are fine).
  rm -f "$WORK/stop"
  (
    J=0
    while [ ! -f "$WORK/stop" ]; do
      NAME="c${CYCLE}_${J}"
      FORMULA="$(oracle_formula "$J")"
      BODY="{\"action\": \"put\", \"formula\": \"$FORMULA\"}"
      OUT=$(curl -sL --max-time 2 -d "$BODY" "http://$COORD_ADDR/v1/kb/$NAME" 2>/dev/null) || OUT=""
      case "$OUT" in
        *'"seq":1'*|*'"seq": 1'*) echo "$NAME $FORMULA" >>"$ACKED" ;;
      esac
      J=$(( J + 1 ))
      sleep 0.01
    done
  ) &
  WRITER_PID=$!
  PIDS+=("$WRITER_PID")
  sleep 0.8

  # Kill-9 a shard owner mid-storm: no drain, no shutdown snapshot;
  # its state dir is the only survivor.
  kill -9 "$VICTIM_PID" 2>/dev/null || true
  wait "$VICTIM_PID" 2>/dev/null || true
  sleep 0.3

  # Drop it from the ring. The leave-triggered rebalance must tolerate
  # the unreachable source (its slice stays dark until the rejoin).
  OUT=$(cluster_post "$COORD_ADDR" leave "$VICTIM_ADDR") \
    || fail "cycle $CYCLE: leave of dead member failed"
  LEFT=$(json_num epoch "$OUT")

  # Restart it from the surviving state dir on a fresh port and join it
  # back: the join-triggered handoff pulls every acked KB to its
  # post-rebalance owner, wherever the new ring places it.
  shard_server "$WORK/slot${SLOT}-c${CYCLE}.log" --state-dir "$VICTIM_DIR"
  SLOT_PID[$SLOT]="$SERVER_PID"; SLOT_ADDR[$SLOT]="$ADDR"
  OUT=$(cluster_post "$COORD_ADDR" join "${SLOT_ADDR[$SLOT]}") \
    || fail "cycle $CYCLE: rejoin failed"
  JOINED=$(json_num epoch "$OUT")
  [ "$JOINED" = "$(( LEFT + 1 ))" ] \
    || fail "cycle $CYCLE: join epoch $JOINED, want $(( LEFT + 1 ))" "$OUT"

  sleep 0.5
  touch "$WORK/stop"
  wait "$WRITER_PID" 2>/dev/null || true

  # Ring convergence: every member reports the same epoch + membership.
  WANT_RING=""
  for MEMBER in "$COORD_ADDR" "${SLOT_ADDR[1]}" "${SLOT_ADDR[2]}"; do
    OUT=$(curl -sf --max-time 5 "http://$MEMBER/v1/cluster/ring") \
      || fail "cycle $CYCLE: no ring from $MEMBER"
    RING="epoch $(json_num epoch "$OUT") members $(printf '%s' "$OUT" \
      | tr ',' '\n' | grep -c '"127\.0\.0\.1:')"
    if [ -z "$WANT_RING" ]; then WANT_RING="$RING"; fi
    [ "$RING" = "$WANT_RING" ] \
      || fail "cycle $CYCLE: $MEMBER sees \`$RING\`, coordinator sees \`$WANT_RING\`" "$OUT"
  done

  # Digest convergence: every copy of an acked KB still present anywhere
  # carries identical (seq, hash) — a torn or replayed handoff that left
  # divergent bytes would disagree here.
  listing "$COORD_ADDR" >"$WORK/digest0" || fail "cycle $CYCLE: no listing from coordinator"
  listing "${SLOT_ADDR[1]}" >"$WORK/digest1" || fail "cycle $CYCLE: no listing from slot 1"
  listing "${SLOT_ADDR[2]}" >"$WORK/digest2" || fail "cycle $CYCLE: no listing from slot 2"
  CYCLE_ACKS=0
  while read -r NAME FORMULA; do
    case "$NAME" in "c${CYCLE}_"*) ;; *) continue ;; esac
    CYCLE_ACKS=$(( CYCLE_ACKS + 1 ))
    COPIES=$(grep -h "^$NAME " "$WORK"/digest[0-2] | sort -u | wc -l)
    HOLDERS=$(grep -h "^$NAME " "$WORK"/digest[0-2] | wc -l)
    [ "$HOLDERS" -ge 1 ] || fail "cycle $CYCLE: acked KB \`$NAME\` is on no member"
    [ "$COPIES" = "1" ] \
      || fail "cycle $CYCLE: \`$NAME\` has $COPIES divergent digests across its copies" \
        "$(grep -h "^$NAME " "$WORK"/digest[0-2])"
    verify_kb "$COORD_ADDR" "$NAME" "$FORMULA" "cycle $CYCLE"
  done <"$ACKED"
  [ "$CYCLE_ACKS" -gt 0 ] || fail "cycle $CYCLE: no commit was ever acknowledged"
  echo "cycle $CYCLE: $CYCLE_ACKS acks survived kill-9 churn of $VICTIM_ADDR, ring epoch $JOINED"
done

# Belt and braces: the full acked history is still served through the
# router, content intact.
TOTAL=0
while read -r NAME FORMULA; do
  TOTAL=$(( TOTAL + 1 ))
  verify_kb "$COORD_ADDR" "$NAME" "$FORMULA" "final sweep"
done <"$ACKED"
echo "shard storm: $CYCLES kill-9 churn cycles survived, $TOTAL acked commits intact"
