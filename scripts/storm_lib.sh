# shellcheck shell=bash
# Shared plumbing for the chaos harnesses (crash_loop.sh,
# replication_storm.sh, shard_storm.sh, chained_chaos.sh). Source this
# after setting ARBX; then:
#
#   STORM_RM=("$WORK")        # paths storm_cleanup should remove
#   trap storm_cleanup EXIT
#
# Every server started through start_server lands in PIDS and is
# kill -9'd by storm_cleanup, so a failing harness never leaks
# processes into the next CI step.

PIDS=()
STORM_RM=()

storm_cleanup() {
  for PID in "${PIDS[@]:-}"; do kill -9 "$PID" 2>/dev/null || true; done
  for P in "${STORM_RM[@]:-}"; do [ -n "$P" ] && rm -rf "$P"; done
}

fail() { echo "FAIL: $1"; shift; for EXTRA in "$@"; do echo "--- $EXTRA"; done; exit 1; }

# start_server <logfile> <serve-args...>: launches `arbx serve`, waits
# for the listening line, sets SERVER_PID and ADDR, registers the pid
# for cleanup. Callers pass the full flag set, including --addr (use
# 127.0.0.1:0 unless the scenario needs to revive a dead member on its
# old port).
start_server() {
  local LOG="$1"; shift
  : >"$LOG"
  "$ARBX" serve "$@" >"$LOG" &
  SERVER_PID=$!
  PIDS+=("$SERVER_PID")
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^arbitrex-server listening on \([0-9.:]*\) .*$/\1/p' "$LOG" | head -n1)"
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited before listening" "$(cat "$LOG")"
    sleep 0.1
  done
  [ -n "$ADDR" ] || fail "never saw the listening line" "$(cat "$LOG")"
}

# The per-commit oracle shared by the storm writers: commit j of any
# cycle stores the 3-variable cube of j mod 8, so each KB's formula is
# derivable from its name.
oracle_formula() { # oracle_formula <j>
  local J=$(( $1 % 8 )) OUT=""
  [ $(( J & 1 )) -ne 0 ] && OUT="A" || OUT="!A"
  [ $(( J & 2 )) -ne 0 ] && OUT="$OUT & B" || OUT="$OUT & !B"
  [ $(( J & 4 )) -ne 0 ] && OUT="$OUT & C" || OUT="$OUT & !C"
  echo "$OUT"
}

json_num() { # json_num <key> <json>
  printf '%s' "$2" | sed -n "s/.*\"$1\": *\([0-9]*\).*/\1/p" | head -n1
}

json_str() { # json_str <key> <json>
  printf '%s' "$2" | sed -n "s/.*\"$1\": *\"\([^\"]*\)\".*/\1/p" | head -n1
}

verify_kb() { # verify_kb <addr> <name> <formula> <label>
  local OUT
  OUT=$(curl -sfL --max-time 5 "http://$1/v1/kb/$2") \
    || fail "$4: acked KB \`$2\` is gone" "$OUT"
  case "$OUT" in
    *"$3"*) ;;
    *) fail "$4: acked KB \`$2\` lost its formula (want \`$3\`)" "$OUT" ;;
  esac
}

# listing <addr>: the member's /v1/kbs digests as "name seq hash" lines.
listing() {
  curl -sf --max-time 5 "http://$1/v1/kbs" | tr '{' '\n' \
    | sed -n 's/.*"name": *"\([^"]*\)", *"seq": *\([0-9]*\), *"hash": *"\([0-9a-f]*\)".*/\1 \2 \3/p'
}

# cluster_post <addr> <action> <member-addr>
cluster_post() {
  curl -sf --max-time 30 -d "{\"addr\": \"$3\"}" "http://$1/v1/cluster/$2"
}
