//! # arbitrex — theory change by arbitration
//!
//! A production-quality Rust implementation of
//! *Peter Z. Revesz, "On the Semantics of Theory Change: Arbitration between
//! Old and New Information" (PODS 1993)*, together with the revision and
//! update operator families it is contrasted against (AGM / Katsuno–Mendelzon),
//! postulate checkers for all four axiom systems (R, U, A, F), weighted
//! knowledge bases, a belief-merging application layer, and the substrates
//! they run on: a propositional logic kernel, a CDCL SAT solver and a BDD
//! package — all in this workspace, no external solver dependencies.
//!
//! ## Quickstart
//!
//! Example 3.1 of the paper: an instructor offers `(¬S ∧ D) ∨ (S ∧ D)`; the
//! three students want `S`-only, `D`-only, and `S ∧ D ∧ Q` respectively.
//! Model-fitting picks the offer closest *overall* to the whole class:
//!
//! ```
//! use arbitrex::prelude::*;
//!
//! let mut sig = Sig::new();
//! let (s, d, q) = (sig.var("S"), sig.var("D"), sig.var("Q"));
//! let mu  = parse(&mut sig, "(!S & D & !Q) | (S & D & !Q)").unwrap();
//! let psi = parse(&mut sig, "(S & !D & !Q) | (!S & D & !Q) | (S & D & Q)").unwrap();
//!
//! let n = sig.width();
//! let result = OdistFitting.apply(
//!     &ModelSet::of_formula(&psi, n),
//!     &ModelSet::of_formula(&mu, n),
//! );
//! // The paper's answer: teach both SQL and Datalog.
//! assert_eq!(result.as_singleton(), Some(Interp::from_vars([s, d])));
//! # let _ = q;
//! ```
//!
//! See `examples/` for runnable scenarios and `EXPERIMENTS.md` for the full
//! experiment suite reproducing every worked example and theorem in the paper.

pub use arbitrex_bdd as bdd;
pub use arbitrex_core as core;
pub use arbitrex_logic as logic;
pub use arbitrex_merge as merge;
pub use arbitrex_relational as relational;
pub use arbitrex_sat as sat;

/// One-stop imports for the common API surface.
pub mod prelude {
    pub use arbitrex_core::arbitration::{
        arbitrate, try_arbitrate_with_budget, try_warbitrate_with_budget, warbitrate, Arbitration,
        WeightedArbitration,
    };
    pub use arbitrex_core::budget::{
        Budget, BudgetSite, BudgetSpent, BudgetedChangeOperator, BudgetedWeightedChangeOperator,
        CancelToken, FaultPlan, Outcome, Quality, TripReason, WeightedOutcome,
    };
    pub use arbitrex_core::distance::{dist, min_dist, odist, sum_dist, wdist};
    pub use arbitrex_core::fitting::{LexOdistFitting, OdistFitting, SumFitting};
    pub use arbitrex_core::operator::{ChangeOperator, FormulaOperator};
    pub use arbitrex_core::revision::{
        BorgidaRevision, DalalRevision, DrasticRevision, SatohRevision, WeberRevision,
    };
    pub use arbitrex_core::update::{ForbusUpdate, WinslettUpdate};
    pub use arbitrex_core::weighted::WeightedKb;
    pub use arbitrex_core::wfitting::{WdistFitting, WeightedChangeOperator};
    pub use arbitrex_logic::{eval, form_of, parse, Formula, Interp, ModelSet, Sig, Var};
    pub use arbitrex_merge::{
        merge_egalitarian, merge_fold_arbitration, merge_fold_revision, merge_fold_update,
        merge_majority, merge_weighted_arbitration, Source, Table,
    };
}
