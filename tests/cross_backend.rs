//! Cross-validation of the three model-set backends — truth-table
//! enumeration, CDCL SAT with Tseitin + AllSAT, and ROBDD compilation —
//! plus the SAT-backed operators against their enumeration references.

use arbitrex::bdd::{compile, BddManager};
use arbitrex::core::satbackend::{dalal_revision_sat, models_via_sat, odist_fitting_sat};
use arbitrex::logic::random::FormulaGen;
use arbitrex::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random formulas: all three backends must produce the identical model
/// set and model count.
#[test]
fn three_backends_agree_on_random_formulas() {
    let mut rng = StdRng::seed_from_u64(2024);
    let gen = FormulaGen {
        n_vars: 6,
        max_depth: 6,
        leaf_bias: 0.25,
    };
    for round in 0..200 {
        let f = gen.sample(&mut rng);
        let n = 6;
        let reference = ModelSet::of_formula(&f, n);
        let via_sat = models_via_sat(&f, n, 1 << n).expect("limit covers the universe");
        assert_eq!(via_sat, reference, "SAT backend disagrees on round {round}");
        let mut mgr = BddManager::new();
        let b = compile(&mut mgr, &f);
        let via_bdd: Vec<u64> = mgr.models(b, n);
        let ref_bits: Vec<u64> = reference.iter().map(|i| i.0).collect();
        assert_eq!(via_bdd, ref_bits, "BDD backend disagrees on round {round}");
        assert_eq!(
            mgr.count_models(b, n),
            reference.len() as u128,
            "BDD count disagrees on round {round}"
        );
    }
}

/// Dalal revision: SAT backend vs enumeration reference on random inputs.
#[test]
fn dalal_sat_backend_agrees_with_enumeration() {
    let mut rng = StdRng::seed_from_u64(7);
    let gen = FormulaGen {
        n_vars: 5,
        max_depth: 5,
        leaf_bias: 0.3,
    };
    let mut nontrivial = 0;
    for round in 0..120 {
        let psi = gen.sample(&mut rng);
        let mu = gen.sample(&mut rng);
        let n = 5;
        let reference = DalalRevision.apply(
            &ModelSet::of_formula(&psi, n),
            &ModelSet::of_formula(&mu, n),
        );
        let sat = dalal_revision_sat(&psi, &mu, n, 1 << n).expect("limit covers the universe");
        assert_eq!(sat.models, reference, "mismatch on round {round}");
        if !reference.is_empty() {
            nontrivial += 1;
        }
    }
    assert!(
        nontrivial > 50,
        "random generator produced too many trivial cases"
    );
}

/// odist fitting: SAT radius search vs enumeration reference.
#[test]
fn odist_sat_backend_agrees_with_enumeration() {
    let mut rng = StdRng::seed_from_u64(11);
    let gen = FormulaGen {
        n_vars: 5,
        max_depth: 5,
        leaf_bias: 0.3,
    };
    for round in 0..80 {
        let mu = gen.sample(&mut rng);
        let n = 5;
        let psi = arbitrex::logic::random::random_nonempty_model_set(&mut rng, n, 4);
        let psi_models: Vec<Interp> = psi.iter().collect();
        let reference = OdistFitting.apply(&psi, &ModelSet::of_formula(&mu, n));
        let sat =
            odist_fitting_sat(&psi_models, &mu, n, 1 << n).expect("limit covers the universe");
        assert_eq!(sat.models, reference, "mismatch on round {round}");
        if let Some(r) = sat.distance {
            // The reported radius is the actual optimum odist.
            let best = reference.iter().map(|i| odist(&psi, i).unwrap()).min();
            if !reference.is_empty() {
                assert_eq!(Some(r), best, "radius mismatch on round {round}");
            }
        }
    }
}

/// The BDD backend supports equivalence checking by handle equality; use
/// it to verify the formula-level operator wrapper produces equivalents
/// of the semantic result.
#[test]
fn formula_wrapper_equivalence_via_bdd() {
    let mut rng = StdRng::seed_from_u64(23);
    let gen = FormulaGen {
        n_vars: 4,
        max_depth: 5,
        leaf_bias: 0.3,
    };
    let op = FormulaOperator::new(DalalRevision, 4);
    for _ in 0..60 {
        let psi = gen.sample(&mut rng);
        let mu = gen.sample(&mut rng);
        let out = op.apply(&psi, &mu);
        let reference = DalalRevision.apply(
            &ModelSet::of_formula(&psi, 4),
            &ModelSet::of_formula(&mu, 4),
        );
        let mut mgr = BddManager::new();
        let out_bdd = compile(&mut mgr, &out);
        let ref_bdd = compile(&mut mgr, &reference.to_formula());
        assert_eq!(out_bdd, ref_bdd);
    }
}

/// Normal forms preserve models end-to-end across the kernel.
#[test]
fn normal_forms_cross_check() {
    let mut rng = StdRng::seed_from_u64(31);
    let gen = FormulaGen {
        n_vars: 5,
        max_depth: 5,
        leaf_bias: 0.3,
    };
    for _ in 0..100 {
        let f = gen.sample(&mut rng);
        let reference = ModelSet::of_formula(&f, 5);
        assert_eq!(
            ModelSet::of_formula(&arbitrex::logic::to_nnf(&f), 5),
            reference
        );
        assert_eq!(
            ModelSet::of_formula(&arbitrex::logic::simplify(&f), 5),
            reference
        );
        // Tseitin: satisfiability must match (projection equivalence is
        // covered by models_via_sat above).
        let sat = models_via_sat(&f, 5, 64).map(|m| !m.is_empty());
        assert_eq!(sat, Some(!reference.is_empty()));
    }
}
