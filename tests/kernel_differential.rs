//! Differential tests: every operator routed through the fast-path
//! selection kernel must agree exactly with its naive, specification-shaped
//! oracle in `arbitrex_core::kernel::naive` — on random inputs, on the
//! empty-ψ/empty-μ edges, and on weighted knowledge bases.

use arbitrex_core::kernel::naive;
use arbitrex_core::{
    arbitrate, warbitrate, ChangeOperator, DalalRevision, ForbusUpdate, GMaxFitting,
    LexOdistFitting, OdistFitting, SumFitting, WdistFitting, WeightedChangeOperator, WeightedKb,
    WinslettUpdate,
};
use arbitrex_logic::{Interp, ModelSet};
use rand::{rngs::StdRng, Rng, SeedableRng};

const CASES: usize = 400;

/// A random model set over `n` variables; empty with probability ~1/8.
fn gen_model_set<R: Rng + ?Sized>(rng: &mut R, n: u32) -> ModelSet {
    if rng.random_bool(0.125) {
        return ModelSet::empty(n);
    }
    let count = rng.random_range(1..=(1usize << n.min(4)));
    ModelSet::new(
        n,
        (0..count).map(|_| Interp(rng.random_range(0..1u64 << n))),
    )
}

fn gen_weighted_kb<R: Rng + ?Sized>(rng: &mut R, n: u32) -> WeightedKb {
    if rng.random_bool(0.125) {
        return WeightedKb::unsatisfiable(n);
    }
    let count = rng.random_range(1..=6usize);
    WeightedKb::from_weights(
        n,
        (0..count).map(|_| {
            (
                Interp(rng.random_range(0..1u64 << n)),
                rng.random_range(1..40u64),
            )
        }),
    )
}

#[test]
fn odist_fitting_matches_naive_oracle() {
    let mut rng = StdRng::seed_from_u64(0xD1F1);
    for case in 0..CASES {
        let n = rng.random_range(1..=10u32);
        let psi = gen_model_set(&mut rng, n);
        let mu = gen_model_set(&mut rng, n);
        assert_eq!(
            OdistFitting.apply(&psi, &mu),
            naive::odist_fitting(&psi, &mu),
            "case {case}: psi={psi:?} mu={mu:?}"
        );
    }
}

#[test]
fn lex_odist_fitting_matches_naive_oracle() {
    let mut rng = StdRng::seed_from_u64(0xD1F2);
    for case in 0..CASES {
        let n = rng.random_range(1..=10u32);
        let psi = gen_model_set(&mut rng, n);
        let mu = gen_model_set(&mut rng, n);
        assert_eq!(
            LexOdistFitting.apply(&psi, &mu),
            naive::lex_odist_fitting(&psi, &mu),
            "case {case}: psi={psi:?} mu={mu:?}"
        );
    }
}

#[test]
fn sum_fitting_matches_naive_oracle() {
    let mut rng = StdRng::seed_from_u64(0xD1F3);
    for case in 0..CASES {
        let n = rng.random_range(1..=10u32);
        let psi = gen_model_set(&mut rng, n);
        let mu = gen_model_set(&mut rng, n);
        assert_eq!(
            SumFitting.apply(&psi, &mu),
            naive::sum_fitting(&psi, &mu),
            "case {case}: psi={psi:?} mu={mu:?}"
        );
    }
}

#[test]
fn gmax_fitting_matches_naive_oracle() {
    let mut rng = StdRng::seed_from_u64(0xD1F4);
    for case in 0..CASES {
        let n = rng.random_range(1..=10u32);
        let psi = gen_model_set(&mut rng, n);
        let mu = gen_model_set(&mut rng, n);
        assert_eq!(
            GMaxFitting.apply(&psi, &mu),
            naive::gmax_fitting(&psi, &mu),
            "case {case}: psi={psi:?} mu={mu:?}"
        );
    }
}

#[test]
fn dalal_revision_matches_naive_oracle() {
    let mut rng = StdRng::seed_from_u64(0xD1F5);
    for case in 0..CASES {
        let n = rng.random_range(1..=10u32);
        let psi = gen_model_set(&mut rng, n);
        let mu = gen_model_set(&mut rng, n);
        assert_eq!(
            DalalRevision.apply(&psi, &mu),
            naive::dalal_revision(&psi, &mu),
            "case {case}: psi={psi:?} mu={mu:?}"
        );
    }
}

#[test]
fn winslett_update_matches_naive_oracle() {
    let mut rng = StdRng::seed_from_u64(0xD1F6);
    for case in 0..CASES {
        let n = rng.random_range(1..=10u32);
        let psi = gen_model_set(&mut rng, n);
        let mu = gen_model_set(&mut rng, n);
        assert_eq!(
            WinslettUpdate.apply(&psi, &mu),
            naive::winslett_update(&psi, &mu),
            "case {case}: psi={psi:?} mu={mu:?}"
        );
    }
}

#[test]
fn forbus_update_matches_naive_oracle() {
    let mut rng = StdRng::seed_from_u64(0xD1F7);
    for case in 0..CASES {
        let n = rng.random_range(1..=10u32);
        let psi = gen_model_set(&mut rng, n);
        let mu = gen_model_set(&mut rng, n);
        assert_eq!(
            ForbusUpdate.apply(&psi, &mu),
            naive::forbus_update(&psi, &mu),
            "case {case}: psi={psi:?} mu={mu:?}"
        );
    }
}

#[test]
fn wdist_fitting_matches_naive_oracle() {
    let mut rng = StdRng::seed_from_u64(0xD1F8);
    for case in 0..CASES {
        let n = rng.random_range(1..=10u32);
        let psi = gen_weighted_kb(&mut rng, n);
        let mu = gen_weighted_kb(&mut rng, n);
        assert_eq!(
            WdistFitting.apply(&psi, &mu),
            naive::wdist_fitting(&psi, &mu),
            "case {case}: psi={psi:?} mu={mu:?}"
        );
    }
}

#[test]
fn streaming_arbitration_matches_naive_oracle() {
    let mut rng = StdRng::seed_from_u64(0xD1F9);
    for case in 0..CASES {
        let n = rng.random_range(1..=10u32);
        let psi = gen_model_set(&mut rng, n);
        let phi = gen_model_set(&mut rng, n);
        assert_eq!(
            arbitrate(&psi, &phi),
            naive::arbitrate(&psi, &phi),
            "case {case}: psi={psi:?} phi={phi:?}"
        );
    }
}

#[test]
fn streaming_weighted_arbitration_matches_naive_oracle() {
    let mut rng = StdRng::seed_from_u64(0xD1FA);
    for case in 0..CASES / 2 {
        let n = rng.random_range(1..=8u32);
        let psi = gen_weighted_kb(&mut rng, n);
        let phi = gen_weighted_kb(&mut rng, n);
        assert_eq!(
            warbitrate(&psi, &phi),
            naive::warbitrate(&psi, &phi),
            "case {case}: psi={psi:?} phi={phi:?}"
        );
    }
}

#[test]
fn edge_cases_agree_with_oracles() {
    for n in [1u32, 3, 6] {
        let empty = ModelSet::empty(n);
        let full = ModelSet::all(n);
        let single = ModelSet::new(n, [Interp(0)]);
        for psi in [&empty, &full, &single] {
            for mu in [&empty, &full, &single] {
                assert_eq!(OdistFitting.apply(psi, mu), naive::odist_fitting(psi, mu));
                assert_eq!(GMaxFitting.apply(psi, mu), naive::gmax_fitting(psi, mu));
                assert_eq!(SumFitting.apply(psi, mu), naive::sum_fitting(psi, mu));
                assert_eq!(DalalRevision.apply(psi, mu), naive::dalal_revision(psi, mu));
                assert_eq!(ForbusUpdate.apply(psi, mu), naive::forbus_update(psi, mu));
                assert_eq!(arbitrate(psi, mu), naive::arbitrate(psi, mu));
            }
        }
        let wempty = WeightedKb::unsatisfiable(n);
        let wsingle = WeightedKb::from_weights(n, [(Interp(0), 7)]);
        for psi in [&wempty, &wsingle] {
            for mu in [&wempty, &wsingle] {
                assert_eq!(WdistFitting.apply(psi, mu), naive::wdist_fitting(psi, mu));
                assert_eq!(warbitrate(psi, mu), naive::warbitrate(psi, mu));
            }
        }
    }
}
