//! End-to-end reproduction of every worked example in the paper, driven
//! through the public text-level API (parse → operators → formulas), the
//! way a downstream user would.

use arbitrex::prelude::*;

/// Section 1's opening example: `{A, B, A ∧ B → C}` plus `¬C`.
#[test]
fn intro_example_all_three_change_kinds() {
    let mut sig = Sig::new();
    let psi = parse(&mut sig, "A & B & (A & B -> C)").unwrap();
    let mu = parse(&mut sig, "!C").unwrap();
    let n = sig.width();
    let psi_m = ModelSet::of_formula(&psi, n);
    let mu_m = ModelSet::of_formula(&mu, n);

    // ψ has the single model {A,B,C}; the closest ¬C-world drops only C.
    assert_eq!(psi_m.as_singleton(), Some(Interp(0b111)));
    let revised = DalalRevision.apply(&psi_m, &mu_m);
    assert_eq!(revised.as_singleton(), Some(Interp(0b011)));
    // Update agrees here (singleton ψ).
    assert_eq!(WinslettUpdate.apply(&psi_m, &mu_m), revised);
    // Arbitration gives the two voices equal standing: any world at
    // Hamming distance ≤ 1 from both sides' closest models survives.
    let arb = arbitrate(&psi_m, &mu_m);
    assert!(arb.contains(Interp(0b011)));
    assert_eq!(arbitrate(&mu_m, &psi_m), arb); // commutative
}

/// Example 3.1 exactly as printed, through the parser.
#[test]
fn example_31_through_the_text_api() {
    let mut sig = Sig::new();
    let (s, d, q) = (sig.var("S"), sig.var("D"), sig.var("Q"));
    let mu = parse(&mut sig, "(!S & D & !Q) | (S & D & !Q)").unwrap();
    let psi = parse(&mut sig, "(S & !D & !Q) | (!S & D & !Q) | (S & D & Q)").unwrap();
    let n = sig.width();
    let mu_m = ModelSet::of_formula(&mu, n);
    let psi_m = ModelSet::of_formula(&psi, n);

    // The paper's intermediate numbers.
    assert_eq!(odist(&psi_m, Interp::from_vars([d])), Some(2));
    assert_eq!(odist(&psi_m, Interp::from_vars([s, d])), Some(1));
    let _ = q;

    // Mod(ψ ▷ μ) = {{S, D}}: teach both.
    let fitted = OdistFitting.apply(&psi_m, &mu_m);
    assert_eq!(fitted.as_singleton(), Some(Interp::from_vars([s, d])));

    // The contrast the paper draws: Dalal revision picks Datalog only.
    let revised = DalalRevision.apply(&psi_m, &mu_m);
    assert_eq!(revised.as_singleton(), Some(Interp::from_vars([d])));

    // Formula-level wrapper returns an equivalent formula.
    let wrapped = FormulaOperator::new(OdistFitting, n).apply(&psi, &mu);
    assert_eq!(ModelSet::of_formula(&wrapped, n), fitted);
}

/// Example 3.1's closing remark: had the instructor been willing to teach
/// any combination, he/she would be doing arbitration.
#[test]
fn example_31_with_unconstrained_instructor_is_arbitration() {
    let mut sig = Sig::new();
    sig.var("S");
    sig.var("D");
    sig.var("Q");
    let mu = parse(&mut sig, "(!S & D & !Q) | (S & D & !Q)").unwrap();
    let psi = parse(&mut sig, "(S & !D & !Q) | (!S & D & !Q) | (S & D & Q)").unwrap();
    let mu_m = ModelSet::of_formula(&mu, 3);
    let psi_m = ModelSet::of_formula(&psi, 3);
    // ψ Δ μ = (ψ ∨ μ) ▷ ⊤.
    let via_def = OdistFitting.apply(&psi_m.union(&mu_m), &ModelSet::all(3));
    assert_eq!(arbitrate(&psi_m, &mu_m), via_def);
}

/// Example 4.1 exactly as printed.
#[test]
fn example_41_weighted_classroom() {
    let mut sig = Sig::new();
    let (s, d, q) = (sig.var("S"), sig.var("D"), sig.var("Q"));
    let psi = WeightedKb::from_weights(
        3,
        [
            (Interp::from_vars([s]), 10),
            (Interp::from_vars([d]), 20),
            (Interp::from_vars([s, d, q]), 5),
        ],
    );
    let mu = WeightedKb::from_weights(
        3,
        [(Interp::from_vars([d]), 1), (Interp::from_vars([s, d]), 1)],
    );
    // The paper's wdist values: 30 and 35.
    assert_eq!(wdist(&psi, Interp::from_vars([d])), Some(30));
    assert_eq!(wdist(&psi, Interp::from_vars([s, d])), Some(35));
    // Result: φ̃({D}) = 1, zero elsewhere.
    let result = WdistFitting.apply(&psi, &mu);
    assert_eq!(result.weight(Interp::from_vars([d])), 1);
    assert_eq!(result.support_size(), 1);
}

/// The jury story from Section 1: equal, contemporary witnesses need
/// arbitration, and with weights the 9-vs-2 majority prevails.
#[test]
fn jury_story() {
    let sources = arbitrex::merge::scenario::jury(9, 2);
    let verdict = merge_weighted_arbitration(&sources);
    assert_eq!(verdict.consensus.as_singleton(), Some(Interp(0b01))); // A did it
                                                                      // Reversing testimony order cannot change an arbitration verdict.
    let reversed: Vec<Source> = sources.iter().rev().cloned().collect();
    assert_eq!(
        merge_weighted_arbitration(&reversed).consensus,
        verdict.consensus
    );
    // Folding revision through the witnesses believes the last speaker.
    assert_ne!(
        merge_fold_revision(&sources).consensus,
        merge_fold_revision(&reversed).consensus
    );
}

/// Section 4's embedding: a classical KB as a weighted KB with weight 1 on
/// every model behaves like sum-fitting.
#[test]
fn classical_embedding_consistency() {
    let psi = ModelSet::new(3, [Interp(0b001), Interp(0b010), Interp(0b111)]);
    let mu = ModelSet::new(3, [Interp(0b010), Interp(0b011)]);
    let weighted = WdistFitting.apply(
        &WeightedKb::from_model_set(&psi),
        &WeightedKb::from_model_set(&mu),
    );
    let classical = SumFitting.apply(&psi, &mu);
    assert_eq!(weighted.support_set(), classical);
}
