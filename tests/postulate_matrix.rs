//! The full operator × postulate satisfaction matrix as executable
//! expectations (experiment E3). Each entry is verified exhaustively over
//! the 2-variable universe (16⁴ theory quadruples), so a ✓ here is a
//! complete proof on that universe and a ✗ is a concrete counterexample.

use arbitrex::core::fitting::GMaxFitting;
use arbitrex::core::postulates::harness::{check_exhaustive, satisfaction_matrix};
use arbitrex::core::postulates::PostulateId;
use arbitrex::prelude::*;

use PostulateId::*;

/// The expected verdicts, derived from the paper (Theorem 3.2, Appendix A,
/// [KM91]/[KM92] attributions) and from this reproduction's findings.
fn expectations() -> Vec<(&'static str, Vec<(PostulateId, bool)>)> {
    vec![
        (
            "dalal-revision",
            vec![
                (R1, true),
                (R2, true),
                (R3, true),
                (R4, true),
                (R5, true),
                (R6, true),
                (U2, false),
                (U8, false),
                (A2, false),
                (A8, false),
            ],
        ),
        (
            "satoh-revision",
            vec![
                (R1, true),
                (R2, true),
                (R3, true),
                (R4, true),
                (R5, true),
                (U8, false),
                (A8, false),
            ],
        ),
        (
            "borgida-revision",
            vec![(R1, true), (R2, true), (R3, true), (U8, false), (A8, false)],
        ),
        (
            "weber-revision",
            // Weber satisfies R1-R4 but fails the minimality axioms
            // R5/R6-style on small universes (its erasure is coarse).
            vec![(R1, true), (R2, true), (R3, true), (R4, true), (A8, false)],
        ),
        (
            "drastic-revision",
            vec![
                (R1, true),
                (R2, true),
                (R3, true),
                (R4, true),
                (R5, true),
                (R6, true),
                (U8, false),
                (A8, false),
            ],
        ),
        (
            "winslett-update",
            vec![
                (U1, true),
                (U2, true),
                (U3, true),
                (U4, true),
                (U5, true),
                (U6, true),
                (U7, true),
                (U8, true),
                (R2, false),
                (R3, false),
                (A2, true),
                (A8, false),
            ],
        ),
        (
            "forbus-update",
            vec![
                (U1, true),
                (U2, true),
                (U3, true),
                (U5, true),
                (U8, true),
                (R2, false),
                (A8, false),
            ],
        ),
        (
            "odist-fitting",
            // The paper's operator: A1-A7 hold, A8 is the erratum.
            vec![
                (A1, true),
                (A2, true),
                (A3, true),
                (A4, true),
                (A5, true),
                (A6, true),
                (A7, true),
                (A8, false),
                (R2, false),
                (U2, false),
                (U8, false),
            ],
        ),
        (
            "lex-odist-fitting",
            // The repaired operator: all eight A-axioms.
            vec![
                (A1, true),
                (A2, true),
                (A3, true),
                (A4, true),
                (A5, true),
                (A6, true),
                (A7, true),
                (A8, true),
                (R2, false),
                (U2, false),
                (U8, false),
            ],
        ),
        (
            "sum-fitting",
            // Majority flavour: loses A7 as well (set-union dedup).
            vec![
                (A1, true),
                (A2, true),
                (A3, true),
                (A5, true),
                (A6, true),
                (A7, false),
                (A8, false),
            ],
        ),
        (
            "gmax-fitting",
            // Leximax refinement: same A1-A6 profile; the distance vector
            // over a union is not determined by the disjuncts' vectors, so
            // both A7 and A8 fail (unlike plain odist, which keeps A7).
            vec![
                (A1, true),
                (A2, true),
                (A3, true),
                (A4, true),
                (A5, true),
                (A6, true),
                (A7, false),
                (A8, false),
            ],
        ),
    ]
}

#[test]
fn matrix_matches_expectations() {
    let ops: Vec<&dyn ChangeOperator> = vec![
        &DalalRevision,
        &SatohRevision,
        &BorgidaRevision,
        &WeberRevision,
        &DrasticRevision,
        &WinslettUpdate,
        &ForbusUpdate,
        &OdistFitting,
        &LexOdistFitting,
        &SumFitting,
        &GMaxFitting,
    ];
    let ids = PostulateId::all();
    let rows = satisfaction_matrix(&ops, &ids);
    for (op_name, expected) in expectations() {
        let row = rows
            .iter()
            .find(|r| r.operator == op_name)
            .unwrap_or_else(|| panic!("missing row for {op_name}"));
        for (id, want) in expected {
            assert_eq!(
                row.passed(id),
                Some(want),
                "{op_name} × {id}: expected {}",
                if want { "satisfied" } else { "violated" }
            );
        }
    }
}

#[test]
fn every_family_is_disjoint_from_the_others() {
    // Pairwise disjointness as a matrix property: no operator passes the
    // signature postulates of two different families simultaneously.
    let ops: Vec<&dyn ChangeOperator> = vec![
        &DalalRevision,
        &SatohRevision,
        &BorgidaRevision,
        &WeberRevision,
        &DrasticRevision,
        &WinslettUpdate,
        &ForbusUpdate,
        &OdistFitting,
        &LexOdistFitting,
        &SumFitting,
    ];
    for op in &ops {
        let r2 = check_exhaustive(*op, &[R2], 2).is_ok();
        let u2u8 = check_exhaustive(*op, &[U2, U8], 2).is_ok();
        let a8 = check_exhaustive(*op, &[A8], 2).is_ok();
        assert!(
            !(r2 && a8),
            "{} satisfies both R2 and A8 — contradicts Theorem 3.2",
            op.name()
        );
        assert!(
            !(u2u8 && a8),
            "{} satisfies U2+U8 and A8 — contradicts Theorem 3.2",
            op.name()
        );
        let r123 = check_exhaustive(*op, &[R1, R2, R3], 2).is_ok();
        let u8ok = check_exhaustive(*op, &[U8], 2).is_ok();
        assert!(
            !(r123 && u8ok),
            "{} satisfies R1-R3 and U8 — contradicts Theorem 3.2",
            op.name()
        );
    }
}

#[test]
fn randomized_fuzz_confirms_the_positive_entries_at_n3() {
    use arbitrex::core::postulates::harness::check_random;
    // The ✓ entries should survive fuzzing on a bigger universe too.
    assert!(check_random(&DalalRevision, PostulateId::revision(), 3, 10_000, 1).is_ok());
    assert!(check_random(&WinslettUpdate, PostulateId::update(), 3, 10_000, 2).is_ok());
    assert!(check_random(&LexOdistFitting, PostulateId::fitting(), 3, 10_000, 3).is_ok());
}
