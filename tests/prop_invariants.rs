//! Randomized property tests on the core data structures and the
//! operators' structural invariants. Hand-rolled seeded generators (the
//! offline build vendors only a minimal `rand` shim); every failure
//! message carries the case index for deterministic replay.

use arbitrex::bdd::{compile, BddManager};
use arbitrex::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

const N: u32 = 4;
const CASES: usize = 256;

/// A model set over `N` variables from a random 16-bit mask.
fn gen_model_set<R: Rng + ?Sized>(rng: &mut R) -> ModelSet {
    let mask: u16 = rng.random();
    ModelSet::new(N, (0..16u64).filter(|b| mask >> b & 1 == 1).map(Interp))
}

/// A non-empty model set.
fn gen_nonempty_model_set<R: Rng + ?Sized>(rng: &mut R) -> ModelSet {
    loop {
        let m = gen_model_set(rng);
        if !m.is_empty() {
            return m;
        }
    }
}

/// A random formula over `N` variables (literal leaves, depth ≤ 4).
fn gen_formula<R: Rng + ?Sized>(rng: &mut R, depth: u32) -> Formula {
    if depth == 0 || rng.random_bool(0.25) {
        return match rng.random_range(0..4u8) {
            0 => Formula::True,
            1 => Formula::False,
            2 => Formula::Var(Var(rng.random_range(0..N))),
            _ => Formula::not(Formula::Var(Var(rng.random_range(0..N)))),
        };
    }
    match rng.random_range(0..6u8) {
        0 => Formula::not(gen_formula(rng, depth - 1)),
        1 => {
            let k = rng.random_range(2..=3usize);
            Formula::and((0..k).map(|_| gen_formula(rng, depth - 1)))
        }
        2 => {
            let k = rng.random_range(2..=3usize);
            Formula::or((0..k).map(|_| gen_formula(rng, depth - 1)))
        }
        3 => Formula::implies(gen_formula(rng, depth - 1), gen_formula(rng, depth - 1)),
        4 => Formula::iff(gen_formula(rng, depth - 1), gen_formula(rng, depth - 1)),
        _ => Formula::xor(gen_formula(rng, depth - 1), gen_formula(rng, depth - 1)),
    }
}

/// A weighted KB over `N` variables (≤ 6 sparse entries, weights < 5).
fn gen_weighted_kb<R: Rng + ?Sized>(rng: &mut R) -> WeightedKb {
    let k = rng.random_range(0..6usize);
    WeightedKb::from_weights(
        N,
        (0..k).map(|_| {
            (
                Interp(rng.random_range(0..16u64)),
                rng.random_range(0..5u64),
            )
        }),
    )
}

// ------- metric space -------

#[test]
fn dist_is_a_metric() {
    let mut rng = StdRng::seed_from_u64(0x01);
    for _ in 0..CASES {
        let a = Interp(rng.random_range(0..16u64));
        let b = Interp(rng.random_range(0..16u64));
        let c = Interp(rng.random_range(0..16u64));
        assert_eq!(dist(a, b), dist(b, a));
        assert_eq!(dist(a, b) == 0, a == b);
        assert!(dist(a, c) <= dist(a, b) + dist(b, c));
    }
}

// ------- model-set algebra -------

#[test]
fn model_set_boolean_laws() {
    let mut rng = StdRng::seed_from_u64(0x02);
    for _ in 0..CASES {
        let a = gen_model_set(&mut rng);
        let b = gen_model_set(&mut rng);
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.intersect(&b), b.intersect(&a));
        // De Morgan.
        assert_eq!(
            a.union(&b).complement(),
            a.complement().intersect(&b.complement())
        );
        // Absorption.
        assert_eq!(a.union(&a.intersect(&b)), a);
        assert_eq!(a.intersect(&a.union(&b)), a);
        // Difference via complement.
        assert_eq!(a.difference(&b), a.intersect(&b.complement()));
    }
}

#[test]
fn to_formula_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0x03);
    for _ in 0..CASES {
        let a = gen_model_set(&mut rng);
        assert_eq!(ModelSet::of_formula(&a.to_formula(), N), a);
    }
}

// ------- formula pipeline -------

#[test]
fn display_parse_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x04);
    for _ in 0..CASES {
        let f = gen_formula(&mut rng, 4);
        let sig = Sig::with_anon_vars(N as usize);
        let printed = f.display(&sig).to_string();
        let mut sig2 = sig.clone();
        let reparsed = parse(&mut sig2, &printed).unwrap();
        assert_eq!(
            ModelSet::of_formula(&reparsed, N),
            ModelSet::of_formula(&f, N),
            "pretty-printing changed semantics of {printed}"
        );
    }
}

#[test]
fn nnf_simplify_preserve_semantics() {
    let mut rng = StdRng::seed_from_u64(0x05);
    for case in 0..CASES {
        let f = gen_formula(&mut rng, 4);
        let reference = ModelSet::of_formula(&f, N);
        assert_eq!(
            ModelSet::of_formula(&arbitrex::logic::to_nnf(&f), N),
            reference,
            "nnf, case {case}"
        );
        assert_eq!(
            ModelSet::of_formula(&arbitrex::logic::simplify(&f), N),
            reference,
            "simplify, case {case}"
        );
    }
}

#[test]
fn bdd_agrees_with_enumeration() {
    let mut rng = StdRng::seed_from_u64(0x06);
    for case in 0..CASES {
        let f = gen_formula(&mut rng, 4);
        let mut mgr = BddManager::new();
        let b = compile(&mut mgr, &f);
        let reference = ModelSet::of_formula(&f, N);
        assert_eq!(
            mgr.count_models(b, N),
            reference.len() as u128,
            "bdd count, case {case}"
        );
    }
}

// ------- operator invariants -------

#[test]
fn inclusion_postulate_for_every_operator() {
    let mut rng = StdRng::seed_from_u64(0x07);
    let ops: Vec<&dyn ChangeOperator> = vec![
        &DalalRevision,
        &SatohRevision,
        &BorgidaRevision,
        &WeberRevision,
        &DrasticRevision,
        &WinslettUpdate,
        &ForbusUpdate,
        &OdistFitting,
        &LexOdistFitting,
        &SumFitting,
    ];
    for _ in 0..CASES {
        let psi = gen_model_set(&mut rng);
        let mu = gen_model_set(&mut rng);
        for op in &ops {
            assert!(
                op.apply(&psi, &mu).implies(&mu),
                "{} broke inclusion",
                op.name()
            );
        }
    }
}

#[test]
fn fitting_satisfiability_postulates() {
    let mut rng = StdRng::seed_from_u64(0x08);
    for _ in 0..CASES {
        let psi = gen_nonempty_model_set(&mut rng);
        let mu = gen_nonempty_model_set(&mut rng);
        for op in [
            &OdistFitting as &dyn ChangeOperator,
            &LexOdistFitting,
            &SumFitting,
        ] {
            assert!(!op.apply(&psi, &mu).is_empty(), "{} broke A3", op.name());
        }
        for op in [
            &OdistFitting as &dyn ChangeOperator,
            &LexOdistFitting,
            &SumFitting,
        ] {
            assert!(
                op.apply(&ModelSet::empty(N), &mu).is_empty(),
                "{} broke A2",
                op.name()
            );
        }
    }
}

#[test]
fn arbitration_is_commutative() {
    let mut rng = StdRng::seed_from_u64(0x09);
    for _ in 0..CASES {
        let psi = gen_model_set(&mut rng);
        let phi = gen_model_set(&mut rng);
        assert_eq!(arbitrate(&psi, &phi), arbitrate(&phi, &psi));
    }
}

#[test]
fn arbitration_of_singletons_lies_between() {
    let mut rng = StdRng::seed_from_u64(0x0A);
    for _ in 0..CASES {
        // Consensus between two single worlds is on a geodesic: every
        // chosen model sits within the diameter, and its max distance to
        // the endpoints is minimal = ceil(d/2).
        let a = Interp(rng.random_range(0..16u64));
        let b = Interp(rng.random_range(0..16u64));
        let psi = ModelSet::singleton(N, a);
        let phi = ModelSet::singleton(N, b);
        let consensus = arbitrate(&psi, &phi);
        let d = dist(a, b);
        for i in consensus.iter() {
            assert!(dist(i, a).max(dist(i, b)) == d.div_ceil(2));
        }
    }
}

#[test]
fn revision_with_consistent_input_is_conjunction() {
    let mut rng = StdRng::seed_from_u64(0x0B);
    for _ in 0..CASES {
        let psi = gen_model_set(&mut rng);
        let mu = gen_model_set(&mut rng);
        let both = psi.intersect(&mu);
        if both.is_empty() {
            continue;
        }
        for op in [
            &DalalRevision as &dyn ChangeOperator,
            &SatohRevision,
            &BorgidaRevision,
            &WeberRevision,
            &DrasticRevision,
        ] {
            assert_eq!(op.apply(&psi, &mu), both, "{} broke R2", op.name());
        }
    }
}

#[test]
fn update_distributes_over_kb_disjunction() {
    let mut rng = StdRng::seed_from_u64(0x0C);
    for _ in 0..CASES {
        let psi1 = gen_model_set(&mut rng);
        let psi2 = gen_model_set(&mut rng);
        let mu = gen_model_set(&mut rng);
        for op in [&WinslettUpdate as &dyn ChangeOperator, &ForbusUpdate] {
            assert_eq!(
                op.apply(&psi1.union(&psi2), &mu),
                op.apply(&psi1, &mu).union(&op.apply(&psi2, &mu)),
                "{} broke U8",
                op.name()
            );
        }
    }
}

// ------- weighted lattice -------

#[test]
fn weighted_kb_lattice_laws() {
    let mut rng = StdRng::seed_from_u64(0x0D);
    for _ in 0..CASES {
        let a = gen_weighted_kb(&mut rng);
        let b = gen_weighted_kb(&mut rng);
        let c = gen_weighted_kb(&mut rng);
        assert_eq!(a.join(&b), b.join(&a));
        assert_eq!(a.meet(&b), b.meet(&a));
        assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
        assert_eq!(a.meet(&b).meet(&c), a.meet(&b.meet(&c)));
        // min absorbs over sum: a ⊓ (a ⊔ b) = a.
        assert_eq!(a.meet(&a.join(&b)), a);
        // Implication bounds.
        assert!(a.meet(&b).implies(&a));
        assert!(a.implies(&a.join(&b)));
    }
}

#[test]
fn weighted_arbitration_is_commutative() {
    let mut rng = StdRng::seed_from_u64(0x0E);
    for _ in 0..CASES {
        let a = gen_weighted_kb(&mut rng);
        let b = gen_weighted_kb(&mut rng);
        assert_eq!(warbitrate(&a, &b), warbitrate(&b, &a));
    }
}

#[test]
fn wdist_fitting_result_implied_by_mu() {
    let mut rng = StdRng::seed_from_u64(0x0F);
    for _ in 0..CASES {
        let psi = gen_weighted_kb(&mut rng);
        let mu = gen_weighted_kb(&mut rng);
        let r = WdistFitting.apply(&psi, &mu);
        assert!(r.implies(&mu));
        if psi.is_satisfiable() && mu.is_satisfiable() {
            assert!(r.is_satisfiable());
        } else {
            assert!(!r.is_satisfiable());
        }
    }
}

#[test]
fn weight_scaling_does_not_change_fitting() {
    let mut rng = StdRng::seed_from_u64(0x10);
    for _ in 0..CASES {
        let psi = gen_weighted_kb(&mut rng);
        let mu = gen_weighted_kb(&mut rng);
        let k = rng.random_range(1..9u64);
        assert_eq!(
            WdistFitting.apply(&psi.scale(k), &mu).support_set(),
            WdistFitting.apply(&psi, &mu).support_set()
        );
    }
}
