//! Property-based tests (proptest) on the core data structures and the
//! operators' structural invariants.

use arbitrex::bdd::{compile, BddManager};
use arbitrex::prelude::*;
use proptest::prelude::*;

const N: u32 = 4;

/// Strategy: a model set over `N` variables from a 16-bit mask.
fn model_set() -> impl Strategy<Value = ModelSet> {
    any::<u16>()
        .prop_map(|mask| ModelSet::new(N, (0..16u64).filter(|b| mask >> b & 1 == 1).map(Interp)))
}

/// Strategy: a non-empty model set.
fn nonempty_model_set() -> impl Strategy<Value = ModelSet> {
    model_set().prop_filter("non-empty", |m| !m.is_empty())
}

/// Strategy: a random formula over `N` variables.
fn formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        (0..N).prop_map(|v| Formula::Var(Var(v))),
        (0..N).prop_map(|v| Formula::not(Formula::Var(Var(v)))),
    ];
    leaf.prop_recursive(4, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::and),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::or),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::iff(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Formula::xor(a, b)),
        ]
    })
}

/// Strategy: a weighted KB over `N` variables.
fn weighted_kb() -> impl Strategy<Value = WeightedKb> {
    prop::collection::vec((0..16u64, 0..5u64), 0..6).prop_map(|entries| {
        WeightedKb::from_weights(N, entries.into_iter().map(|(i, w)| (Interp(i), w)))
    })
}

proptest! {
    // ------- metric space -------

    #[test]
    fn dist_is_a_metric(a in 0..16u64, b in 0..16u64, c in 0..16u64) {
        let (a, b, c) = (Interp(a), Interp(b), Interp(c));
        prop_assert_eq!(dist(a, b), dist(b, a));
        prop_assert_eq!(dist(a, b) == 0, a == b);
        prop_assert!(dist(a, c) <= dist(a, b) + dist(b, c));
    }

    // ------- model-set algebra -------

    #[test]
    fn model_set_boolean_laws(a in model_set(), b in model_set()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        // De Morgan.
        prop_assert_eq!(
            a.union(&b).complement(),
            a.complement().intersect(&b.complement())
        );
        // Absorption.
        prop_assert_eq!(a.union(&a.intersect(&b)), a.clone());
        prop_assert_eq!(a.intersect(&a.union(&b)), a.clone());
        // Difference via complement.
        prop_assert_eq!(a.difference(&b), a.intersect(&b.complement()));
    }

    #[test]
    fn to_formula_roundtrips(a in model_set()) {
        prop_assert_eq!(ModelSet::of_formula(&a.to_formula(), N), a);
    }

    // ------- formula pipeline -------

    #[test]
    fn display_parse_roundtrip(f in formula()) {
        let sig = Sig::with_anon_vars(N as usize);
        let printed = f.display(&sig).to_string();
        let mut sig2 = sig.clone();
        let reparsed = parse(&mut sig2, &printed).unwrap();
        prop_assert_eq!(
            ModelSet::of_formula(&reparsed, N),
            ModelSet::of_formula(&f, N),
            "pretty-printing changed semantics of {}", printed
        );
    }

    #[test]
    fn nnf_simplify_preserve_semantics(f in formula()) {
        let reference = ModelSet::of_formula(&f, N);
        prop_assert_eq!(ModelSet::of_formula(&arbitrex::logic::to_nnf(&f), N), reference.clone());
        prop_assert_eq!(ModelSet::of_formula(&arbitrex::logic::simplify(&f), N), reference);
    }

    #[test]
    fn bdd_agrees_with_enumeration(f in formula()) {
        let mut mgr = BddManager::new();
        let b = compile(&mut mgr, &f);
        let reference = ModelSet::of_formula(&f, N);
        prop_assert_eq!(mgr.count_models(b, N), reference.len() as u128);
    }

    // ------- operator invariants -------

    #[test]
    fn inclusion_postulate_for_every_operator(psi in model_set(), mu in model_set()) {
        let ops: Vec<&dyn ChangeOperator> = vec![
            &DalalRevision, &SatohRevision, &BorgidaRevision, &WeberRevision,
            &DrasticRevision, &WinslettUpdate, &ForbusUpdate,
            &OdistFitting, &LexOdistFitting, &SumFitting,
        ];
        for op in ops {
            prop_assert!(op.apply(&psi, &mu).implies(&mu), "{} broke inclusion", op.name());
        }
    }

    #[test]
    fn fitting_satisfiability_postulates(psi in nonempty_model_set(), mu in nonempty_model_set()) {
        for op in [&OdistFitting as &dyn ChangeOperator, &LexOdistFitting, &SumFitting] {
            prop_assert!(!op.apply(&psi, &mu).is_empty(), "{} broke A3", op.name());
        }
        for op in [&OdistFitting as &dyn ChangeOperator, &LexOdistFitting, &SumFitting] {
            prop_assert!(op.apply(&ModelSet::empty(N), &mu).is_empty(), "{} broke A2", op.name());
        }
    }

    #[test]
    fn arbitration_is_commutative(psi in model_set(), phi in model_set()) {
        prop_assert_eq!(arbitrate(&psi, &phi), arbitrate(&phi, &psi));
    }

    #[test]
    fn arbitration_of_singletons_lies_between(a in 0..16u64, b in 0..16u64) {
        // Consensus between two single worlds is on a geodesic: every
        // chosen model sits within the diameter, and its max distance to
        // the endpoints is minimal = ceil(d/2).
        let (a, b) = (Interp(a), Interp(b));
        let psi = ModelSet::singleton(N, a);
        let phi = ModelSet::singleton(N, b);
        let consensus = arbitrate(&psi, &phi);
        let d = dist(a, b);
        for i in consensus.iter() {
            prop_assert!(dist(i, a).max(dist(i, b)) == d.div_ceil(2));
        }
    }

    #[test]
    fn revision_with_consistent_input_is_conjunction(psi in model_set(), mu in model_set()) {
        let both = psi.intersect(&mu);
        prop_assume!(!both.is_empty());
        for op in [
            &DalalRevision as &dyn ChangeOperator, &SatohRevision, &BorgidaRevision,
            &WeberRevision, &DrasticRevision,
        ] {
            prop_assert_eq!(op.apply(&psi, &mu), both.clone(), "{} broke R2", op.name());
        }
    }

    #[test]
    fn update_distributes_over_kb_disjunction(
        psi1 in model_set(), psi2 in model_set(), mu in model_set()
    ) {
        for op in [&WinslettUpdate as &dyn ChangeOperator, &ForbusUpdate] {
            prop_assert_eq!(
                op.apply(&psi1.union(&psi2), &mu),
                op.apply(&psi1, &mu).union(&op.apply(&psi2, &mu)),
                "{} broke U8", op.name()
            );
        }
    }

    // ------- weighted lattice -------

    #[test]
    fn weighted_kb_lattice_laws(a in weighted_kb(), b in weighted_kb(), c in weighted_kb()) {
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.meet(&b), b.meet(&a));
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
        prop_assert_eq!(a.meet(&b).meet(&c), a.meet(&b.meet(&c)));
        // min absorbs over sum: a ⊓ (a ⊔ b) = a.
        prop_assert_eq!(a.meet(&a.join(&b)), a.clone());
        // Implication bounds.
        prop_assert!(a.meet(&b).implies(&a));
        prop_assert!(a.implies(&a.join(&b)));
    }

    #[test]
    fn weighted_arbitration_is_commutative(a in weighted_kb(), b in weighted_kb()) {
        prop_assert_eq!(warbitrate(&a, &b), warbitrate(&b, &a));
    }

    #[test]
    fn wdist_fitting_result_implied_by_mu(psi in weighted_kb(), mu in weighted_kb()) {
        let r = WdistFitting.apply(&psi, &mu);
        prop_assert!(r.implies(&mu));
        if psi.is_satisfiable() && mu.is_satisfiable() {
            prop_assert!(r.is_satisfiable());
        } else {
            prop_assert!(!r.is_satisfiable());
        }
    }

    #[test]
    fn weight_scaling_does_not_change_fitting(psi in weighted_kb(), mu in weighted_kb(), k in 1..9u64) {
        prop_assert_eq!(
            WdistFitting.apply(&psi.scale(k), &mu).support_set(),
            WdistFitting.apply(&psi, &mu).support_set()
        );
    }
}
