//! Cross-crate integration: the relational layer driving the merging and
//! theory-change machinery end-to-end — the "heterogeneous databases"
//! story at the relational level.

use arbitrex::logic::Formula;
use arbitrex::prelude::*;
use arbitrex::relational::{parse_relational, RelationalDb, Vocabulary};

/// Build the staffing vocabulary used throughout: On(person, project)
/// over people {ann, bob} and projects {db, web}, with the constraint
/// that everyone is assigned somewhere.
fn staffing() -> (Vocabulary, Formula) {
    let mut v = Vocabulary::new();
    v.relation("On", 2);
    // Intern the meaningful atoms in a fixed order via parsing.
    let _ = parse_relational(
        &mut v,
        "On(ann,db) | On(ann,web) | On(bob,db) | On(bob,web)",
    )
    .unwrap();
    let ic = parse_relational(
        &mut v,
        "(On(ann,db) | On(ann,web)) & (On(bob,db) | On(bob,web))",
    )
    .unwrap();
    (v, ic)
}

#[test]
fn parsed_relational_formulas_drive_the_db() {
    let (mut v, ic) = staffing();
    let a_records = parse_relational(
        &mut v,
        "On(ann,db) & !On(ann,web) & On(bob,web) & !On(bob,db)",
    )
    .unwrap();
    let b_records = parse_relational(
        &mut v,
        "On(ann,web) & !On(ann,db) & On(bob,web) & !On(bob,db)",
    )
    .unwrap();
    let mut db = RelationalDb::new(v, ic);
    db.assert_state(&a_records);
    db.arbitrate(&b_records);
    assert!(db.is_consistent());
    // Bob's assignment is agreed; Ann's resolves to the compromise.
    let certain = db.certain_facts_display();
    assert!(certain.contains(&"On(bob,web)".to_string()));
}

#[test]
fn relational_sources_merge_like_propositional_ones() {
    let (mut v, _ic) = staffing();
    let a = parse_relational(&mut v, "On(ann,db) & !On(ann,web)").unwrap();
    let b = parse_relational(&mut v, "On(ann,web) & !On(ann,db)").unwrap();
    let n = v.width();
    let sources = vec![
        Source::weighted("deptA", ModelSet::of_formula(&a, n), 3),
        Source::weighted("deptB", ModelSet::of_formula(&b, n), 1),
    ];
    let majority = merge_majority(&sources, None);
    // Department A outweighs B 3:1 — the majority consensus satisfies A.
    assert!(majority.consensus.implies(&ModelSet::of_formula(&a, n)));
    // Egalitarian merging does not let the head-count decide.
    let egalitarian = merge_egalitarian(&sources, None);
    assert!(!egalitarian.consensus.implies(&ModelSet::of_formula(&a, n)));
}

#[test]
fn relational_queries_through_the_query_layer() {
    let (mut v, ic) = staffing();
    let facts = parse_relational(
        &mut v,
        "On(ann,db) & On(bob,web) & !On(ann,web) & !On(bob,db)",
    )
    .unwrap();
    let somebody_on_db = parse_relational(&mut v, "On(ann,db) | On(bob,db)").unwrap();
    let mut db = RelationalDb::new(v, ic);
    db.assert_state(&facts);
    assert!(db.entails(&somebody_on_db));
    // Through the generic query layer as well.
    let answer = arbitrex::merge::ask(db.state(), &somebody_on_db);
    assert!(answer.skeptical());
}

#[test]
fn grounded_universe_respects_the_sat_backend_too() {
    // Relational formulas ground to ordinary propositional ones, so the
    // SAT backend applies unchanged.
    let (mut v, _) = staffing();
    let psi = parse_relational(
        &mut v,
        "On(ann,db) & On(bob,db) & !On(ann,web) & !On(bob,web)",
    )
    .unwrap();
    let mu = parse_relational(&mut v, "!On(ann,db)").unwrap();
    let n = v.width();
    let sat = arbitrex::core::satbackend::dalal_revision_sat(&psi, &mu, n, 64).unwrap();
    let reference = DalalRevision.apply(
        &ModelSet::of_formula(&psi, n),
        &ModelSet::of_formula(&mu, n),
    );
    assert_eq!(sat.models, reference);
    assert_eq!(sat.distance, Some(1));
}
