//! Mechanical validation of Theorem 3.1, both directions.
//!
//! **If direction** — a total loyal assignment induces a model-fitting
//! operator: `LexOdistFitting` comes from the loyal
//! `LexOdistAssignment` and must satisfy (A1)–(A8). (Checked exhaustively
//! in the core crate; here we check the *construction* — that the operator
//! really is `Min(Mod(μ), ≤_ψ)` for that assignment.)
//!
//! **Only-if direction** — from an operator satisfying (A1)–(A8), the
//! proof constructs the pre-order `I ≤_ψ J ⇔ I ∈ Mod(ψ ▷ form(I, J))`.
//! We perform that construction from the operator's observable behaviour
//! and verify (a) it is a total pre-order, (b) loyalty conditions hold on
//! the sampled universe, and (c) `Mod(ψ ▷ μ) = Min(Mod(μ), ≤_ψ)` for every
//! `μ` — i.e. the operator is fully determined by its behaviour on the
//! two-model theories `form(I, J)`.

use arbitrex::core::assignment::{check_loyalty, LexOdistAssignment, RankedAssignment};
use arbitrex::core::postulates::harness::all_theories;
use arbitrex::core::preorder::{is_total_preorder, min_models, Preorder};
use arbitrex::prelude::*;

/// The proof's constructed pre-order: `I ≤_ψ J ⇔ I ∈ Mod(ψ ▷ form(I,J))`.
struct ConstructedOrder<'a, Op: ChangeOperator> {
    op: &'a Op,
    psi: &'a ModelSet,
}

impl<Op: ChangeOperator> Preorder for ConstructedOrder<'_, Op> {
    fn le(&self, a: Interp, b: Interp) -> bool {
        let n = self.psi.n_vars();
        let pair = ModelSet::new(n, [a, b]);
        self.op.apply(self.psi, &pair).contains(a)
    }
}

#[test]
fn if_direction_operator_equals_min_of_loyal_assignment() {
    // LexOdistFitting must equal Min(Mod(μ), ≤) for the lex assignment.
    let n = 3;
    let theories = all_theories(2);
    for psi in theories.iter().filter(|t| !t.is_empty()) {
        // Lift to 3 vars by reusing masks (they stay in range).
        let psi3 = ModelSet::new(n, psi.iter());
        for mu_mask in 1u64..64 {
            let mu = ModelSet::new(n, (0..6u64).filter(|b| mu_mask >> b & 1 == 1).map(Interp));
            let direct = LexOdistFitting.apply(&psi3, &mu);
            let via_min =
                arbitrex::core::preorder::min_by_rank(&mu, |i| LexOdistAssignment.rank(&psi3, i));
            assert_eq!(direct, via_min);
        }
    }
}

#[test]
fn lex_assignment_is_loyal_and_total() {
    assert_eq!(check_loyalty(&LexOdistAssignment, 2), Ok(()));
    assert_eq!(check_loyalty(&LexOdistAssignment, 3), Ok(()));
}

#[test]
fn only_if_direction_constructed_order_is_total_preorder() {
    let universe = ModelSet::all(2);
    for psi in all_theories(2).iter().filter(|t| !t.is_empty()) {
        let order = ConstructedOrder {
            op: &LexOdistFitting,
            psi,
        };
        assert!(
            is_total_preorder(&universe, &order),
            "constructed order not a total pre-order for psi={psi:?}"
        );
    }
}

#[test]
fn only_if_direction_operator_is_determined_by_pairwise_behaviour() {
    // The reconstruction at the heart of the proof: for every ψ and μ,
    // Min(Mod(μ), ≤_ψ) computed from the *constructed* order equals the
    // operator's own output.
    for psi in all_theories(2).iter().filter(|t| !t.is_empty()) {
        let order = ConstructedOrder {
            op: &LexOdistFitting,
            psi,
        };
        for mu in all_theories(2) {
            let reconstructed = min_models(&mu, &order);
            let direct = LexOdistFitting.apply(psi, &mu);
            assert_eq!(
                reconstructed, direct,
                "reconstruction failed for psi={psi:?} mu={mu:?}"
            );
        }
    }
}

#[test]
fn km_counterpart_dalal_is_reconstructible_from_pairwise_behaviour() {
    // The same construction applied to *revision* — the [KM91] faithful-
    // assignment characterization that Theorem 3.1 parallels. Dalal's
    // operator is induced by a total faithful pre-order, so pairwise
    // behaviour determines it for satisfiable ψ.
    for psi in all_theories(2).iter().filter(|t| !t.is_empty()) {
        let order = ConstructedOrder {
            op: &DalalRevision,
            psi,
        };
        let universe = ModelSet::all(2);
        assert!(is_total_preorder(&universe, &order));
        for mu in all_theories(2) {
            assert_eq!(
                min_models(&mu, &order),
                DalalRevision.apply(psi, &mu),
                "Dalal reconstruction failed for psi={psi:?} mu={mu:?}"
            );
        }
    }
}

#[test]
fn only_if_reconstruction_fails_for_a_non_fitting_operator() {
    // Sanity check that the reconstruction test has teeth: update violates
    // the A-axioms, and its constructed "order" fails to determine it.
    let mut any_mismatch = false;
    'outer: for psi in all_theories(2).iter().filter(|t| !t.is_empty()) {
        let order = ConstructedOrder {
            op: &WinslettUpdate,
            psi,
        };
        for mu in all_theories(2) {
            let reconstructed = min_models(&mu, &order);
            let direct = WinslettUpdate.apply(psi, &mu);
            if reconstructed != direct {
                any_mismatch = true;
                break 'outer;
            }
        }
    }
    assert!(
        any_mismatch,
        "update unexpectedly reconstructible — test is vacuous"
    );
}

#[test]
fn paper_odist_operator_reconstruction_also_succeeds_pairwise() {
    // Although odist-fitting fails (A8), it is still induced by a total
    // pre-order assignment (the orders exist; only their *loyalty* fails),
    // so the pairwise reconstruction of the "only if" proof still
    // reproduces it. This localizes the erratum precisely: the failure is
    // in loyalty condition (2), not in the Min-representation.
    for psi in all_theories(2).iter().filter(|t| !t.is_empty()) {
        let order = ConstructedOrder {
            op: &OdistFitting,
            psi,
        };
        let universe = ModelSet::all(2);
        assert!(is_total_preorder(&universe, &order));
        for mu in all_theories(2) {
            assert_eq!(min_models(&mu, &order), OdistFitting.apply(psi, &mu));
        }
    }
}
